//! Offline shim for the subset of `proptest` this workspace's property
//! tests use.
//!
//! The build environment has no registry access, so this crate re-creates
//! the pieces the tests need: the [`proptest!`] macro, `prop_assert*` /
//! `prop_assume!`, [`Strategy`] with `prop_map`, numeric-range and simple
//! regex (`[chars]{m,n}`) strategies, `any::<T>()`, and
//! `prop::collection::{vec, hash_set}`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs but is
//!   not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible without a `proptest-regressions`
//!   directory.
//! * Default case count is 64 (configurable via
//!   [`ProptestConfig::with_cases`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// A `prop_assert*` failed; the whole property fails.
    Fail(String),
}

/// Deterministic per-test RNG (xoshiro256++ seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Build from a string (the test name) via FNV-1a + SplitMix64.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Minimal regex-pattern strategy: supports concatenations of literal
/// characters and `[a-z0-9_]`-style classes, each optionally followed by
/// `{m}`, `{m,n}`, `+`, or `*` (capped at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // 1. Parse one atom: a char class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"));
            let inner = &chars[i + 1..close];
            i = close + 1;
            expand_class(inner, pattern)
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // 2. Parse an optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repetition lower bound"),
                    b.trim().parse::<usize>().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        // 3. Emit.
        let count = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            let (a, b) = (inner[j] as u32, inner[j + 2] as u32);
            assert!(a <= b, "inverted range in pattern {pattern:?}");
            for c in a..=b {
                set.push(char::from_u32(c).expect("valid char in class range"));
            }
            j += 3;
        } else {
            set.push(inner[j]);
            j += 1;
        }
    }
    assert!(!set.is_empty(), "empty char class in pattern {pattern:?}");
    set
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vector of values from `elem` with length uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Hash set of values from `elem` with size uniform in `size`
    /// (best-effort: duplicates are retried a bounded number of times).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The glob-import module every test pulls in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property; failure fails the whole property
/// (with the formatted message, when given).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __left,
                __right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Assert two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                __left,
                __right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Reject the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Define property tests.
///
/// Supports the upstream surface these tests use: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts: u32 = __cfg.cases.saturating_mul(10).saturating_add(100);
            while __passed < __cfg.cases {
                assert!(
                    __attempts < __max_attempts,
                    "[{}] too many rejected cases ({} attempts for {} passes)",
                    stringify!($name), __attempts, __passed,
                );
                __attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // The closure is what lets `prop_assert*` early-return per case.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { { $body } ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("[{}] property failed at case {}: {}", stringify!($name), __passed, __msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn prop_map_applies(v in prop::collection::vec(0u32..5, 1..4).prop_map(|v| v.len())) {
            prop_assert!((1..4).contains(&v));
        }

        #[test]
        fn regex_class_and_reps(w in "[a-c]{2,4}") {
            prop_assert!(w.len() >= 2 && w.len() <= 4, "bad length: {w:?}");
            prop_assert!(w.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_accepted(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn hash_set_reaches_target_size() {
        let s = crate::collection::hash_set(0u64..1_000_000, 5..6);
        let mut rng = crate::TestRng::deterministic("hash_set_reaches_target_size");
        let out = crate::Strategy::generate(&s, &mut rng);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
