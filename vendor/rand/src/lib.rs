//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no registry access, so the
//! tiny slice of `rand` 0.8 the workspace actually uses is vendored here:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64, matching
//!   the upstream choice of a small, fast, non-cryptographic generator;
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism is the only contract the workspace relies on (every sampler
//! takes an explicit seed); the exact stream does **not** need to match
//! crates.io `rand` bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution
    /// (uniform over the type's natural range; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the output type's natural range.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span is < 2^64 for all
                // supported integer widths.
                let span64 = span as u64;
                let mut m = (rng.next_u64() as u128).wrapping_mul(span64 as u128);
                let mut lo = m as u64;
                if lo < span64 {
                    let threshold = span64.wrapping_neg() % span64;
                    while lo < threshold {
                        m = (rng.next_u64() as u128).wrapping_mul(span64 as u128);
                        lo = m as u64;
                    }
                }
                let offset = (m >> 64) as u128;
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// SplitMix64: the seed expander used by `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the 64-bit `SmallRng` of
    /// upstream `rand` 0.8).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Snapshot the raw xoshiro256++ state words (checkpoint support:
        /// a generator restored from this snapshot continues the exact
        /// stream).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`Self::state`] snapshot. The
        /// all-zero state is a fixed point of xoshiro and can never be
        /// produced by a live generator, so it is remapped the same way
        /// [`SeedableRng::from_seed`] remaps it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro; remap it.
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_single(0..i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i: usize = crate::SampleRange::sample_single(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17i32);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut restored = SmallRng::from_state(rng.state());
        for _ in 0..256 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_remapped() {
        let mut a = SmallRng::from_state([0; 4]);
        let mut b = SmallRng::seed_from_u64(0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
