//! Offline shim for the subset of `criterion` the bench harnesses use.
//!
//! Registry access is unavailable in the build environment, so this crate
//! provides an API-compatible stand-in. Semantics:
//!
//! * In **test mode** (`cargo test`, i.e. no `--bench` argument) every
//!   benchmark body runs exactly once — the same contract real criterion
//!   honors — so `cargo test` exercises every bench target cheaply.
//! * In **bench mode** (`cargo bench` passes `--bench`) each body is timed
//!   over a fixed number of iterations and a `name ... median-ish mean`
//!   line is printed. No statistics, plots, or baselines — swap the real
//!   crate back in when the environment has registry access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = if self.test_mode { 1 } else { self.iters };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / iters.max(1) as u32;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = if self.test_mode { 1 } else { self.iters };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / iters.max(1) as u32;
    }

    /// Like [`Bencher::iter_batched`] with `&mut I` routines.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), _size);
    }
}

/// Top-level benchmark manager.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion treats the presence of `--bench` (passed by
        // `cargo bench`) as "measure"; anything else (e.g. `cargo test`
        // running the harness-less target) is test mode.
        let bench = std::env::args().any(|a| a == "--bench");
        Self { test_mode: !bench }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            test_mode: self.test_mode,
            sample_size: 10,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            test_mode: self.test_mode,
            sample_size: 10,
            _parent: std::marker::PhantomData,
        };
        group.bench_function(id, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    // Tie to the parent so the borrow rules match real criterion.
    #[doc(hidden)]
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the measurement sample size (accepted; loosely honored).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.test_mode,
            iters: self.sample_size.min(20) as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.elapsed);
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            iters: self.sample_size.min(20) as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, b.elapsed);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, elapsed: Duration) {
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if self.test_mode {
            eprintln!("bench {full}: ok (test mode, 1 iteration)");
        } else {
            eprintln!("bench {full}: {elapsed:?}/iter");
        }
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
