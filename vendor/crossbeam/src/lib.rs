//! Offline shim for the slice of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with spawn closures that receive the scope.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this shim
//! is a thin adapter that re-creates the crossbeam calling convention
//! (`s.spawn(|scope| ...)` and a `Result`-returning `scope`) on top of
//! [`std::thread::scope`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Result of a [`scope`] call: `Err` only if a child thread panicked.
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// handle (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Create a scope for spawning borrowing threads; all spawned threads
    /// are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic out of
    /// `scope` itself (std semantics); callers that `.unwrap()` /
    /// `.expect()` the returned `Result` observe equivalent behavior.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn spawn_closure_receives_scope() {
        let n = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }
}
