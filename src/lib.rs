//! # source-lda
//!
//! A production-quality Rust reproduction of **Source-LDA: Enhancing
//! probabilistic topic models using prior knowledge sources** (Wood, Tan,
//! Wang, Arnold — ICDE 2017).
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`srclda_math`] — numerics (Dirichlet/Gaussian/categorical sampling,
//!   JS divergence, prefix sums, interpolation, k-means);
//! * [`srclda_corpus`] — text substrate (vocabulary, tokenizer, TF-IDF,
//!   co-occurrence);
//! * [`srclda_knowledge`] — knowledge sources and the λ smoothing function;
//! * [`srclda_core`] — the topic models (LDA, Source-LDA, EDA, CTM) and the
//!   serial/parallel collapsed Gibbs samplers;
//! * [`srclda_labeling`] — post-hoc topic labeling (JS, TF-IDF/CS,
//!   counting, PMI, IR-LDA);
//! * [`srclda_synth`] — synthetic data generators (grid topics, Wikipedia-
//!   like articles, newswire corpora);
//! * [`srclda_eval`] — evaluation metrics and report rendering;
//! * [`srclda_serve`] — model persistence (versioned `.slda` artifacts) and
//!   the online fold-in inference engine (plus the `srclda-infer` CLI).
//!
//! ## Quickstart
//!
//! ```
//! use source_lda::prelude::*;
//!
//! // Build a tiny corpus (the paper's §I case study).
//! let mut builder = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
//! builder.add_tokens("d1", &["pencil", "pencil", "umpire"]);
//! builder.add_tokens("d2", &["ruler", "ruler", "baseball"]);
//! let corpus = builder.build();
//!
//! // Knowledge source: two labeled articles.
//! let mut ks = KnowledgeSourceBuilder::new();
//! ks.add_article("School Supplies", "pencil pencil pencil ruler ruler eraser");
//! ks.add_article("Baseball", "baseball baseball umpire umpire pitcher");
//! let source = ks.build(corpus.vocabulary());
//!
//! // Fit the bijective Source-LDA model.
//! let model = SourceLda::builder()
//!     .knowledge_source(source)
//!     .variant(Variant::Bijective)
//!     .alpha(0.5)
//!     .iterations(200)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let fitted = model.fit(&corpus).unwrap();
//! assert_eq!(fitted.num_topics(), 2);
//! ```

#![forbid(unsafe_code)]

pub use srclda_core as core;
pub use srclda_corpus as corpus;
pub use srclda_eval as eval;
pub use srclda_knowledge as knowledge;
pub use srclda_labeling as labeling;
pub use srclda_math as math;
pub use srclda_obs as obs;
pub use srclda_serve as serve;
pub use srclda_synth as synth;

/// One-stop imports for typical usage.
pub mod prelude {
    pub use srclda_core::prelude::*;
    pub use srclda_corpus::{
        Corpus, CorpusBuilder, DocId, Document, Tokenizer, TopicId, Vocabulary, WordId,
    };
    pub use srclda_knowledge::{KnowledgeSource, KnowledgeSourceBuilder};
    pub use srclda_math::{rng_from_seed, SldaRng};
    pub use srclda_serve::{EngineOptions, InferenceEngine, ModelArtifact};
}
