//! The optimized serial kernel (`Backend::Serial` — flat prior tables,
//! cached denominator reciprocals, sparse document-topic bookkeeping,
//! non-atomic counts) must walk the **identical** chain as the dense
//! reference sweep (`Backend::SerialDense`), verified through the public
//! API on models covering every prior kind.
//!
//! **Tolerance: exact (zero)** — same rationale as
//! `backend_equivalence.rs`, but here the bar is even stricter: the kernel
//! reproduces `TopicPrior::word_weight` bit for bit from cached
//! reciprocals (every cached value is recomputed `1.0 / (n_t + c)` at the
//! current counts, never derived incrementally), so no draw can move by
//! even an ulp. Assignments, φ, and θ must match bitwise on every seed,
//! not just pinned ones. Run this suite in a debug build to also arm the
//! kernel's `debug_assert` underflow checks (CI does).

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::prelude::*;
use source_lda::synth::random_source_topics;

fn fit_source_lda(backend: Backend, variant: Variant, seed: u64) -> FittedModel {
    let (vocab, knowledge) = random_source_topics(250, 16, 10, 120, 11);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 30,
        doc_len: DocLength::Fixed(25),
        lambda_mode: LambdaMode::None,
        seed: 13,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..6).collect::<Vec<_>>()), &vocab)
    .unwrap();
    SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(variant)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.5)
        .iterations(20)
        .backend(backend)
        .seed(seed)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap()
}

fn assert_identical(a: &FittedModel, b: &FittedModel, what: &str) {
    assert_eq!(a.assignments(), b.assignments(), "{what}: chains diverged");
    assert_eq!(a.phi().as_slice(), b.phi().as_slice(), "{what}: φ diverged");
    assert_eq!(
        a.theta().as_slice(),
        b.theta().as_slice(),
        "{what}: θ diverged"
    );
}

#[test]
fn kernel_matches_dense_on_lambda_integrated_model() {
    // Several seeds, not one pinned seed: the equivalence is structural.
    for seed in [7u64, 77, 770] {
        let dense = fit_source_lda(Backend::SerialDense, Variant::Full, seed);
        let kernel = fit_source_lda(Backend::Serial, Variant::Full, seed);
        assert_identical(&kernel, &dense, &format!("full variant, seed {seed}"));
    }
}

#[test]
fn kernel_matches_dense_on_fixed_prior_model() {
    let dense = fit_source_lda(Backend::SerialDense, Variant::Mixture, 21);
    let kernel = fit_source_lda(Backend::Serial, Variant::Mixture, 21);
    assert_identical(&kernel, &dense, "mixture variant");
}

#[test]
fn kernel_matches_dense_with_adaptive_lambda() {
    // λ adaptation rebuilds the sweep tables between chunks; the chains
    // must still agree sweep for sweep.
    let fit = |backend: Backend| -> FittedModel {
        let (vocab, knowledge) = random_source_topics(200, 10, 8, 100, 5);
        let generated = SourceLdaGenerator {
            alpha: 0.5,
            num_docs: 20,
            doc_len: DocLength::Fixed(20),
            lambda_mode: LambdaMode::None,
            seed: 3,
            ..SourceLdaGenerator::default()
        }
        .generate(&knowledge.select(&(0..5).collect::<Vec<_>>()), &vocab)
        .unwrap();
        SourceLda::builder()
            .knowledge_source(knowledge)
            .variant(Variant::Full)
            .approximation_steps(3)
            .smoothing(SmoothingMode::Identity)
            .adaptive_lambda(5)
            .lambda_burn_in(5)
            .alpha(0.5)
            .iterations(18)
            .backend(backend)
            .seed(99)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(
        &fit(Backend::Serial),
        &fit(Backend::SerialDense),
        "adaptive λ",
    );
}

#[test]
fn kernel_matches_dense_on_plain_lda() {
    let fit = |backend: Backend| -> FittedModel {
        let mut b = source_lda::corpus::CorpusBuilder::new()
            .tokenizer(source_lda::corpus::Tokenizer::permissive());
        for i in 0..12 {
            b.add_tokens(
                format!("d{i}"),
                &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"][i % 3..i % 3 + 3],
            );
        }
        let corpus = b.build();
        Lda::builder()
            .topics(4)
            .alpha(0.3)
            .beta(0.05)
            .iterations(60)
            .backend(backend)
            .seed(8)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap()
    };
    assert_identical(&fit(Backend::Serial), &fit(Backend::SerialDense), "LDA");
}

#[test]
fn kernel_matches_dense_on_frozen_and_concept_models() {
    let (vocab, knowledge) = random_source_topics(150, 8, 8, 80, 9);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 20,
        doc_len: DocLength::Fixed(20),
        lambda_mode: LambdaMode::None,
        seed: 17,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..8).collect::<Vec<_>>()), &vocab)
    .unwrap();

    let eda = |backend: Backend| {
        Eda::builder()
            .knowledge_source(knowledge.clone())
            .alpha(0.4)
            .iterations(25)
            .backend(backend)
            .seed(31)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(&eda(Backend::Serial), &eda(Backend::SerialDense), "EDA");

    let ctm = |backend: Backend| {
        Ctm::builder()
            .knowledge_source(knowledge.clone())
            .beta(0.2)
            .alpha(0.4)
            .iterations(25)
            .backend(backend)
            .seed(31)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(&ctm(Backend::Serial), &ctm(Backend::SerialDense), "CTM");
}
