//! The optimized serial kernel (`Backend::Serial` — flat prior tables,
//! cached denominator reciprocals, sparse document-topic bookkeeping,
//! non-atomic counts) must walk the **identical** chain as the dense
//! reference sweep (`Backend::SerialDense`), verified through the public
//! API on models covering every prior kind.
//!
//! **Tolerance: exact (zero)** — same rationale as
//! `backend_equivalence.rs`, but here the bar is even stricter: the kernel
//! reproduces `TopicPrior::word_weight` bit for bit from cached
//! reciprocals (every cached value is recomputed `1.0 / (n_t + c)` at the
//! current counts, never derived incrementally), so no draw can move by
//! even an ulp. Assignments, φ, and θ must match bitwise on every seed,
//! not just pinned ones. Run this suite in a debug build to also arm the
//! kernel's `debug_assert` underflow checks (CI does).
//!
//! The sub-linear bucket kernel (`Backend::SparseKernel`) is held to a
//! **distribution-level** contract instead: it consumes the per-token
//! uniform through bucket thresholds, so it walks a *different* chain over
//! the same conditional distributions. Its acceptance here is held-out
//! perplexity parity with `Backend::Serial` within a relative band, plus
//! full seed-determinism; the exact bucket-mass ≡ dense-mass property
//! tests live with the kernel (`sampler::sparse`).

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::prelude::*;
use source_lda::synth::random_source_topics;

fn fit_source_lda(backend: Backend, variant: Variant, seed: u64) -> FittedModel {
    let (vocab, knowledge) = random_source_topics(250, 16, 10, 120, 11);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 30,
        doc_len: DocLength::Fixed(25),
        lambda_mode: LambdaMode::None,
        seed: 13,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..6).collect::<Vec<_>>()), &vocab)
    .unwrap();
    SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(variant)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.5)
        .iterations(20)
        .backend(backend)
        .seed(seed)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap()
}

fn assert_identical(a: &FittedModel, b: &FittedModel, what: &str) {
    assert_eq!(a.assignments(), b.assignments(), "{what}: chains diverged");
    assert_eq!(a.phi().as_slice(), b.phi().as_slice(), "{what}: φ diverged");
    assert_eq!(
        a.theta().as_slice(),
        b.theta().as_slice(),
        "{what}: θ diverged"
    );
}

#[test]
fn kernel_matches_dense_on_lambda_integrated_model() {
    // Several seeds, not one pinned seed: the equivalence is structural.
    for seed in [7u64, 77, 770] {
        let dense = fit_source_lda(Backend::SerialDense, Variant::Full, seed);
        let kernel = fit_source_lda(Backend::Serial, Variant::Full, seed);
        assert_identical(&kernel, &dense, &format!("full variant, seed {seed}"));
    }
}

#[test]
fn kernel_matches_dense_on_fixed_prior_model() {
    let dense = fit_source_lda(Backend::SerialDense, Variant::Mixture, 21);
    let kernel = fit_source_lda(Backend::Serial, Variant::Mixture, 21);
    assert_identical(&kernel, &dense, "mixture variant");
}

#[test]
fn kernel_matches_dense_with_adaptive_lambda() {
    // λ adaptation rebuilds the sweep tables between chunks; the chains
    // must still agree sweep for sweep.
    let fit = |backend: Backend| -> FittedModel {
        let (vocab, knowledge) = random_source_topics(200, 10, 8, 100, 5);
        let generated = SourceLdaGenerator {
            alpha: 0.5,
            num_docs: 20,
            doc_len: DocLength::Fixed(20),
            lambda_mode: LambdaMode::None,
            seed: 3,
            ..SourceLdaGenerator::default()
        }
        .generate(&knowledge.select(&(0..5).collect::<Vec<_>>()), &vocab)
        .unwrap();
        SourceLda::builder()
            .knowledge_source(knowledge)
            .variant(Variant::Full)
            .approximation_steps(3)
            .smoothing(SmoothingMode::Identity)
            .adaptive_lambda(5)
            .lambda_burn_in(5)
            .alpha(0.5)
            .iterations(18)
            .backend(backend)
            .seed(99)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(
        &fit(Backend::Serial),
        &fit(Backend::SerialDense),
        "adaptive λ",
    );
}

#[test]
fn kernel_matches_dense_on_plain_lda() {
    let fit = |backend: Backend| -> FittedModel {
        let mut b = source_lda::corpus::CorpusBuilder::new()
            .tokenizer(source_lda::corpus::Tokenizer::permissive());
        for i in 0..12 {
            b.add_tokens(
                format!("d{i}"),
                &["alpha", "beta", "gamma", "delta", "epsilon", "zeta"][i % 3..i % 3 + 3],
            );
        }
        let corpus = b.build();
        Lda::builder()
            .topics(4)
            .alpha(0.3)
            .beta(0.05)
            .iterations(60)
            .backend(backend)
            .seed(8)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap()
    };
    assert_identical(&fit(Backend::Serial), &fit(Backend::SerialDense), "LDA");
}

/// Generate a train/held-out pair from the same synthetic world (disjoint
/// generator seeds so the held-out documents are genuinely unseen).
fn train_and_heldout() -> (Corpus, Corpus, KnowledgeSource) {
    let (vocab, knowledge) = random_source_topics(250, 16, 10, 120, 11);
    let generate = |seed: u64, docs: usize| {
        SourceLdaGenerator {
            alpha: 0.5,
            num_docs: docs,
            doc_len: DocLength::Fixed(25),
            lambda_mode: LambdaMode::None,
            seed,
            ..SourceLdaGenerator::default()
        }
        .generate(&knowledge.select(&(0..6).collect::<Vec<_>>()), &vocab)
        .unwrap()
        .corpus
    };
    (generate(13, 30), generate(41, 10), knowledge)
}

fn fit_on(corpus: &Corpus, knowledge: &KnowledgeSource, backend: Backend) -> FittedModel {
    SourceLda::builder()
        .knowledge_source(knowledge.clone())
        .variant(Variant::Full)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.5)
        .iterations(40)
        .backend(backend)
        .seed(7)
        .build()
        .unwrap()
        .fit(corpus)
        .unwrap()
}

/// The acceptance criterion for the sub-linear kernel: held-out perplexity
/// parity with `Backend::Serial` on the λ-integrated model, within a
/// relative band (same band the document shards are held to — two
/// legitimately different chains over the same posterior).
#[test]
fn sparse_kernel_perplexity_parity_with_serial() {
    let (train, heldout, knowledge) = train_and_heldout();
    let serial = fit_on(&train, &knowledge, Backend::Serial);
    let sparse = fit_on(&train, &knowledge, Backend::SparseKernel);
    let serial_ppx = gibbs_perplexity(&serial, &heldout, 30, 99).unwrap();
    let sparse_ppx = gibbs_perplexity(&sparse, &heldout, 30, 99).unwrap();
    let rel = (sparse_ppx - serial_ppx).abs() / serial_ppx;
    assert!(
        rel < 0.15,
        "sparse perplexity {sparse_ppx} vs serial {serial_ppx} (rel {rel:.3})"
    );
}

/// The bucket kernel is a pure function of the seed through the public
/// API — two identical fits match bitwise, and different seeds actually
/// produce different chains (the determinism isn't vacuous).
#[test]
fn sparse_kernel_is_seed_deterministic() {
    for seed in [7u64, 77] {
        let a = fit_source_lda(Backend::SparseKernel, Variant::Full, seed);
        let b = fit_source_lda(Backend::SparseKernel, Variant::Full, seed);
        assert_identical(&a, &b, &format!("sparse replay, seed {seed}"));
    }
    let a = fit_source_lda(Backend::SparseKernel, Variant::Full, 7);
    let b = fit_source_lda(Backend::SparseKernel, Variant::Full, 77);
    assert_ne!(
        a.assignments(),
        b.assignments(),
        "different seeds must walk different chains"
    );
}

/// The sparse kernel handles every prior family end to end (mixture adds
/// fixed-δ topics; EDA is all-frozen; CTM is all-concept-set) and lands on
/// the same case-study structure the dense kernels find.
#[test]
fn sparse_kernel_runs_every_prior_family() {
    let mixture = fit_source_lda(Backend::SparseKernel, Variant::Mixture, 21);
    assert_eq!(
        mixture.assignments().len(),
        30,
        "mixture fit must cover the corpus"
    );

    let (vocab, knowledge) = random_source_topics(150, 8, 8, 80, 9);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 20,
        doc_len: DocLength::Fixed(20),
        lambda_mode: LambdaMode::None,
        seed: 17,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..8).collect::<Vec<_>>()), &vocab)
    .unwrap();
    let eda = Eda::builder()
        .knowledge_source(knowledge.clone())
        .alpha(0.4)
        .iterations(25)
        .backend(Backend::SparseKernel)
        .seed(31)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap();
    assert_eq!(eda.num_topics(), 8);
    let ctm = Ctm::builder()
        .knowledge_source(knowledge)
        .beta(0.2)
        .alpha(0.4)
        .iterations(25)
        .backend(Backend::SparseKernel)
        .seed(31)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap();
    assert_eq!(ctm.num_topics(), 8);
}

#[test]
fn kernel_matches_dense_on_frozen_and_concept_models() {
    let (vocab, knowledge) = random_source_topics(150, 8, 8, 80, 9);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 20,
        doc_len: DocLength::Fixed(20),
        lambda_mode: LambdaMode::None,
        seed: 17,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..8).collect::<Vec<_>>()), &vocab)
    .unwrap();

    let eda = |backend: Backend| {
        Eda::builder()
            .knowledge_source(knowledge.clone())
            .alpha(0.4)
            .iterations(25)
            .backend(backend)
            .seed(31)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(&eda(Backend::Serial), &eda(Backend::SerialDense), "EDA");

    let ctm = |backend: Backend| {
        Ctm::builder()
            .knowledge_source(knowledge.clone())
            .beta(0.2)
            .alpha(0.4)
            .iterations(25)
            .backend(backend)
            .seed(31)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap()
    };
    assert_identical(&ctm(Backend::Serial), &ctm(Backend::SerialDense), "CTM");
}
