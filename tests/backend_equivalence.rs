//! The paper's exactness claim (§III.C.4): Algorithms 2 and 3 only
//! reorganize the prefix-sum arithmetic, so from the same seed they walk
//! the same chain as the serial sampler — verified here through the public
//! API on a model mixing every learnable prior kind.
//!
//! **Tolerance: exact (zero).** These are equality assertions on the raw
//! assignment vectors and on every φ/θ entry, not approximate comparisons.
//! Why zero is the right bound:
//!
//! * Every backend consumes exactly one uniform per token from the same
//!   leader-owned RNG and resolves it with the same
//!   first-prefix-exceeding-u rule, so the *chains* can only diverge if a
//!   draw flips across a topic boundary.
//! * The parallel backends reassociate the prefix-sum additions
//!   (chunk-local scans + chunk offsets vs one running accumulation), which
//!   can perturb individual prefix entries by an ulp or two — but a draw
//!   only flips if the uniform lands inside that ulp-wide sliver around a
//!   boundary. On these fixed seeds no draw does, and the test pins that:
//!   the full 25-iteration chain, hence the integer count matrices, hence
//!   every φ/θ entry, match exactly.
//! * φ/θ equality is asserted bit-level rather than with an epsilon so a
//!   regression cannot hide inside a tolerance chosen for convenience.
//!
//! If a future sampler optimization genuinely reassociates more
//! aggressively (e.g. SIMD tree reductions) and a pinned seed starts
//! landing on boundaries, the right fix is to re-pin seeds or assert
//! chain-equality probabilistically over several seeds — not to silently
//! loosen these equalities into approximate ones, which would discard the
//! exactness property the paper proves (§III.C.4) and this reproduction
//! advertises.
//!
//! One backend is deliberately absent here: `Backend::SparseKernel`
//! resolves the same per-token uniform through bucket thresholds
//! (constant/doc/word masses) rather than a full prefix sum, so it walks
//! a *different* chain by construction and an exact assert is impossible
//! in principle, not merely fragile. Its contract is distribution-level
//! and lives in `tests/kernel_equivalence.rs` and the `sampler::sparse`
//! property tests.

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::prelude::*;
use source_lda::synth::random_source_topics;

fn fit_with(backend: Backend) -> FittedModel {
    let (vocab, knowledge) = random_source_topics(300, 24, 12, 150, 3);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 40,
        doc_len: DocLength::Fixed(30),
        lambda_mode: LambdaMode::None,
        seed: 31,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..8).collect::<Vec<_>>()), &vocab)
    .unwrap();
    SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .unlabeled_topics(4)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.5)
        .iterations(25)
        .backend(backend)
        .seed(77)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap()
}

#[test]
fn simple_parallel_matches_serial() {
    let serial = fit_with(Backend::Serial);
    for threads in [2usize, 3] {
        let par = fit_with(Backend::SimpleParallel { threads });
        assert_eq!(
            serial.assignments(),
            par.assignments(),
            "Algorithm 3 with {threads} threads diverged from the serial chain"
        );
        assert_eq!(serial.phi().as_slice(), par.phi().as_slice());
        assert_eq!(serial.theta().as_slice(), par.theta().as_slice());
    }
}

#[test]
fn prefix_sums_matches_serial() {
    let serial = fit_with(Backend::Serial);
    let par = fit_with(Backend::PrefixSums { threads: 2 });
    assert_eq!(
        serial.assignments(),
        par.assignments(),
        "Algorithm 2 diverged from the serial chain"
    );
}

#[test]
fn different_seeds_give_different_chains() {
    // Sanity check that the equality above is non-trivial.
    let a = fit_with(Backend::Serial);
    let (vocab, knowledge) = random_source_topics(300, 24, 12, 150, 3);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 40,
        doc_len: DocLength::Fixed(30),
        lambda_mode: LambdaMode::None,
        seed: 31,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..8).collect::<Vec<_>>()), &vocab)
    .unwrap();
    let b = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .unlabeled_topics(4)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.5)
        .iterations(25)
        .seed(78) // different seed
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap();
    assert_ne!(a.assignments(), b.assignments());
}
