//! Failure injection: degenerate knowledge sources, pathological corpora,
//! and hostile configurations must produce errors or graceful degradation —
//! never panics or poisoned state.

use source_lda::knowledge::{KnowledgeSource, KnowledgeSourceBuilder, SourceTopic};
use source_lda::prelude::*;

fn tiny_corpus() -> Corpus {
    let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    b.add_tokens("d1", &["alpha", "beta", "gamma", "alpha"]);
    b.add_tokens("d2", &["beta", "delta", "delta", "gamma"]);
    b.build()
}

#[test]
fn knowledge_source_with_no_corpus_overlap_still_fits() {
    let c = tiny_corpus();
    // Articles whose words never appear in the corpus: every topic's counts
    // collapse to ε-only priors, which is the flat-prior limit.
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article("Off-topic A", "completely unrelated prose about sailing");
    ks.add_article("Off-topic B", "another unrelated article about cooking");
    let knowledge = ks.build(c.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .iterations(20)
        .seed(1)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    assert!(fitted.counts().check_invariants());
    for t in 0..2 {
        let sum: f64 = fitted.phi_row(t).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn empty_article_behaves_as_flat_topic() {
    let c = tiny_corpus();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article("Empty", "");
    ks.add_counts("Real", vec![("alpha".into(), 50.0), ("beta".into(), 30.0)]);
    let knowledge = ks.build(c.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .iterations(30)
        .seed(2)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    assert!(fitted.counts().check_invariants());
}

#[test]
fn single_token_documents_are_fine() {
    let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    for i in 0..10 {
        b.add_tokens(format!("d{i}"), &["solo"]);
    }
    let c = b.build();
    let fitted = Lda::builder()
        .topics(3)
        .iterations(15)
        .seed(3)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    assert!(fitted.counts().check_invariants());
}

#[test]
fn more_topics_than_tokens_is_legal() {
    let c = tiny_corpus(); // 8 tokens
    let fitted = Lda::builder()
        .topics(50)
        .iterations(10)
        .seed(4)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    assert!(fitted.counts().check_invariants());
    // Most topics end up empty; their φ rows are still distributions.
    for t in 0..50 {
        let sum: f64 = fitted.phi_row(t).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn ctm_with_fully_disjoint_bags_falls_back_gracefully() {
    let c = tiny_corpus();
    // Concepts whose bags cover no corpus word at all.
    let knowledge = KnowledgeSource::new(vec![
        SourceTopic::new("Void 1", vec![0.0; c.vocab_size()]),
        SourceTopic::new("Void 2", vec![0.0; c.vocab_size()]),
    ]);
    let fitted = Ctm::builder()
        .knowledge_source(knowledge)
        .unconstrained_topics(0)
        .iterations(10)
        .seed(5)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    // Every token hit the uniform fallback; counts stay consistent.
    assert!(fitted.counts().check_invariants());
}

#[test]
fn builder_misconfigurations_error_cleanly() {
    let c = tiny_corpus();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article("A", "alpha beta");
    let knowledge = ks.build(c.vocabulary());

    assert!(SourceLda::builder().build().is_err(), "no knowledge source");
    assert!(SourceLda::builder()
        .knowledge_source(knowledge.clone())
        .alpha(-1.0)
        .build()
        .is_err());
    assert!(SourceLda::builder()
        .knowledge_source(knowledge.clone())
        .iterations(0)
        .build()
        .is_err());
    assert!(SourceLda::builder()
        .knowledge_source(knowledge.clone())
        .approximation_steps(0)
        .build()
        .is_err());
    assert!(SourceLda::builder()
        .knowledge_source(knowledge)
        .fixed_lambda(2.0)
        .build()
        .is_err());
    assert!(Lda::builder().topics(0).build().is_err());
}

#[test]
fn mismatched_vocabulary_is_an_error_not_a_crash() {
    let c = tiny_corpus();
    let other = {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        b.add_tokens("x", &["one", "two"]);
        b.build()
    };
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article("A", "alpha beta");
    let knowledge = ks.build(c.vocabulary());
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .iterations(5)
        .build()
        .unwrap();
    let err = model.fit(&other).unwrap_err();
    assert!(err.to_string().contains("vocabulary"));
}
