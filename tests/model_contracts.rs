//! Cross-crate contracts each model family must honor (§III / §IV of the
//! paper): EDA never moves φ, CTM never leaks outside concept bags, the
//! bijective model conforms φ to heavy source priors, and held-out
//! perplexity behaves.

use source_lda::core::perplexity::{gibbs_perplexity, importance_sampling_perplexity};
use source_lda::corpus::train_test_split;
use source_lda::knowledge::KnowledgeSourceBuilder;
use source_lda::prelude::*;

fn corpus() -> Corpus {
    let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    for i in 0..30 {
        if i % 2 == 0 {
            b.add_tokens(
                format!("g{i}"),
                &["gas", "pipeline", "gas", "energy", "rig"],
            );
        } else {
            b.add_tokens(
                format!("s{i}"),
                &["stock", "market", "fund", "stock", "bond"],
            );
        }
    }
    b.build()
}

fn knowledge(c: &Corpus) -> source_lda::knowledge::KnowledgeSource {
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_counts(
        "Natural Gas",
        vec![
            ("gas".into(), 300.0),
            ("pipeline".into(), 150.0),
            ("energy".into(), 100.0),
            ("rig".into(), 50.0),
        ],
    );
    ks.add_counts(
        "Stock Market",
        vec![
            ("stock".into(), 300.0),
            ("market".into(), 150.0),
            ("fund".into(), 100.0),
            ("bond".into(), 50.0),
        ],
    );
    ks.build(c.vocabulary())
}

#[test]
fn eda_phi_is_immutable() {
    let c = corpus();
    let ks = knowledge(&c);
    let expected: Vec<Vec<f64>> = ks
        .topics()
        .iter()
        .map(|t| {
            let h = t.hyperparameters(0.01);
            let s: f64 = h.iter().sum();
            h.into_iter().map(|x| x / s).collect()
        })
        .collect();
    let fitted = Eda::builder()
        .knowledge_source(ks)
        .epsilon(0.01)
        .iterations(50)
        .seed(4)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    for (t, want) in expected.iter().enumerate() {
        for (a, b) in fitted.phi_row(t).iter().zip(want) {
            assert!((a - b).abs() < 1e-9, "EDA φ moved: {a} vs {b}");
        }
    }
}

#[test]
fn ctm_respects_concept_support() {
    let c = corpus();
    let ks = knowledge(&c);
    let fitted = Ctm::builder()
        .knowledge_source(ks)
        .unconstrained_topics(1)
        .alpha(0.5)
        .beta(0.1)
        .iterations(60)
        .seed(4)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    // φ of the Natural Gas concept (topic 1) is zero on finance words.
    for w in ["stock", "market", "fund", "bond"] {
        let id = c.vocabulary().get(w).unwrap().index();
        assert_eq!(fitted.phi_row(1)[id], 0.0, "{w} leaked into Natural Gas");
    }
    // And vice versa.
    for w in ["gas", "pipeline", "energy", "rig"] {
        let id = c.vocabulary().get(w).unwrap().index();
        assert_eq!(fitted.phi_row(2)[id], 0.0, "{w} leaked into Stock Market");
    }
}

#[test]
fn bijective_phi_conforms_to_heavy_priors() {
    let c = corpus();
    let ks = knowledge(&c);
    let source_dists: Vec<Vec<f64>> = ks.topics().iter().map(|t| t.distribution()).collect();
    let fitted = SourceLda::builder()
        .knowledge_source(ks)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(100)
        .seed(4)
        .build()
        .unwrap()
        .fit(&c)
        .unwrap();
    for (t, src) in source_dists.iter().enumerate() {
        let js = source_lda::math::js_divergence(fitted.phi_row(t), src).unwrap();
        assert!(
            js < 0.08,
            "bijective φ should hug the source distribution; topic {t} JS = {js:.4}"
        );
    }
}

#[test]
fn perplexity_estimators_behave_on_holdout() {
    let c = corpus();
    let ks = knowledge(&c);
    let (train, test) = train_test_split(&c, 0.2, 8);
    let fitted = SourceLda::builder()
        .knowledge_source(ks)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(80)
        .seed(4)
        .build()
        .unwrap()
        .fit(&train)
        .unwrap();
    let g = gibbs_perplexity(&fitted, &test, 25, 1).unwrap();
    let i = importance_sampling_perplexity(&fitted, &test, 64, 1).unwrap();
    let v = c.vocab_size() as f64;
    assert!(g >= 1.0 && g < v, "gibbs perplexity out of range: {g}");
    assert!(i >= 1.0 && i < v, "IS perplexity out of range: {i}");
    // Structured documents over a 10-word vocabulary with two clean themes:
    // a fitted model should beat the uniform bound substantially.
    assert!(g < v * 0.8, "model barely beats uniform: {g} vs V = {v}");
}

#[test]
fn case_study_table_shape_holds() {
    // The experiment harness is exercised end-to-end in smoke mode.
    let report = srclda_bench::experiments::table0::run(srclda_bench::Scale::Smoke);
    assert!(report.contains("JS Divergence"));
    assert!(report.contains("Source-LDA (bijective) token assignments"));
}
