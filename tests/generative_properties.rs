//! Property-based tests across the generative/inference stack.

use proptest::prelude::*;
use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::corpus::Vocabulary;
use source_lda::knowledge::{KnowledgeSource, SourceTopic};
use source_lda::prelude::*;

fn small_knowledge(v: usize, topics: usize, seed: u64) -> (Vocabulary, KnowledgeSource) {
    let vocab = Vocabulary::from_words((0..v).map(|i| format!("w{i}")));
    let mut rng = rng_from_seed(seed);
    use rand::Rng;
    let source = KnowledgeSource::new(
        (0..topics)
            .map(|t| {
                let counts: Vec<f64> = (0..v)
                    .map(|_| {
                        if rng.gen::<f64>() < 0.4 {
                            rng.gen_range(1..30) as f64
                        } else {
                            0.0
                        }
                    })
                    .collect();
                // Ensure non-empty support.
                let mut counts = counts;
                counts[t % v] += 10.0;
                SourceTopic::new(format!("t{t}"), counts)
            })
            .collect(),
    );
    (vocab, source)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_corpora_are_internally_consistent(
        v in 6usize..30,
        topics in 2usize..6,
        docs in 1usize..12,
        len in 3usize..25,
        seed in any::<u64>(),
    ) {
        let (vocab, ks) = small_knowledge(v, topics, seed);
        let generated = SourceLdaGenerator {
            alpha: 0.5,
            num_docs: docs,
            doc_len: DocLength::Fixed(len),
            lambda_mode: LambdaMode::None,
            seed,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &vocab)
        .unwrap();
        prop_assert_eq!(generated.corpus.num_docs(), docs);
        prop_assert_eq!(generated.corpus.num_tokens(), docs * len);
        // Ground truth shapes agree with the corpus.
        prop_assert_eq!(generated.truth.assignments.len(), docs);
        for (doc, zs) in generated.corpus.docs().iter().zip(&generated.truth.assignments) {
            prop_assert_eq!(doc.len(), zs.len());
            for &z in zs {
                prop_assert!((z as usize) < topics);
            }
        }
        // θ rows are distributions.
        for d in 0..docs {
            let sum: f64 = generated.truth.theta.row(d).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fitting_preserves_count_invariants_for_any_seed(
        seed in any::<u64>(),
        k in 2usize..5,
    ) {
        let (vocab, ks) = small_knowledge(12, 3, 99);
        let generated = SourceLdaGenerator {
            alpha: 0.5,
            num_docs: 8,
            doc_len: DocLength::Fixed(10),
            lambda_mode: LambdaMode::None,
            seed: 1,
            ..SourceLdaGenerator::default()
        }
        .generate(&ks, &vocab)
        .unwrap();
        let fitted = SourceLda::builder()
            .knowledge_source(ks)
            .variant(Variant::Mixture)
            .unlabeled_topics(k)
            .alpha(0.5)
            .iterations(5)
            .seed(seed)
            .build()
            .unwrap()
            .fit(&generated.corpus)
            .unwrap();
        prop_assert!(fitted.counts().check_invariants());
        // Every assignment indexes a real topic.
        for doc in fitted.assignments() {
            for &z in doc {
                prop_assert!((z as usize) < fitted.num_topics());
            }
        }
    }

    #[test]
    fn vocabulary_round_trip(words in prop::collection::hash_set("[a-z]{2,8}", 1..40)) {
        let words: Vec<String> = words.into_iter().collect();
        let vocab = Vocabulary::from_words(words.iter());
        prop_assert_eq!(vocab.len(), words.len());
        for w in &words {
            let id = vocab.get(w).unwrap();
            prop_assert_eq!(vocab.word(id), w.as_str());
        }
    }
}
