//! End-to-end pipeline test: synthesize a knowledge base and corpus, fit
//! every model family, and check the paper's headline ordering (knowledge-
//! grounded models recover the planted topics; Source-LDA leads).

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::eval::{token_accuracy, TopicMapping};
use source_lda::prelude::*;
use source_lda::synth::{SyntheticWikipedia, WikipediaConfig};

struct World {
    generated: source_lda::core::generative::GeneratedCorpus,
    knowledge: source_lda::knowledge::KnowledgeSource,
}

fn world() -> World {
    let labels: Vec<String> = (0..10).map(|i| format!("topic-{i}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let wiki = SyntheticWikipedia::generate(
        &refs,
        &WikipediaConfig {
            core_words_per_topic: 20,
            shared_vocab: 80,
            article_len: 400,
            seed: 5,
            ..WikipediaConfig::default()
        },
    );
    let generated = SourceLdaGenerator {
        alpha: 0.4,
        num_docs: 150,
        doc_len: DocLength::Fixed(60),
        lambda_mode: LambdaMode::None,
        seed: 55,
        ..SourceLdaGenerator::default()
    }
    .generate(&wiki.knowledge, &wiki.vocab)
    .expect("generation succeeds");
    World {
        generated,
        knowledge: wiki.knowledge,
    }
}

fn accuracy_of(fitted: &FittedModel, w: &World, by_phi: bool) -> f64 {
    let mapping = if by_phi {
        TopicMapping::by_phi_js(fitted.phi(), &w.generated.truth.phi)
            .expect("generated phi matrices are finite")
    } else {
        TopicMapping::by_label(fitted.labels(), &w.generated.truth.labels)
    };
    token_accuracy(
        &w.generated.truth.assignments,
        fitted.assignments(),
        &mapping,
    )
    .fraction()
}

#[test]
fn knowledge_grounded_models_recover_planted_topics() {
    let w = world();
    let corpus = &w.generated.corpus;

    let src = SourceLda::builder()
        .knowledge_source(w.knowledge.clone())
        .variant(Variant::Bijective)
        .alpha(0.4)
        .iterations(120)
        .seed(1)
        .build()
        .unwrap()
        .fit(corpus)
        .unwrap();
    let src_acc = accuracy_of(&src, &w, false);
    assert!(src_acc > 0.6, "Source-LDA accuracy too low: {src_acc:.3}");

    let eda = Eda::builder()
        .knowledge_source(w.knowledge.clone())
        .alpha(0.4)
        .iterations(60)
        .seed(1)
        .build()
        .unwrap()
        .fit(corpus)
        .unwrap();
    let eda_acc = accuracy_of(&eda, &w, false);
    assert!(eda_acc > 0.5, "EDA accuracy too low: {eda_acc:.3}");

    // Bijective generation (λ = 1): SRC must at least match EDA.
    assert!(
        src_acc >= eda_acc - 0.02,
        "SRC {src_acc:.3} should not trail EDA {eda_acc:.3}"
    );

    let lda = Lda::builder()
        .topics(10)
        .alpha(0.4)
        .beta(0.05)
        .iterations(120)
        .seed(1)
        .build()
        .unwrap()
        .fit(corpus)
        .unwrap();
    let lda_acc = accuracy_of(&lda, &w, true);
    assert!(
        src_acc > lda_acc,
        "knowledge should help: SRC {src_acc:.3} vs LDA {lda_acc:.3}"
    );
}

#[test]
fn fitted_outputs_are_valid_distributions() {
    let w = world();
    let fitted = SourceLda::builder()
        .knowledge_source(w.knowledge.clone())
        .variant(Variant::Mixture)
        .unlabeled_topics(2)
        .alpha(0.4)
        .iterations(40)
        .seed(2)
        .build()
        .unwrap()
        .fit(&w.generated.corpus)
        .unwrap();
    assert_eq!(fitted.num_topics(), 12);
    for t in 0..fitted.num_topics() {
        let row = fitted.phi_row(t);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "phi row {t} sums to {sum}");
        assert!(row.iter().all(|&p| p >= 0.0));
    }
    for d in 0..w.generated.corpus.num_docs() {
        let sum: f64 = fitted.theta_row(d).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "theta row {d} sums to {sum}");
    }
    // Labels: 2 unlabeled then the ten source labels in order.
    assert_eq!(fitted.labels()[0], None);
    assert_eq!(fitted.labels()[2].as_deref(), Some("topic-0"));
}

#[test]
fn full_variant_with_superset_discovers_active_subset() {
    use source_lda::core::reduction::{reduce, ReductionPolicy};
    let labels: Vec<String> = (0..20).map(|i| format!("cand-{i}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let wiki = SyntheticWikipedia::generate(
        &refs,
        &WikipediaConfig {
            core_words_per_topic: 15,
            shared_vocab: 60,
            article_len: 300,
            seed: 9,
            ..WikipediaConfig::default()
        },
    );
    let active: Vec<usize> = vec![1, 4, 7, 10, 13];
    let generated = SourceLdaGenerator {
        alpha: 0.4,
        num_docs: 120,
        doc_len: DocLength::Fixed(50),
        lambda_mode: LambdaMode::None,
        seed: 91,
        ..SourceLdaGenerator::default()
    }
    .generate(&wiki.knowledge.select(&active), &wiki.vocab)
    .unwrap();
    let fitted = SourceLda::builder()
        .knowledge_source(wiki.knowledge.clone())
        .variant(Variant::Full)
        .unlabeled_topics(2)
        .approximation_steps(4)
        .smoothing(SmoothingMode::Identity)
        .alpha(0.4)
        .iterations(100)
        .seed(3)
        .build()
        .unwrap()
        .fit(&generated.corpus)
        .unwrap();
    let reduced = reduce(
        &fitted,
        ReductionPolicy::DocFrequency {
            min_docs: 15,
            min_tokens: 5,
        },
    )
    .unwrap();
    let discovered: Vec<&str> = reduced
        .labels
        .iter()
        .flatten()
        .map(String::as_str)
        .collect();
    let truth: Vec<String> = active.iter().map(|&i| format!("cand-{i}")).collect();
    let hits = discovered
        .iter()
        .filter(|d| truth.iter().any(|t| t == *d))
        .count();
    assert!(
        hits >= 4,
        "should rediscover most active topics; got {discovered:?}"
    );
    let false_pos = discovered.len() - hits;
    assert!(
        false_pos <= 3,
        "too many false discoveries: {discovered:?} (truth {truth:?})"
    );
}
