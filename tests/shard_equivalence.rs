//! Contracts of the document-sharded training backend
//! (`Backend::ShardedDocs`) and of training checkpoint/resume:
//!
//! * `S = 1` is **bit-identical** to the shard kernel's single-thread
//!   backend (`Flat` → `Backend::Serial`, `Sparse` →
//!   `Backend::SparseKernel`) — one shard's local view (snapshot + its own
//!   in-place updates) *is* the true state, and shard 0 continues the run
//!   RNG stream, so the sharded machinery degenerates to the single-thread
//!   kernel exactly;
//! * for any `S`, the chain is a pure function of `(seed, S, kernel)` —
//!   thread count only schedules work and never moves a bit;
//! * at every sweep boundary the merged global counts are exactly the
//!   counts implied by the assignments (proptest over shard/thread/kernel
//!   layouts);
//! * resume-from-checkpoint replays the remaining sweeps bit-identically
//!   to the uninterrupted run of the same backend, and the checkpoint
//!   interval itself never perturbs the chain (chunk-boundary invariance);
//! * `S > 1` is the standard AD-LDA approximation: a *different* chain,
//!   but statistically equivalent — pinned here as perplexity parity with
//!   the serial sampler on the golden fixture corpus.
//!
//! **Tolerance: exact (zero)** for everything except the perplexity-parity
//! test, which compares two legitimately different chains and uses a
//! relative band instead.

use proptest::prelude::*;
use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::core::{GibbsModel, TrainCheckpoint};
use source_lda::prelude::*;

/// A substantive synthetic world: 6 source topics + 3 unlabeled over a
/// 250-word vocabulary, 30 documents.
fn model_and_corpus(backend: Backend, iterations: usize) -> (GibbsModel, Corpus) {
    let (vocab, knowledge) = source_lda::synth::random_source_topics(250, 16, 10, 120, 11);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 30,
        doc_len: DocLength::Fixed(25),
        lambda_mode: LambdaMode::None,
        seed: 13,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..6).collect::<Vec<_>>()), &vocab)
    .unwrap();
    let vocab_size = generated.corpus.vocab_size();
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .adaptive_lambda(6)
        .lambda_burn_in(4)
        .alpha(0.5)
        .iterations(iterations)
        .backend(backend)
        .seed(29)
        .build()
        .unwrap()
        .assemble(vocab_size)
        .unwrap();
    (model, generated.corpus)
}

fn fit(backend: Backend, iterations: usize) -> FittedModel {
    let (model, corpus) = model_and_corpus(backend, iterations);
    model.fit(&corpus).unwrap()
}

fn assert_identical(a: &FittedModel, b: &FittedModel, what: &str) {
    assert_eq!(a.assignments(), b.assignments(), "{what}: chains diverged");
    assert_eq!(a.phi().as_slice(), b.phi().as_slice(), "{what}: φ diverged");
    assert_eq!(
        a.theta().as_slice(),
        b.theta().as_slice(),
        "{what}: θ diverged"
    );
}

#[test]
fn one_shard_is_bit_identical_to_the_serial_kernel() {
    let serial = fit(Backend::Serial, 18);
    for threads in [1, 3] {
        let sharded = fit(
            Backend::ShardedDocs {
                kernel: KernelKind::Flat,
                shards: 1,
                threads,
            },
            18,
        );
        assert_identical(
            &sharded,
            &serial,
            &format!("S=1, {threads} threads vs Backend::Serial"),
        );
    }
}

/// The composed axes degenerate the same way the flat kernel does: one
/// sparse shard *is* the single-thread bucket kernel — same bucket walks,
/// same uniform-consumption order, shard 0 continuing the run RNG.
#[test]
fn one_shard_sparse_is_bit_identical_to_the_sparse_kernel() {
    let sparse = fit(Backend::SparseKernel, 18);
    for threads in [1, 3] {
        let sharded = fit(
            Backend::ShardedDocs {
                kernel: KernelKind::Sparse,
                shards: 1,
                threads,
            },
            18,
        );
        assert_identical(
            &sharded,
            &sparse,
            &format!("S=1 sparse, {threads} threads vs Backend::SparseKernel"),
        );
    }
}

#[test]
fn sharded_chain_is_thread_count_invariant() {
    for kernel in [KernelKind::Flat, KernelKind::Sparse] {
        for shards in [2, 4] {
            let reference = fit(
                Backend::ShardedDocs {
                    kernel,
                    shards,
                    threads: 1,
                },
                15,
            );
            for threads in [2, 3, 8] {
                let other = fit(
                    Backend::ShardedDocs {
                        kernel,
                        shards,
                        threads,
                    },
                    15,
                );
                assert_identical(
                    &other,
                    &reference,
                    &format!("{kernel:?} S={shards}: {threads} threads vs 1 thread"),
                );
            }
        }
    }
}

#[test]
fn checkpoint_interval_never_perturbs_the_chain() {
    // The same fit with aggressive checkpointing (chunk boundaries at
    // every 5th sweep, interleaving awkwardly with the λ-adaptation
    // boundaries at 4, 10, 16, …) must walk the identical chain.
    // `SparseKernel` rides along: its bucket caches (sorted non-zero
    // lists, per-sweep smoothing rebuild) are chunk-boundary invariant by
    // construction, and this pins it end to end.
    for backend in [
        Backend::Serial,
        Backend::SparseKernel,
        Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 3,
            threads: 2,
        },
        Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 3,
            threads: 2,
        },
    ] {
        let plain = fit(backend, 18);
        let (model, corpus) = model_and_corpus(backend, 18);
        let mut seen = Vec::new();
        let checkpointed = model
            .fit_resumable(&corpus, None, Some(5), |cp| {
                seen.push(cp.sweep);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, vec![5, 10, 15], "checkpoint boundaries ({backend:?})");
        assert_identical(&checkpointed, &plain, &format!("{backend:?} checkpointed"));
    }
}

#[test]
fn resume_replays_bit_identically() {
    for backend in [
        Backend::Serial,
        Backend::SparseKernel,
        Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 4,
            threads: 2,
        },
        Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 4,
            threads: 2,
        },
    ] {
        // The uninterrupted reference run, also capturing its sweep-18
        // checkpoint so the kill/resume path below can be compared
        // digest-to-digest, not just on the final model values.
        let (ref_model, ref_corpus) = model_and_corpus(backend, 18);
        let mut reference_cp18: Option<TrainCheckpoint> = None;
        let uninterrupted = ref_model
            .fit_resumable(&ref_corpus, None, Some(6), |cp| {
                if cp.sweep == 18 {
                    reference_cp18 = Some(cp.clone());
                }
                Ok(())
            })
            .unwrap();

        // "Kill" the run at sweep 12 by erroring out of the checkpoint
        // callback after capturing it.
        let (model, corpus) = model_and_corpus(backend, 18);
        let mut captured: Option<TrainCheckpoint> = None;
        let killed = model.fit_resumable(&corpus, None, Some(6), |cp| {
            if cp.sweep == 12 {
                captured = Some(cp.clone());
                Err(source_lda::core::CoreError::InvalidConfig(
                    "simulated kill".into(),
                ))
            } else {
                Ok(())
            }
        });
        assert!(killed.is_err(), "simulated kill must abort the fit");
        let checkpoint = captured.expect("checkpoint at sweep 12 captured");
        assert_eq!(checkpoint.sweep, 12);
        if let Backend::ShardedDocs { shards, .. } = backend {
            assert_eq!(checkpoint.shard_rngs.len(), shards);
        } else {
            assert!(checkpoint.shard_rngs.is_empty());
        }

        // Resume in a fresh process-equivalent: a newly assembled model.
        let (resumed_model, corpus2) = model_and_corpus(backend, 18);
        let resumed = resumed_model
            .fit_resumable(&corpus2, Some(&checkpoint), None, |_| Ok(()))
            .unwrap();
        assert_identical(
            &resumed,
            &uninterrupted,
            &format!("{backend:?} resumed at sweep 12"),
        );

        // A resumed run with checkpointing still enabled emits the same
        // later checkpoints the uninterrupted run would — same boundaries,
        // and the sweep-18 checkpoint digests equal (assignments, counts,
        // RNG streams, priors: the whole sampler state, one number).
        let (again, corpus3) = model_and_corpus(backend, 18);
        let mut later: Vec<u64> = Vec::new();
        let mut resumed_cp18: Option<TrainCheckpoint> = None;
        again
            .fit_resumable(&corpus3, Some(&checkpoint), Some(6), |cp| {
                later.push(cp.sweep);
                if cp.sweep == 18 {
                    resumed_cp18 = Some(cp.clone());
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(later, vec![18], "absolute checkpoint boundaries");
        assert_eq!(
            resumed_cp18.expect("resumed sweep-18 checkpoint").digest(),
            reference_cp18
                .expect("uninterrupted sweep-18 checkpoint")
                .digest(),
            "{backend:?}: resumed checkpoint digest diverged from uninterrupted"
        );
    }
}

#[test]
fn resume_rejects_mismatched_state() {
    let backend = Backend::ShardedDocs {
        kernel: KernelKind::Flat,
        shards: 2,
        threads: 1,
    };
    let (model, corpus) = model_and_corpus(backend, 18);
    let mut captured: Option<TrainCheckpoint> = None;
    model
        .fit_resumable(&corpus, None, Some(6), |cp| {
            if captured.is_none() {
                captured = Some(cp.clone());
            }
            Ok(())
        })
        .unwrap();
    let checkpoint = captured.unwrap();

    // Wrong shard layout for the configured backend.
    let (serial_model, corpus2) = model_and_corpus(Backend::Serial, 18);
    assert!(serial_model
        .fit_resumable(&corpus2, Some(&checkpoint), None, |_| Ok(()))
        .is_err());

    // Checkpoint taken past the configured iteration count.
    let (short_model, corpus3) = model_and_corpus(backend, 3);
    assert!(short_model
        .fit_resumable(&corpus3, Some(&checkpoint), None, |_| Ok(()))
        .is_err());

    // A different corpus: dimensions match nothing, so validation fails.
    let (model4, _) = model_and_corpus(backend, 18);
    let mut tiny = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    tiny.add_tokens("d", &["a", "b"]);
    assert!(model4
        .fit_resumable(&tiny.build(), Some(&checkpoint), None, |_| Ok(()))
        .is_err());

    // Tampered counts: caught by the counts-vs-assignments cross-check.
    let mut tampered = checkpoint.clone();
    tampered.nw[0] = tampered.nw[0].wrapping_add(1);
    let (model5, corpus5) = model_and_corpus(backend, 18);
    assert!(model5
        .fit_resumable(&corpus5, Some(&tampered), None, |_| Ok(()))
        .is_err());

    // A different configured seed: resuming would silently mislabel the
    // run (the chain continues from the checkpoint's streams regardless
    // of what the new config claims), so it must be rejected.
    let mut wrong_seed = checkpoint.clone();
    wrong_seed.seed ^= 1;
    let (model6, corpus6) = model_and_corpus(backend, 18);
    assert!(model6
        .fit_resumable(&corpus6, Some(&wrong_seed), None, |_| Ok(()))
        .is_err());

    // A flat-kernel checkpoint resumed on a sparse-kernel backend (and
    // vice versa): sparse and dense-family kernels draw different chains,
    // so the kernel tag must reject the switch.
    let (model7, corpus7) = model_and_corpus(
        Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 2,
            threads: 1,
        },
        18,
    );
    let err = model7
        .fit_resumable(&corpus7, Some(&checkpoint), None, |_| Ok(()))
        .unwrap_err();
    assert!(
        err.to_string().contains("kernel"),
        "kernel-switch rejection should name the kernel: {err}"
    );

    // Flat → Dense is legitimate: the two kernels walk bit-identical
    // chains, so the tag only polices the sparse/dense family boundary.
    let (model8, corpus8) = model_and_corpus(
        Backend::ShardedDocs {
            kernel: KernelKind::Dense,
            shards: 2,
            threads: 1,
        },
        18,
    );
    assert!(model8
        .fit_resumable(&corpus8, Some(&checkpoint), None, |_| Ok(()))
        .is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// AD-LDA merge soundness for the composed axes: at *every* sweep
    /// boundary the merged global counts are exactly the counts implied by
    /// the assignments, whatever the shard count, thread count, or shard
    /// kernel. A merge that dropped, doubled, or misrouted a single delta
    /// would surface here as a count that `z` cannot explain.
    #[test]
    fn merged_counts_match_assignments_at_every_sweep_boundary(
        shards in 1usize..5,
        threads in 1usize..4,
        sparse in any::<bool>(),
    ) {
        let kernel = if sparse { KernelKind::Sparse } else { KernelKind::Flat };
        let backend = Backend::ShardedDocs { kernel, shards, threads };
        let (model, corpus) = model_and_corpus(backend, 9);
        let t_count = model.num_topics();
        let v = corpus.vocab_size();
        let mut boundaries = 0usize;
        model
            .fit_resumable(&corpus, None, Some(1), |cp| {
                let mut nw = vec![0u32; v * t_count];
                let mut nt = vec![0u32; t_count];
                for (doc, z_doc) in corpus.docs().iter().zip(&cp.z) {
                    for (&w, &t) in doc.tokens().iter().zip(z_doc) {
                        nw[w.index() * t_count + t as usize] += 1;
                        nt[t as usize] += 1;
                    }
                }
                assert_eq!(
                    cp.nw, nw,
                    "{kernel:?} S={shards} t={threads}: merged nw diverged from \
                     counts(z) at sweep {}",
                    cp.sweep
                );
                assert_eq!(
                    cp.nt, nt,
                    "{kernel:?} S={shards} t={threads}: merged nt diverged from \
                     counts(z) at sweep {}",
                    cp.sweep
                );
                boundaries += 1;
                Ok(())
            })
            .unwrap();
        prop_assert_eq!(boundaries, 9);
    }
}

/// The golden fixture corpus (the pinned §I case-study world of
/// `tests/artifact_compat.rs`, repeated to give the shards real work).
fn golden_corpus() -> (Corpus, KnowledgeSource) {
    let mut builder = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    for i in 0..12 {
        builder.add_tokens(
            format!("school-{i}"),
            &["pencil", "pencil", "ruler", "eraser"],
        );
        builder.add_tokens(
            format!("sports-{i}"),
            &["baseball", "umpire", "baseball", "glove"],
        );
    }
    let corpus = builder.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook pencil ruler pencil ".repeat(40),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire pitcher inning baseball umpire baseball glove ".repeat(40),
    );
    let knowledge = ks.build(corpus.vocabulary());
    (corpus, knowledge)
}

/// λ-adaptation is now topic-sharded (`sampler::adapt`); its determinism
/// contract is stronger than the document shards': **bit-identical for any
/// shard/thread count**, because each topic's adaptation is a pure function
/// of its own prior and counts column with no cross-topic reads and no RNG.
#[test]
fn lambda_adaptation_is_bit_identical_for_one_vs_n_shards() {
    use source_lda::core::sampler::adapt::adapt_integrated_priors;
    use source_lda::core::CountMatrices;

    // Real integrated priors from the synthetic knowledge source (6
    // integrated + the mixture machinery's plain topics).
    let (vocab, knowledge) = source_lda::synth::random_source_topics(250, 16, 10, 120, 11);
    let model = SourceLda::builder()
        .knowledge_source(knowledge.select(&(0..6).collect::<Vec<_>>()))
        .variant(Variant::Full)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .adaptive_lambda(6)
        .alpha(0.5)
        .iterations(4)
        .seed(29)
        .build()
        .unwrap()
        .assemble(vocab.len())
        .unwrap();

    let filled_counts = || {
        let counts = CountMatrices::new(vocab.len(), model.num_topics(), &[512]);
        for w in 0..vocab.len() {
            for t in 0..model.num_topics() {
                for _ in 0..((w * 13 + t * 5) % 3) {
                    counts.increment(w, 0, t);
                }
            }
        }
        counts
    };

    // Reference: one adaptation shard (the old serial loop).
    let reference = {
        let mut priors = model.priors().to_vec();
        adapt_integrated_priors(&mut priors, &filled_counts(), 1);
        priors
    };
    assert!(
        reference
            .iter()
            .zip(model.priors())
            .any(|(a, b)| a.to_raw() != b.to_raw()),
        "fixture must actually adapt something"
    );

    // N shards / N threads: bit-identical adapted priors, for thread
    // counts below, at, and far above the integrated-topic count.
    for threads in [2, 3, 6, 32] {
        let mut priors = model.priors().to_vec();
        adapt_integrated_priors(&mut priors, &filled_counts(), threads);
        for (t, (a, b)) in priors.iter().zip(&reference).enumerate() {
            assert_eq!(
                a.to_raw(),
                b.to_raw(),
                "topic {t}: {threads}-thread adaptation diverged from serial"
            );
        }
    }
}

/// End-to-end closure of the adaptation-determinism contract: a full
/// adaptive-λ fit (whose boundaries invoke the sharded adaptation with the
/// machine's parallelism) replays bit-identically — if scheduling could
/// move a bit, this and `checkpoint_interval_never_perturbs_the_chain`
/// would flake.
#[test]
fn adaptive_fit_replays_bit_identically_with_sharded_adaptation() {
    for backend in [Backend::Serial, Backend::SparseKernel] {
        let a = fit(backend, 18);
        let b = fit(backend, 18);
        assert_identical(&a, &b, &format!("{backend:?} adaptive-λ replay"));
    }
}

#[test]
fn sharded_perplexity_parity_with_serial_on_golden_corpus() {
    let fit_golden = |backend: Backend| -> FittedModel {
        let (corpus, knowledge) = golden_corpus();
        SourceLda::builder()
            .knowledge_source(knowledge)
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(120)
            .backend(backend)
            .seed(7)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap()
    };
    let (corpus, _) = golden_corpus();
    let serial = fit_golden(Backend::Serial);
    let serial_ppx = gibbs_perplexity(&serial, &corpus, 30, 99).unwrap();
    for kernel in [KernelKind::Flat, KernelKind::Sparse] {
        for shards in [2, 4] {
            let sharded = fit_golden(Backend::ShardedDocs {
                kernel,
                shards,
                threads: 2,
            });
            let ppx = gibbs_perplexity(&sharded, &corpus, 30, 99).unwrap();
            let rel = (ppx - serial_ppx).abs() / serial_ppx;
            assert!(
                rel < 0.15,
                "{kernel:?} S={shards} perplexity {ppx} vs serial {serial_ppx} (rel {rel:.3})"
            );
            // Both should solve the case study: pencil tokens land in the
            // School Supplies topic.
            let school = sharded
                .labels()
                .iter()
                .position(|l| l.as_deref() == Some("School Supplies"))
                .unwrap() as u32;
            assert_eq!(sharded.assignments()[0][0], school, "{kernel:?} S={shards}");
        }
    }
}
