//! Contracts of the `srclda_obs` telemetry subsystem at the training
//! boundary:
//!
//! * **Observation is free of side effects on the chain.** Fitting with a
//!   JSONL observer attached (plus a registry observer fanned out behind
//!   it) produces φ/θ/z **bit-identical** to the same fit with no
//!   observer, and the checkpoints passed to the callback are identical
//!   too — across the serial, sparse-kernel, and document-sharded
//!   backends. Observers are value-snapshot consumers; they never draw
//!   RNG and never touch sampler state.
//! * **The JSONL stream is well-formed.** Every line round-trips through
//!   the same vendored JSON codec the serving daemon uses, carries a
//!   known `"event"` discriminator, and the per-backend event mix is what
//!   the backend promises (shard timings only from `ShardedDocs`,
//!   standalone bucket-count events only from `SparseKernel`, bucket
//!   tallies *inline on the shard_sweep lines* only when the shard kernel
//!   is sparse, adaptation events exactly at the configured λ boundaries).
//! * **The registry renders valid Prometheus exposition** covering the
//!   `srclda_train_*` families.
//!
//! **Tolerance: exact (zero)** — bit-identity, not approximate parity.

use std::sync::Arc;

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::core::{GibbsModel, TrainCheckpoint};
use source_lda::obs::{Fanout, JsonlSink, Registry, RegistryObserver};
use source_lda::prelude::*;
use source_lda::serve::server::json::{self, Value};

/// The `tests/shard_equivalence.rs` world: 6 source topics + 3 unlabeled
/// over a 250-word vocabulary, 30 documents, adaptive λ.
fn model_and_corpus(backend: Backend) -> (GibbsModel, Corpus) {
    let (vocab, knowledge) = source_lda::synth::random_source_topics(250, 16, 10, 120, 11);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 30,
        doc_len: DocLength::Fixed(25),
        lambda_mode: LambdaMode::None,
        seed: 13,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..6).collect::<Vec<_>>()), &vocab)
    .unwrap();
    let vocab_size = generated.corpus.vocab_size();
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .unlabeled_topics(3)
        .approximation_steps(3)
        .smoothing(SmoothingMode::Identity)
        .adaptive_lambda(6)
        .lambda_burn_in(4)
        .alpha(0.5)
        .iterations(18)
        .backend(backend)
        .seed(29)
        .build()
        .unwrap()
        .assemble(vocab_size)
        .unwrap();
    (model, generated.corpus)
}

const BACKENDS: [Backend; 4] = [
    Backend::Serial,
    Backend::SparseKernel,
    Backend::ShardedDocs {
        kernel: KernelKind::Flat,
        shards: 3,
        threads: 2,
    },
    Backend::ShardedDocs {
        kernel: KernelKind::Sparse,
        shards: 3,
        threads: 2,
    },
];

/// Fit with an optional observer, capturing every checkpoint the run
/// emits; returns the fitted model, the checkpoints, and (when observed)
/// the raw JSONL bytes.
fn fit_capturing(
    backend: Backend,
    observed: bool,
) -> (FittedModel, Vec<TrainCheckpoint>, Option<String>) {
    let (model, corpus) = model_and_corpus(backend);
    let mut checkpoints = Vec::new();
    let on_checkpoint = |cp: &TrainCheckpoint| {
        checkpoints.push(cp.clone());
        Ok(())
    };
    if observed {
        let mut fanout = Fanout::new()
            .with(Box::new(JsonlSink::new(Vec::<u8>::new())))
            .with(Box::new(RegistryObserver::new(Arc::new(Registry::new()))));
        let fitted = model
            .fit_observed(&corpus, None, Some(5), on_checkpoint, &mut fanout)
            .unwrap();
        // Fanout owns its children; re-run with a bare sink to recover the
        // bytes (the chain is deterministic, pinned below, so the streams
        // are interchangeable).
        let (model2, corpus2) = model_and_corpus(backend);
        let mut sink = JsonlSink::new(Vec::<u8>::new());
        model2
            .fit_observed(&corpus2, None, Some(5), |_| Ok(()), &mut sink)
            .unwrap();
        let bytes = sink.finish().unwrap();
        (fitted, checkpoints, Some(String::from_utf8(bytes).unwrap()))
    } else {
        let fitted = model
            .fit_resumable(&corpus, None, Some(5), on_checkpoint)
            .unwrap();
        (fitted, checkpoints, None)
    }
}

#[test]
fn attaching_observers_never_perturbs_the_chain() {
    for backend in BACKENDS {
        let (plain, plain_cps, _) = fit_capturing(backend, false);
        let (observed, observed_cps, _) = fit_capturing(backend, true);
        assert_eq!(
            plain.assignments(),
            observed.assignments(),
            "{backend:?}: z diverged under observation"
        );
        assert_eq!(
            plain.phi().as_slice(),
            observed.phi().as_slice(),
            "{backend:?}: φ diverged under observation"
        );
        assert_eq!(
            plain.theta().as_slice(),
            observed.theta().as_slice(),
            "{backend:?}: θ diverged under observation"
        );
        assert_eq!(
            plain_cps, observed_cps,
            "{backend:?}: checkpoints diverged under observation"
        );
        assert_eq!(plain_cps.len(), 3, "{backend:?}: sweeps 5, 10, 15");
    }
}

/// Parse a JSONL stream, asserting each line is an object with a string
/// `"event"` field and survives a render → re-parse round trip.
fn parse_events(jsonl: &str) -> Vec<(String, Value)> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let value = json::parse(line).expect("telemetry line parses");
            let reparsed = json::parse(&value.render()).expect("rendered line re-parses");
            assert_eq!(value, reparsed, "render/parse round trip");
            let kind = value
                .get("event")
                .and_then(|v| v.as_str())
                .expect("event discriminator")
                .to_string();
            (kind, value)
        })
        .collect()
}

#[test]
fn jsonl_streams_are_well_formed_and_backend_shaped() {
    for backend in BACKENDS {
        let (_, _, jsonl) = fit_capturing(backend, true);
        let events = parse_events(&jsonl.unwrap());
        let count = |kind: &str| events.iter().filter(|(k, _)| k == kind).count();

        assert_eq!(count("sweep"), 18, "{backend:?}: one sweep event per sweep");
        assert_eq!(count("fit_complete"), 1, "{backend:?}");
        assert_eq!(count("checkpoint"), 3, "{backend:?}: sweeps 5, 10, 15");
        // adaptive_lambda(6) with lambda_burn_in(4): boundaries at sweeps
        // 4, 10, 16.
        assert_eq!(count("adapt"), 3, "{backend:?}: λ boundaries at 4/10/16");

        let sharded = matches!(backend, Backend::ShardedDocs { .. });
        let sparse = matches!(backend, Backend::SparseKernel);
        assert_eq!(
            count("shard_sweep"),
            if sharded { 18 } else { 0 },
            "{backend:?}: shard timings iff sharded"
        );
        assert_eq!(
            count("sparse_buckets"),
            if sparse { 18 } else { 0 },
            "{backend:?}: bucket counts iff sparse kernel"
        );

        // Spot-check value-level coherence on the sweep events.
        let (_, corpus) = model_and_corpus(backend);
        let tokens = corpus.num_tokens() as f64;
        for (_, e) in events.iter().filter(|(k, _)| k == "sweep") {
            assert_eq!(e.get("tokens").and_then(Value::as_f64), Some(tokens));
            let rate = e.get("tokens_per_sec").and_then(Value::as_f64).unwrap();
            assert!(rate > 0.0, "{backend:?}: tokens/sec must be positive");
        }
        if sharded {
            let sharded_sparse = matches!(
                backend,
                Backend::ShardedDocs {
                    kernel: KernelKind::Sparse,
                    ..
                }
            );
            for (_, e) in events.iter().filter(|(k, _)| k == "shard_sweep") {
                let Some(Value::Arr(secs)) = e.get("shard_secs") else {
                    panic!("{backend:?}: shard_secs must be an array");
                };
                assert_eq!(secs.len(), 3, "{backend:?}: one timing per shard");
                // Bucket tallies ride the shard_sweep line iff the shard
                // kernel is sparse, and the merged totals across shards
                // account for every token of the sweep.
                for field in ["q_hits", "r_hits", "s_hits", "dense_fallbacks"] {
                    assert_eq!(
                        e.get(field).is_some(),
                        sharded_sparse,
                        "{backend:?}: {field} iff the shard kernel is sparse"
                    );
                }
                if sharded_sparse {
                    let total: f64 = ["q_hits", "r_hits", "s_hits", "dense_fallbacks"]
                        .iter()
                        .map(|f| e.get(f).and_then(Value::as_f64).unwrap())
                        .sum();
                    assert_eq!(
                        total, tokens,
                        "{backend:?}: bucket totals must cover the sweep"
                    );
                }
            }
        }
        for (_, e) in events.iter().filter(|(k, _)| k == "checkpoint") {
            let bytes = e.get("bytes").and_then(Value::as_f64).unwrap();
            assert!(bytes > 0.0, "{backend:?}: checkpoint payload is nonempty");
        }
    }
}

#[test]
fn registry_observer_renders_valid_prometheus_exposition() {
    let (model, corpus) = model_and_corpus(Backend::SparseKernel);
    let registry = Arc::new(Registry::new());
    let mut observer = RegistryObserver::new(Arc::clone(&registry));
    model
        .fit_observed(&corpus, None, Some(5), |_| Ok(()), &mut observer)
        .unwrap();

    let text = registry.render();
    let samples = source_lda::obs::validate_exposition(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    assert!(samples >= 8, "expected a full train family set:\n{text}");
    for family in [
        "srclda_train_sweeps_total 18",
        "srclda_train_checkpoints_total 3",
        "srclda_train_adaptations_total 3",
        "srclda_train_tokens_total",
        "srclda_train_sparse_bucket_hits_total{bucket=\"word\"}",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
}
