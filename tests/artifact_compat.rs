//! Format-compatibility guard: the committed golden artifacts under
//! `tests/fixtures/` pin the on-disk format across versions.
//!
//! * `model_v1.slda` was written by a **format-v1** build (sections 1–6,
//!   version field 1). The current build must keep loading it forever —
//!   v1 is read-compat only now (the encoder writes v2), so this file can
//!   no longer be regenerated; treat it as an immutable archive of the v1
//!   layout.
//! * `model_v2.slda` is the same pinned model written by the current
//!   **format-v2** encoder (identical sections; only the version field
//!   differs for a checkpoint-free model). It guards encoder drift the
//!   way the v1 fixture did before the bump, and is regenerable with
//!
//! ```sh
//! cargo test --test artifact_compat -- --ignored regenerate_golden_fixture
//! ```
//!
//! The regenerator is fully deterministic (fixed corpus, fixed seed), so a
//! regenerated fixture diffs empty unless the format — or the pinned
//! model's *values* — really changed.
//!
//! Distinguish two failure modes: if `golden_v1_artifact_still_loads`
//! fails, **backward read compatibility** broke — that is a regression to
//! fix, not a fixture to regenerate. If only
//! `golden_fixture_is_reproducible_from_the_pinned_model` fails while both
//! fixtures still load, the encoded **values** drifted — e.g. an
//! intentional change to the sampler's canonical floating-point arithmetic
//! shifted φ by ulps. That needs no version bump: regenerate the v2
//! fixture and call the change out in the PR. A change to the **byte
//! layout** of existing sections needs a version bump to v3 plus decode
//! paths for v1 and v2.

use source_lda::prelude::*;
use std::path::PathBuf;

fn fixture_path_for(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn fixture_path() -> PathBuf {
    fixture_path_for("model_v1.slda")
}

fn fixture_v2_path() -> PathBuf {
    fixture_path_for("model_v2.slda")
}

/// The exact model the fixture was generated from (quickstart's §I case
/// study, pinned seeds). Must never change without a format-version bump.
fn golden_model() -> (Corpus, source_lda::core::FittedModel, Tokenizer) {
    let tokenizer = Tokenizer::permissive();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer.clone());
    builder.add_tokens("d1", &["pencil", "pencil", "umpire"]);
    builder.add_tokens("d2", &["ruler", "ruler", "baseball"]);
    let corpus = builder.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook pencil ruler pencil ".repeat(40),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire pitcher inning baseball umpire baseball ".repeat(40),
    );
    let knowledge = ks.build(corpus.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(300)
        .seed(7)
        .build()
        .unwrap()
        .fit(&corpus)
        .unwrap();
    (corpus, fitted, tokenizer)
}

#[test]
fn golden_artifact_still_loads() {
    let artifact = ModelArtifact::load(fixture_path()).expect(
        "the committed v1 fixture failed to load — backward read \
         compatibility broke; see the module docs",
    );
    // A v1 artifact predates the checkpoint section.
    assert!(artifact.checkpoint().is_none());
    assert_eq!(artifact.num_topics(), 2);
    assert_eq!(artifact.vocab_size(), 4);
    assert_eq!(artifact.alpha(), 0.5);
    assert_eq!(artifact.labels()[0].as_deref(), Some("School Supplies"));
    assert_eq!(artifact.labels()[1].as_deref(), Some("Baseball"));
    assert_eq!(
        artifact.vocabulary().words(),
        ["pencil", "umpire", "ruler", "baseball"]
    );
    // The artifact still *serves*: raw text routes to the right label.
    let engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let school = engine.infer("pencil ruler pencil").unwrap();
    assert_eq!(
        engine.label(school.top_topics(1)[0]),
        Some("School Supplies")
    );
    let sports = engine.infer("umpire baseball umpire").unwrap();
    assert_eq!(engine.label(sports.top_topics(1)[0]), Some("Baseball"));
}

#[test]
fn golden_fixture_is_reproducible_from_the_pinned_model() {
    // The committed v2 bytes must equal a fresh encode of the pinned
    // model — i.e. the encoder has not silently drifted within format
    // version 2.
    let (corpus, fitted, tokenizer) = golden_model();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    let committed = std::fs::read(fixture_v2_path()).expect("v2 fixture file present");
    assert_eq!(
        artifact.to_bytes(),
        committed,
        "encoder output drifted from the committed v2 fixture — if this is \
         intentional, regenerate it and call the drift out (see module docs)"
    );
}

#[test]
fn v1_and_v2_fixtures_decode_to_the_same_model() {
    // Same pinned model, two format versions: decoded contents must agree
    // bit for bit, and only the version field (plus checksum) may differ.
    let v1 = ModelArtifact::load(fixture_path()).unwrap();
    let v2 = ModelArtifact::load(fixture_v2_path()).unwrap();
    assert_eq!(v1.phi().as_slice(), v2.phi().as_slice());
    assert_eq!(v1.alpha(), v2.alpha());
    assert_eq!(v1.labels(), v2.labels());
    assert_eq!(v1.priors(), v2.priors());
    assert_eq!(v1.vocabulary().words(), v2.vocabulary().words());
    assert_eq!(v1.tokenizer().to_parts(), v2.tokenizer().to_parts());
    let v1_bytes = std::fs::read(fixture_path()).unwrap();
    let v2_bytes = std::fs::read(fixture_v2_path()).unwrap();
    assert_eq!(v1_bytes.len(), v2_bytes.len());
    // Bytes 8..12 hold the version; the final 8 hold the checksum.
    assert_eq!(v1_bytes[8..12], 1u32.to_le_bytes());
    assert_eq!(v2_bytes[8..12], 2u32.to_le_bytes());
    assert_eq!(
        v1_bytes[12..v1_bytes.len() - 8],
        v2_bytes[12..v2_bytes.len() - 8]
    );
}

/// Regenerates the **v2** fixture (the v1 fixture is an immutable archive
/// of the old layout). Run explicitly (`--ignored`); see module docs.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let (corpus, fitted, tokenizer) = golden_model();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    std::fs::create_dir_all(fixture_v2_path().parent().unwrap()).unwrap();
    // `save` is atomic (staged sibling + rename), so an interrupted
    // regeneration can never leave a torn fixture for `git diff` to
    // mistake for format drift.
    artifact.save(fixture_v2_path()).unwrap();
    println!(
        "wrote {} ({} bytes)",
        fixture_v2_path().display(),
        std::fs::metadata(fixture_v2_path()).unwrap().len()
    );
}
