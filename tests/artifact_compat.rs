//! Format-compatibility guard: the committed golden artifact under
//! `tests/fixtures/` was written by an earlier build at format version 1,
//! and the current code must keep loading it byte-for-byte.
//!
//! If a change to the codec breaks `golden_artifact_still_loads`, that
//! change is a **format break**: bump `srclda_serve::FORMAT_VERSION`, keep
//! a decode path for the old version (or consciously drop it), and only
//! then regenerate the fixture with
//!
//! ```sh
//! cargo test --test artifact_compat -- --ignored regenerate_golden_fixture
//! ```
//!
//! The regenerator is fully deterministic (fixed corpus, fixed seed), so a
//! regenerated fixture diffs empty unless the format — or the pinned
//! model's *values* — really changed.
//!
//! Distinguish two failure modes: if `golden_artifact_still_loads` fails,
//! the **byte layout** broke and the version-bump procedure above applies.
//! If only `golden_fixture_is_reproducible_from_the_pinned_model` fails
//! while the fixture still loads, the encoded **values** drifted — e.g. an
//! intentional change to the sampler's canonical floating-point arithmetic
//! shifted φ by ulps. That needs no version bump: regenerate the fixture
//! and call the change out in the PR.

use source_lda::prelude::*;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("model_v1.slda")
}

/// The exact model the fixture was generated from (quickstart's §I case
/// study, pinned seeds). Must never change without a format-version bump.
fn golden_model() -> (Corpus, source_lda::core::FittedModel, Tokenizer) {
    let tokenizer = Tokenizer::permissive();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer.clone());
    builder.add_tokens("d1", &["pencil", "pencil", "umpire"]);
    builder.add_tokens("d2", &["ruler", "ruler", "baseball"]);
    let corpus = builder.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook pencil ruler pencil ".repeat(40),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire pitcher inning baseball umpire baseball ".repeat(40),
    );
    let knowledge = ks.build(corpus.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(300)
        .seed(7)
        .build()
        .unwrap()
        .fit(&corpus)
        .unwrap();
    (corpus, fitted, tokenizer)
}

#[test]
fn golden_artifact_still_loads() {
    let artifact = ModelArtifact::load(fixture_path()).expect(
        "the committed v1 fixture failed to load — this is a format break; \
         see the module docs for the required version-bump procedure",
    );
    assert_eq!(artifact.num_topics(), 2);
    assert_eq!(artifact.vocab_size(), 4);
    assert_eq!(artifact.alpha(), 0.5);
    assert_eq!(artifact.labels()[0].as_deref(), Some("School Supplies"));
    assert_eq!(artifact.labels()[1].as_deref(), Some("Baseball"));
    assert_eq!(
        artifact.vocabulary().words(),
        ["pencil", "umpire", "ruler", "baseball"]
    );
    // The artifact still *serves*: raw text routes to the right label.
    let engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let school = engine.infer("pencil ruler pencil").unwrap();
    assert_eq!(
        engine.label(school.top_topics(1)[0]),
        Some("School Supplies")
    );
    let sports = engine.infer("umpire baseball umpire").unwrap();
    assert_eq!(engine.label(sports.top_topics(1)[0]), Some("Baseball"));
}

#[test]
fn golden_fixture_is_reproducible_from_the_pinned_model() {
    // The committed bytes must equal a fresh encode of the pinned model —
    // i.e. the encoder has not silently drifted within format version 1.
    let (corpus, fitted, tokenizer) = golden_model();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    let committed = std::fs::read(fixture_path()).expect("fixture file present");
    assert_eq!(
        artifact.to_bytes(),
        committed,
        "encoder output drifted from the committed v1 fixture — if this is \
         intentional, bump FORMAT_VERSION and regenerate (see module docs)"
    );
}

/// Regenerates the fixture. Run explicitly (`--ignored`); see module docs.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let (corpus, fitted, tokenizer) = golden_model();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    artifact.save(fixture_path()).unwrap();
    println!(
        "wrote {} ({} bytes)",
        fixture_path().display(),
        std::fs::metadata(fixture_path()).unwrap().len()
    );
}
