//! Smoke-runs every experiment of the harness (Scale::Smoke) and checks
//! each report carries its key findings — the CI-level guarantee that every
//! table and figure of the paper still regenerates.

use srclda_bench::experiments;
use srclda_bench::Scale;

#[test]
fn table0_case_study() {
    let r = experiments::table0::run(Scale::Smoke);
    assert!(r.contains("Technique"));
    assert!(r.contains("Source-LDA (bijective) token assignments"));
}

#[test]
fn fig2_source_variance() {
    let r = experiments::fig2::run(Scale::Smoke);
    assert!(r.contains("Money Supply"));
    assert!(r.contains("median-of-medians"));
}

#[test]
fn fig3_and_fig4_lambda_curves() {
    let r3 = experiments::fig34::run_fig3(Scale::Smoke);
    assert!(r3.contains("non-linearity"));
    let r4 = experiments::fig34::run_fig4(Scale::Smoke);
    assert!(r4.contains("non-linearity"));
    // The F4 report should show a lower non-linearity than F3.
    let extract = |r: &str| -> f64 {
        r.split("non-linearity of the median curve: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(extract(&r4) < extract(&r3), "g failed to linearize");
}

#[test]
fn fig6_graphical() {
    let r = experiments::fig6::run(Scale::Smoke);
    assert!(r.contains("log-likelihood traces"));
    assert!(r.contains("average JS divergence"));
    assert!(r.contains("Source-LDA"));
}

#[test]
fn fig7_lambda_integration() {
    let r = experiments::fig7::run(Scale::Smoke);
    assert!(r.contains("baseline (dynamic λ"));
    assert!(r.contains("classification_pct"));
}

#[test]
fn table1_reuters() {
    let r = experiments::table1::run(Scale::Smoke);
    assert!(r.contains("labeled topics discovered"));
}

#[test]
fn fig8_wikipedia() {
    let r = experiments::fig8::run_assignments(Scale::Smoke);
    assert!(r.contains("correct token assignments (Unk)"));
    assert!(r.contains("correct token assignments (Exact)"));
    assert!(r.contains("θ JS divergence"));
    let p = experiments::fig8::run_pmi(Scale::Smoke);
    assert!(p.contains("SRC-Exact"));
    assert!(p.contains("mean PMI"));
}

#[test]
fn ablations() {
    let r = experiments::ablation::run(Scale::Smoke);
    assert!(r.contains("quadrature steps"));
    assert!(r.contains("smoothing function estimation"));
    assert!(r.contains("epsilon"));
}

#[test]
fn fig8f_scaling() {
    let r = experiments::fig8f::run(Scale::Smoke);
    assert!(r.contains("sec_per_iter"));
    assert!(r.contains("speedup at B"));
}
