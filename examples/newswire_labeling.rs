//! Newswire topic labeling: Source-LDA vs post-hoc IR-LDA on a
//! Reuters-21578-like corpus (the paper's §IV.C scenario, scaled down).
//!
//! Run with: `cargo run --release --example newswire_labeling`

use source_lda::core::generative::DocLength;
use source_lda::labeling::{IrLda, JsDivergenceLabeler, LabelingContext, TopicLabeler};
use source_lda::prelude::*;
use source_lda::synth::wikipedia::WikipediaConfig;
use source_lda::synth::{ReutersConfig, ReutersLikeDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = ReutersLikeDataset::generate(&ReutersConfig {
        num_docs: 300,
        doc_len: DocLength::Fixed(50),
        superset: 30,
        active_topics: 15,
        wikipedia: WikipediaConfig {
            core_words_per_topic: 20,
            shared_vocab: 120,
            article_len: 400,
            seed: 23,
            ..WikipediaConfig::default()
        },
        ..ReutersConfig::default()
    });
    let corpus = &data.generated.corpus;
    println!(
        "newswire: {} articles over a {}-category superset ({} active)",
        corpus.num_docs(),
        data.knowledge.len(),
        data.active.len()
    );

    // Source-LDA with the superset.
    let src = SourceLda::builder()
        .knowledge_source(data.knowledge.clone())
        .variant(Variant::Full)
        .unlabeled_topics(5)
        .lambda_prior(0.7, 0.3)
        .approximation_steps(6)
        .alpha(0.4)
        .iterations(200)
        .seed(29)
        .build()?
        .fit(corpus)?;

    // IR-LDA: plain LDA + TF-IDF/cosine labels.
    let ir = IrLda::new(
        Lda::builder()
            .topics(15)
            .alpha(0.4)
            .beta(0.05)
            .iterations(200)
            .seed(29)
            .build()?,
    )
    .run(corpus, &data.knowledge)?;

    // Compare a few category word lists.
    let active_labels: Vec<&str> = data
        .active
        .iter()
        .take(4)
        .map(|&i| data.knowledge.topic(i).label())
        .collect();
    println!("\ntop-5 words per category:");
    for label in &active_labels {
        let src_tops = src
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some(*label))
            .map(|t| top5(corpus, src.phi_row(t)))
            .unwrap_or_default();
        let ir_tops = ir
            .labels
            .iter()
            .find(|a| a.label == *label)
            .map(|a| top5(corpus, ir.fitted.phi_row(a.topic)))
            .unwrap_or_else(|| "(no LDA topic mapped here)".into());
        println!("  {label}\n    SRC-LDA: {src_tops}\n    IR-LDA : {ir_tops}");
    }

    // How much do the labelings agree with the generative truth?
    let ctx = LabelingContext::new(&data.knowledge, corpus);
    let js_labels = JsDivergenceLabeler.label(&src.phi().to_rows(), &ctx);
    let consistent = src
        .labels()
        .iter()
        .enumerate()
        .filter(|(t, l)| l.is_some() && js_labels[*t].label == *l.as_deref().unwrap())
        .count();
    println!(
        "\nSource-LDA labels confirmed by independent JS mapping: {consistent}/{}",
        src.labels().iter().flatten().count()
    );
    Ok(())
}

fn top5(corpus: &Corpus, row: &[f64]) -> String {
    source_lda::math::simplex::top_n_indices(row, 5)
        .into_iter()
        .map(|w| corpus.vocabulary().word(WordId::new(w)).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
