//! The exact parallel samplers (paper Algorithms 2 & 3): demonstrate that
//! all three backends walk the *same chain* from the same seed, and time
//! them on a many-topic problem.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::prelude::*;
use source_lda::synth::random_source_topics;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = 600; // candidate topics
    let (vocab, knowledge) = random_source_topics(1200, b, 20, 250, 42);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 120,
        doc_len: DocLength::Fixed(80),
        lambda_mode: LambdaMode::None,
        seed: 7,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&(0..60).collect::<Vec<_>>()), &vocab)?;
    let corpus = &generated.corpus;
    println!(
        "corpus: {} docs, {} tokens; T = {b} topics",
        corpus.num_docs(),
        corpus.num_tokens()
    );

    // Spin-barrier samplers need real cores; never oversubscribe.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let p = cores.clamp(2, 6);
    println!("machine parallelism: {cores} cores; parallel backends use {p} threads");
    let backends = [
        ("serial         ".to_string(), Backend::Serial),
        (
            format!("simple-parallel x{p}"),
            Backend::SimpleParallel { threads: p },
        ),
        (
            format!("prefix-sums     x{p}"),
            Backend::PrefixSums { threads: p },
        ),
    ];
    let mut reference: Option<Vec<Vec<u32>>> = None;
    println!("\nbackend             sec/iter   chain identical to serial?");
    for (name, backend) in backends {
        let model = SourceLda::builder()
            .knowledge_source(knowledge.clone())
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(3)
            .backend(backend)
            .seed(99)
            .build()?;
        let start = Instant::now();
        let fitted = model.fit(corpus)?;
        let per_iter = start.elapsed().as_secs_f64() / 3.0;
        let same = match &reference {
            None => {
                reference = Some(fitted.assignments().to_vec());
                "reference".to_string()
            }
            Some(r) => {
                if r == fitted.assignments() {
                    "yes (bit-identical)".to_string()
                } else {
                    let total: usize = r.iter().map(Vec::len).sum();
                    let agree: usize = r
                        .iter()
                        .zip(fitted.assignments())
                        .map(|(a, b)| a.iter().zip(b).filter(|(x, y)| x == y).count())
                        .sum();
                    format!("{:.2}% agreement", 100.0 * agree as f64 / total as f64)
                }
            }
        };
        println!("{name}  {per_iter:>8.3}   {same}");
    }
    println!(
        "\nThe parallel algorithms reorganize only the prefix-sum arithmetic, so\n\
         they draw the same topics as the serial sampler from the same seed\n\
         (paper §III.C.4: \"guaranteeing the exactness of the results\")."
    );
    Ok(())
}
