//! Clinical-notes scenario (the paper's motivating application): discover
//! which of a large medical-topic superset actually occur in a corpus.
//!
//! A 300-document "clinical" corpus is generated from 12 conditions; the
//! model receives a 60-topic MedlinePlus-style superset and must (a) find
//! the 12 active conditions via superset topic reduction and (b) label the
//! documents.
//!
//! Run with: `cargo run --release --example medline_discovery`

use source_lda::core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use source_lda::core::reduction::{reduce, ReductionPolicy};
use source_lda::prelude::*;
use source_lda::synth::{medline_topic_names, SyntheticWikipedia, WikipediaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60-topic medical knowledge base with synthetic reference articles.
    let names = medline_topic_names();
    let labels: Vec<&str> = names.iter().take(60).map(String::as_str).collect();
    let wiki = SyntheticWikipedia::generate(
        &labels,
        &WikipediaConfig {
            core_words_per_topic: 25,
            shared_vocab: 150,
            article_len: 500,
            seed: 11,
            ..WikipediaConfig::default()
        },
    );

    // "Patient notes" generated from 12 of the 60 conditions.
    let active: Vec<usize> = (0..60).step_by(5).collect();
    let active_ks = wiki.knowledge.select(&active);
    let generated = SourceLdaGenerator {
        alpha: 0.3,
        num_docs: 300,
        doc_len: DocLength::Poisson(60.0),
        lambda_mode: LambdaMode::Raw,
        mu: 0.8,
        sigma: 0.3,
        seed: 13,
        ..SourceLdaGenerator::default()
    }
    .generate(&active_ks, &wiki.vocab)?;
    let corpus = &generated.corpus;
    println!(
        "corpus: {} notes, {} tokens; knowledge superset: {} topics ({} truly active)",
        corpus.num_docs(),
        corpus.num_tokens(),
        wiki.knowledge.len(),
        active.len()
    );

    // Fit the full Source-LDA model on the superset.
    let model = SourceLda::builder()
        .knowledge_source(wiki.knowledge.clone())
        .variant(Variant::Full)
        .unlabeled_topics(8) // room for unknown themes and background prose
        .lambda_prior(0.7, 0.3)
        .approximation_steps(6)
        .alpha(0.3)
        .iterations(200)
        .seed(17)
        .build()?;
    let fitted = model.fit(corpus)?;

    // Superset topic reduction: which conditions does the corpus contain?
    // Inactive candidates still soak up scattered background tokens, so the
    // document-frequency bar must demand *substantial* per-document use.
    let reduced = reduce(
        &fitted,
        ReductionPolicy::DocFrequency {
            min_docs: 20,
            min_tokens: 6,
        },
    )?;
    let mut discovered: Vec<&str> = reduced
        .labels
        .iter()
        .flatten()
        .map(String::as_str)
        .collect();
    discovered.sort_unstable();
    println!("\ndiscovered conditions ({}):", discovered.len());
    for d in &discovered {
        println!("  {d}");
    }

    let truth: Vec<&str> = active
        .iter()
        .map(|&i| wiki.knowledge.topic(i).label())
        .collect();
    let hits = discovered.iter().filter(|d| truth.contains(d)).count();
    println!(
        "\nprecision: {hits}/{} discovered are truly active; recall: {hits}/{}",
        discovered.len(),
        truth.len()
    );

    // Per-note summary labels — the "patient history overview" use case.
    println!("\nsample note summaries:");
    for d in 0..3 {
        let theta = fitted.theta_row(d);
        let mut ranked: Vec<(usize, f64)> = theta.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let summary: Vec<String> = ranked
            .iter()
            .take(2)
            .map(|&(t, p)| {
                format!(
                    "{} ({:.0}%)",
                    fitted.label(t).unwrap_or("unlabeled"),
                    p * 100.0
                )
            })
            .collect();
        println!("  note {d}: {}", summary.join(", "));
    }
    Ok(())
}
