//! Quickstart: the paper's §I case study, end to end.
//!
//! Two three-word documents mix "School Supplies" and "Baseball" tokens.
//! Plain LDA can split them arbitrarily; Source-LDA, given two knowledge
//! source articles, assigns every token to the right labeled topic. The
//! final act persists the trained model to a `.slda` artifact and reloads
//! it to label raw text online — the serving workflow.
//!
//! Run with: `cargo run --release --example quickstart`

use source_lda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the corpus.
    let mut builder = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    builder.add_tokens("d1", &["pencil", "pencil", "umpire"]);
    builder.add_tokens("d2", &["ruler", "ruler", "baseball"]);
    let corpus = builder.build();
    println!(
        "corpus: {} documents, {} tokens, vocabulary {}",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size()
    );

    // 2. Build the knowledge source ("Wikipedia articles" for the labels).
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook pencil ruler pencil ".repeat(40),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire pitcher inning baseball umpire baseball ".repeat(40),
    );
    let knowledge = ks.build(corpus.vocabulary());
    println!(
        "knowledge source: {} labeled topics over the corpus vocabulary",
        knowledge.len()
    );

    // 3. Fit bijective Source-LDA (each topic = one knowledge article).
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(300)
        .seed(7)
        .build()?;
    let fitted = model.fit(&corpus)?;

    // 4. Inspect the labeled token assignments.
    println!("\ntoken assignments:");
    for (d, doc) in corpus.iter() {
        print!("  {}:", doc.name().unwrap_or("?"));
        for (j, &w) in doc.tokens().iter().enumerate() {
            let z = fitted.assignments()[d.index()][j] as usize;
            print!(
                " {}→{}",
                corpus.vocabulary().word(w),
                fitted.label(z).unwrap_or("?")
            );
        }
        println!();
    }

    // 5. Topic-word distributions conform to the articles.
    println!("\nper-topic top words:");
    for t in 0..fitted.num_topics() {
        let tops: Vec<&str> = fitted
            .top_words(t, 3)
            .into_iter()
            .map(|w| corpus.vocabulary().word(WordId::new(w)))
            .collect();
        println!(
            "  {:<16} {:?}",
            fitted.label(t).unwrap_or("(unlabeled)"),
            tops
        );
    }

    // 6. Document-topic mixtures.
    println!("\ndocument-topic mixtures (θ):");
    for (d, doc) in corpus.iter() {
        println!(
            "  {}: {:?}",
            doc.name().unwrap_or("?"),
            fitted
                .theta_row(d.index())
                .iter()
                .map(|p| format!("{p:.2}"))
                .collect::<Vec<_>>()
        );
    }

    // 7. Persist the trained model to a versioned, checksummed artifact…
    let artifact =
        ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &Tokenizer::permissive())?;
    let path = std::env::temp_dir().join("quickstart-model.slda");
    artifact.save(&path)?;
    println!(
        "\nsaved model to {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 8. …reload it (as a serving process would) and label raw text online.
    let engine =
        InferenceEngine::from_artifact(&ModelArtifact::load(&path)?, EngineOptions::default())?;
    for text in ["pencil ruler pencil", "the umpire saw a baseball"] {
        let score = engine.infer(text)?;
        let top = score.top_topics(1)[0];
        println!(
            "  \"{text}\" → {} (θ {:.2}, perplexity {:.2})",
            engine.label(top).unwrap_or("?"),
            score.theta()[top],
            score.perplexity()
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
