//! The Dirichlet distribution (§II.A of the paper).
//!
//! Source-LDA's core trick is parameterizing per-topic Dirichlets with
//! knowledge-source word counts (optionally raised to a power `g(λ)`), so
//! this type is exercised heavily by both the generative samplers and the
//! Figure 2–4 experiments.

use crate::error::MathError;
use crate::gamma::sample_gamma;
use crate::rng::SldaRng;
use crate::special::{ln_gamma, ln_multivariate_beta};

/// A Dirichlet distribution over the `(J-1)`-simplex, parameterized by a
/// vector `α` of positive concentration parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alpha: Vec<f64>,
    alpha_sum: f64,
}

impl Dirichlet {
    /// Construct from an explicit parameter vector.
    ///
    /// # Errors
    /// Returns an error if `alpha` is empty or contains a non-positive or
    /// non-finite entry.
    pub fn new(alpha: Vec<f64>) -> crate::Result<Self> {
        if alpha.is_empty() {
            return Err(MathError::Empty("Dirichlet parameter vector"));
        }
        for &a in &alpha {
            if !(a > 0.0 && a.is_finite()) {
                return Err(MathError::NonPositiveParameter {
                    name: "alpha",
                    value: a,
                });
            }
        }
        let alpha_sum = alpha.iter().sum();
        Ok(Self { alpha, alpha_sum })
    }

    /// Construct a symmetric Dirichlet with `k` atoms and concentration `a`.
    pub fn symmetric(a: f64, k: usize) -> crate::Result<Self> {
        if k == 0 {
            return Err(MathError::Empty("Dirichlet parameter vector"));
        }
        Self::new(vec![a; k])
    }

    /// The parameter vector `α`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Number of atoms `J`.
    pub fn dim(&self) -> usize {
        self.alpha.len()
    }

    /// The distribution mean, `αᵢ / Σα`.
    pub fn mean(&self) -> Vec<f64> {
        self.alpha.iter().map(|&a| a / self.alpha_sum).collect()
    }

    /// Draw a probability mass function from the distribution.
    ///
    /// Uses the standard Gamma normalization: draw `gᵢ ~ Gamma(αᵢ)` and
    /// normalize. Guards against the (astronomically unlikely with positive
    /// parameters) all-zero draw by retrying.
    pub fn sample(&self, rng: &mut SldaRng) -> Vec<f64> {
        let mut out = vec![0.0; self.alpha.len()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draw a PMF into a caller-provided buffer (avoids per-draw allocation
    /// in the Figure 2–4 experiments which take thousands of samples).
    ///
    /// # Panics
    /// Panics if `out.len() != self.dim()`.
    pub fn sample_into(&self, rng: &mut SldaRng, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.alpha.len(),
            "output buffer dimension mismatch"
        );
        loop {
            let mut sum = 0.0;
            for (o, &a) in out.iter_mut().zip(&self.alpha) {
                let g = sample_gamma(a, rng);
                *o = g;
                sum += g;
            }
            if sum > 0.0 && sum.is_finite() {
                for o in out.iter_mut() {
                    *o /= sum;
                }
                return;
            }
        }
    }

    /// Log probability density of a point `θ` on the simplex.
    ///
    /// # Errors
    /// Returns an error if `θ` has the wrong length or is not (approximately)
    /// a probability distribution.
    pub fn log_pdf(&self, theta: &[f64]) -> crate::Result<f64> {
        if theta.len() != self.alpha.len() {
            return Err(MathError::LengthMismatch {
                context: "Dirichlet::log_pdf",
                left: theta.len(),
                right: self.alpha.len(),
            });
        }
        let sum: f64 = theta.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(MathError::NotADistribution {
                context: "Dirichlet::log_pdf",
                sum,
            });
        }
        let mut lp = ln_gamma(self.alpha_sum);
        for (&t, &a) in theta.iter().zip(&self.alpha) {
            lp -= ln_gamma(a);
            // lim_{t→0⁺} (a-1) ln t = +∞/-∞ depending on a; clamp for stability.
            lp += (a - 1.0) * t.max(1e-300).ln();
        }
        Ok(lp)
    }

    /// Log normalizer `ln B(α)` (useful in collapsed likelihoods).
    pub fn log_normalizer(&self) -> f64 {
        ln_multivariate_beta(&self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Dirichlet::new(vec![]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, -2.0]).is_err());
        assert!(Dirichlet::new(vec![f64::NAN]).is_err());
        assert!(Dirichlet::symmetric(1.0, 0).is_err());
    }

    #[test]
    fn samples_lie_on_simplex() {
        let mut rng = rng_from_seed(5);
        let d = Dirichlet::new(vec![0.1, 2.0, 5.0, 0.01]).unwrap();
        for _ in 0..1000 {
            let theta = d.sample(&mut rng);
            let sum: f64 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let mut rng = rng_from_seed(7);
        let d = Dirichlet::new(vec![1.0, 2.0, 7.0]).unwrap();
        let mut acc = [0.0; 3];
        let n = 30_000;
        let mut buf = vec![0.0; 3];
        for _ in 0..n {
            d.sample_into(&mut rng, &mut buf);
            for (a, &b) in acc.iter_mut().zip(&buf) {
                *a += b;
            }
        }
        for (a, m) in acc.iter().zip(d.mean()) {
            assert!((a / n as f64 - m).abs() < 5e-3, "empirical {a} vs {m}");
        }
    }

    #[test]
    fn small_alpha_concentrates_mass() {
        // As α → 0 the draw concentrates on few atoms (paper §II.A).
        let mut rng = rng_from_seed(9);
        let d = Dirichlet::symmetric(0.01, 50).unwrap();
        let mut max_share = 0.0;
        for _ in 0..50 {
            let theta = d.sample(&mut rng);
            let m = theta.iter().cloned().fold(0.0, f64::max);
            max_share += m;
        }
        max_share /= 50.0;
        assert!(
            max_share > 0.5,
            "expected concentration, got avg max {max_share}"
        );
    }

    #[test]
    fn large_alpha_approaches_uniform() {
        let mut rng = rng_from_seed(10);
        let k = 10;
        let d = Dirichlet::symmetric(1000.0, k).unwrap();
        let theta = d.sample(&mut rng);
        for &p in &theta {
            assert!((p - 1.0 / k as f64).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn log_pdf_validates_inputs() {
        let d = Dirichlet::symmetric(1.0, 3).unwrap();
        assert!(d.log_pdf(&[0.5, 0.5]).is_err());
        assert!(d.log_pdf(&[0.5, 0.4, 0.5]).is_err());
        assert!(d.log_pdf(&[0.2, 0.3, 0.5]).is_ok());
    }

    #[test]
    fn uniform_dirichlet_density_is_constant() {
        // Dir(1, 1, 1) is uniform over the simplex: pdf = Γ(3) = 2.
        let d = Dirichlet::symmetric(1.0, 3).unwrap();
        let lp1 = d.log_pdf(&[0.2, 0.3, 0.5]).unwrap();
        let lp2 = d.log_pdf(&[0.7, 0.1, 0.2]).unwrap();
        assert!((lp1 - lp2).abs() < 1e-9);
        assert!((lp1 - 2f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn log_normalizer_symmetric_case() {
        // B(1,1) = 1 for the 1-simplex.
        let d = Dirichlet::symmetric(1.0, 2).unwrap();
        assert!((d.log_normalizer() - 0.0).abs() < 1e-12);
    }
}
