//! Prefix-sum (scan) kernels.
//!
//! The paper's Algorithm 2 samples a topic by building the inclusive prefix
//! sums of the per-topic probabilities with a Blelloch work-efficient scan
//! (up-sweep + down-sweep) and then binary-searching the result. The
//! threaded orchestration lives in `srclda-core::sampler`; this module
//! provides the scan math itself plus sequential references used in tests
//! and property checks.

/// In-place inclusive scan (sequential reference implementation).
pub fn inclusive_scan(v: &mut [f64]) {
    let mut acc = 0.0;
    for x in v.iter_mut() {
        acc += *x;
        *x = acc;
    }
}

/// In-place exclusive scan (sequential reference implementation).
pub fn exclusive_scan(v: &mut [f64]) {
    let mut acc = 0.0;
    for x in v.iter_mut() {
        let old = *x;
        *x = acc;
        acc += old;
    }
}

/// Blelloch up-sweep (reduce) phase over a power-of-two-padded buffer.
///
/// After this phase, `v[len-1]` holds the total and internal nodes hold
/// partial sums. `v.len()` must be a power of two.
pub fn blelloch_up_sweep(v: &mut [f64]) {
    let n = v.len();
    debug_assert!(n.is_power_of_two(), "up-sweep needs a power-of-two length");
    let mut stride = 1;
    while stride < n {
        let step = stride * 2;
        let mut i = step - 1;
        while i < n {
            v[i] += v[i - stride];
            i += step;
        }
        stride = step;
    }
}

/// Blelloch down-sweep phase, producing an **exclusive** scan.
///
/// Must be called after [`blelloch_up_sweep`] on the same buffer.
pub fn blelloch_down_sweep(v: &mut [f64]) {
    let n = v.len();
    debug_assert!(n.is_power_of_two());
    v[n - 1] = 0.0;
    let mut stride = n / 2;
    while stride > 0 {
        let step = stride * 2;
        let mut i = step - 1;
        while i < n {
            let left = v[i - stride];
            v[i - stride] = v[i];
            v[i] += left;
            i += step;
        }
        stride /= 2;
    }
}

/// Full Blelloch **exclusive** scan over an arbitrary-length slice.
///
/// Pads internally to the next power of two. This is the sequential
/// simulation of Algorithm 2's scan structure; it is used for testing the
/// threaded version and as a fallback when no thread pool is available.
pub fn blelloch_exclusive_scan(v: &mut [f64]) {
    let n = v.len();
    if n == 0 {
        return;
    }
    let padded = n.next_power_of_two();
    let mut buf = vec![0.0; padded];
    buf[..n].copy_from_slice(v);
    blelloch_up_sweep(&mut buf);
    blelloch_down_sweep(&mut buf);
    v.copy_from_slice(&buf[..n]);
}

/// Full Blelloch **inclusive** scan (exclusive scan + shift by the element).
pub fn blelloch_inclusive_scan(v: &mut [f64]) {
    let original = v.to_vec();
    blelloch_exclusive_scan(v);
    for (x, o) in v.iter_mut().zip(original) {
        *x += o;
    }
}

/// Block-wise inclusive scan — the arithmetic core of the paper's
/// Algorithm 3 ("Simple Parallel Sampling").
///
/// Phase 1: scan each of the `blocks` chunks independently (parallelizable).
/// Phase 2: sequentially accumulate block totals (`ends` in the paper).
/// Phase 3: add each block's preceding total to its elements
/// (parallelizable).
///
/// The sequential version here establishes the exact arithmetic; the
/// threaded implementation in `srclda-core` reproduces it chunk-for-chunk so
/// results are bit-identical.
pub fn blockwise_inclusive_scan(v: &mut [f64], blocks: usize) {
    let n = v.len();
    if n == 0 {
        return;
    }
    let blocks = blocks.clamp(1, n);
    let chunk = n.div_ceil(blocks);
    // Phase 1: independent chunk scans.
    for c in v.chunks_mut(chunk) {
        inclusive_scan(c);
    }
    // Phase 2: accumulate chunk end values.
    let mut offsets = Vec::with_capacity(blocks);
    let mut acc = 0.0;
    for c in v.chunks(chunk) {
        offsets.push(acc);
        acc += c[c.len() - 1];
    }
    // Phase 3: apply offsets.
    for (c, off) in v.chunks_mut(chunk).zip(offsets) {
        // lint:allow(float-eq): exact-zero test — adding 0.0 is the identity, so this only skips no-op chunks
        if off != 0.0 {
            for x in c.iter_mut() {
                *x += off;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_slices_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn inclusive_scan_basic() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        inclusive_scan(&mut v);
        assert_eq!(v, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn exclusive_scan_basic() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        exclusive_scan(&mut v);
        assert_eq!(v, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn scans_handle_empty_and_singleton() {
        let mut v: Vec<f64> = vec![];
        inclusive_scan(&mut v);
        blelloch_exclusive_scan(&mut v);
        blockwise_inclusive_scan(&mut v, 4);
        let mut s = vec![5.0];
        blelloch_inclusive_scan(&mut s);
        assert_eq!(s, vec![5.0]);
    }

    #[test]
    fn blelloch_matches_sequential_power_of_two() {
        let data: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let mut seq = data.clone();
        exclusive_scan(&mut seq);
        let mut par = data;
        blelloch_exclusive_scan(&mut par);
        assert_slices_close(&par, &seq);
    }

    #[test]
    fn blelloch_matches_sequential_ragged() {
        for n in [1usize, 2, 3, 5, 7, 13, 100, 257] {
            let data: Vec<f64> = (0..n)
                .map(|x| ((x * 37 % 11) as f64) * 0.25 + 0.1)
                .collect();
            let mut seq = data.clone();
            inclusive_scan(&mut seq);
            let mut par = data;
            blelloch_inclusive_scan(&mut par);
            assert_slices_close(&par, &seq);
        }
    }

    #[test]
    fn blockwise_matches_sequential() {
        for n in [1usize, 4, 10, 33, 128] {
            for blocks in [1usize, 2, 3, 6, 64] {
                let data: Vec<f64> = (0..n).map(|x| (x % 7) as f64 + 0.5).collect();
                let mut seq = data.clone();
                inclusive_scan(&mut seq);
                let mut blk = data;
                blockwise_inclusive_scan(&mut blk, blocks);
                assert_slices_close(&blk, &seq);
            }
        }
    }

    #[test]
    fn up_down_sweep_round_trip() {
        let mut v = vec![3.0, 1.0, 7.0, 0.0, 4.0, 1.0, 6.0, 3.0];
        let expect_total: f64 = v.iter().sum();
        blelloch_up_sweep(&mut v);
        assert!((v[7] - expect_total).abs() < 1e-12);
        blelloch_down_sweep(&mut v);
        assert_eq!(v[0], 0.0);
        assert!((v[7] - (expect_total - 3.0)).abs() < 1e-12);
    }
}
