//! Gamma-variate sampling (Marsaglia–Tsang), the workhorse behind Dirichlet
//! draws.

use crate::rng::SldaRng;
use rand::Rng;

/// Sample from `Gamma(shape, scale = 1)` using the Marsaglia–Tsang squeeze
/// method, with the `shape < 1` boost `Gamma(a) = Gamma(a + 1) · U^{1/a}`.
///
/// # Panics
/// Panics (debug builds) if `shape <= 0`.
pub fn sample_gamma(shape: f64, rng: &mut SldaRng) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be > 0, got {shape}");
    if shape < 1.0 {
        // Boost: draw from Gamma(shape + 1) and scale down.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (two uniforms; the second is
        // discarded to keep the state machine simple — Gibbs sampling
        // dominates the runtime anyway).
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        let x2 = x * x;
        // Squeeze acceptance (fast path).
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        // Full acceptance test.
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Sample from `Gamma(shape, scale)`.
pub fn sample_gamma_scaled(shape: f64, scale: f64, rng: &mut SldaRng) -> f64 {
    debug_assert!(scale > 0.0, "gamma scale must be > 0, got {scale}");
    sample_gamma(shape, rng) * scale
}

/// Standard normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut SldaRng) -> f64 {
    // Guard u1 away from 0 so ln is finite.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = rng_from_seed(11);
        let shape = 4.5;
        let samples: Vec<f64> = (0..50_000).map(|_| sample_gamma(shape, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        // Gamma(k, 1): mean = k, var = k.
        assert!((mean - shape).abs() < 0.05, "mean {mean}");
        assert!((var - shape).abs() < 0.25, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = rng_from_seed(13);
        let shape = 0.3;
        let samples: Vec<f64> = (0..50_000).map(|_| sample_gamma(shape, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - shape).abs() < 0.02, "mean {mean}");
        assert!((var - shape).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_positive() {
        let mut rng = rng_from_seed(17);
        for &shape in &[0.01, 0.5, 1.0, 2.0, 100.0] {
            for _ in 0..1000 {
                assert!(sample_gamma(shape, &mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn scaled_gamma_mean() {
        let mut rng = rng_from_seed(19);
        let samples: Vec<f64> = (0..40_000)
            .map(|_| sample_gamma_scaled(2.0, 3.0, &mut rng))
            .collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(23);
        let samples: Vec<f64> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
