//! Categorical (multinomial single-draw) sampling.
//!
//! The collapsed Gibbs samplers draw one topic per token from an
//! *unnormalized* probability vector. Three strategies are provided:
//!
//! * [`sample_categorical`] — single linear pass, what the serial sampler
//!   uses;
//! * [`CumulativeSampler`] / [`sample_cumulative`] — inclusive-prefix-sum +
//!   binary search, exactly the structure of the paper's Algorithms 2 and 3
//!   (`topic ← Binary Search(p)`);
//! * [`AliasTable`] — Walker's alias method for repeated draws from a fixed
//!   distribution, used by the synthetic corpus generators.

use crate::error::MathError;
use crate::rng::SldaRng;
use rand::Rng;

/// Draw an index proportional to `weights` (unnormalized, non-negative).
///
/// Consumes exactly one uniform variate; given the same RNG state and the
/// same weight *ratios*, the result is identical to [`sample_cumulative`] on
/// the inclusive prefix sums of `weights` — this equivalence is what makes
/// the parallel samplers bit-exact with the serial one.
///
/// # Panics
/// Panics (debug builds) if `weights` is empty or sums to a non-positive
/// value.
pub fn sample_categorical(weights: &[f64], rng: &mut SldaRng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0 && total.is_finite(), "bad weight total {total}");
    let u: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    // Floating-point slack: the final bucket absorbs rounding.
    weights.len() - 1
}

/// Draw an index from an inclusive prefix-sum vector via binary search.
///
/// `prefix[i]` must be the inclusive cumulative sum of the underlying
/// weights; `prefix` must be non-decreasing with a positive final entry.
pub fn sample_cumulative(prefix: &[f64], rng: &mut SldaRng) -> usize {
    debug_assert!(!prefix.is_empty());
    let total = *prefix.last().expect("non-empty prefix");
    debug_assert!(total > 0.0 && total.is_finite());
    let u: f64 = rng.gen::<f64>() * total;
    binary_search_cumulative(prefix, u)
}

/// Find the smallest index `i` with `prefix[i] > u`.
///
/// This is the `Binary Search(p)` step of Algorithms 2 and 3.
#[inline]
pub fn binary_search_cumulative(prefix: &[f64], u: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = prefix.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if prefix[mid] > u {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.min(prefix.len() - 1)
}

/// A reusable cumulative sampler that owns its scratch buffer, so the hot
/// Gibbs loop does not allocate.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    prefix: Vec<f64>,
}

impl CumulativeSampler {
    /// Create a sampler with capacity for `n` outcomes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            prefix: Vec::with_capacity(n),
        }
    }

    /// Load unnormalized weights (computing the inclusive prefix sum) and
    /// draw an index.
    pub fn sample_weights(&mut self, weights: &[f64], rng: &mut SldaRng) -> usize {
        self.prefix.clear();
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            self.prefix.push(acc);
        }
        sample_cumulative(&self.prefix, rng)
    }

    /// Expose the scratch prefix buffer (used by the parallel samplers which
    /// fill it themselves).
    pub fn buffer_mut(&mut self) -> &mut Vec<f64> {
        &mut self.prefix
    }

    /// Draw from whatever prefix sums are currently in the buffer.
    pub fn sample_loaded(&self, rng: &mut SldaRng) -> usize {
        sample_cumulative(&self.prefix, rng)
    }
}

/// Walker's alias method: O(n) setup, O(1) per draw.
///
/// Used by the synthetic generators, which draw millions of words from fixed
/// topic distributions.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build the table from unnormalized non-negative weights.
    ///
    /// # Errors
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> crate::Result<Self> {
        if weights.is_empty() {
            return Err(MathError::Empty("alias table weights"));
        }
        let total: f64 = weights.iter().sum();
        if !(total > 0.0 && total.is_finite()) {
            return Err(MathError::NotADistribution {
                context: "AliasTable::new",
                sum: total,
            });
        }
        for &w in weights {
            if w < 0.0 || !w.is_finite() {
                return Err(MathError::OutOfDomain {
                    name: "weight",
                    value: w,
                });
            }
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries are 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut SldaRng) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn empirical(counts: &[usize]) -> Vec<f64> {
        let total: usize = counts.iter().sum();
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = rng_from_seed(31);
        let weights = [1.0, 2.0, 7.0];
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[sample_categorical(&weights, &mut rng)] += 1;
        }
        let emp = empirical(&counts);
        for (e, w) in emp.iter().zip([0.1, 0.2, 0.7]) {
            assert!((e - w).abs() < 0.01, "empirical {e} vs {w}");
        }
    }

    #[test]
    fn categorical_zero_weight_never_drawn() {
        let mut rng = rng_from_seed(37);
        let weights = [0.0, 1.0, 0.0, 1.0];
        for _ in 0..10_000 {
            let i = sample_categorical(&weights, &mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn cumulative_matches_linear_scan_bit_exact() {
        // Core exactness property for the parallel samplers: same RNG state,
        // same weights ⇒ same draw through either code path.
        let weights = [0.5, 0.25, 3.0, 0.0, 1.25];
        let prefix: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, &w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        for seed in 0..200 {
            let mut r1 = rng_from_seed(seed);
            let mut r2 = rng_from_seed(seed);
            assert_eq!(
                sample_categorical(&weights, &mut r1),
                sample_cumulative(&prefix, &mut r2)
            );
        }
    }

    #[test]
    fn binary_search_edges() {
        let prefix = [1.0, 1.0, 2.0, 5.0];
        assert_eq!(binary_search_cumulative(&prefix, 0.0), 0);
        // u = 1.0 is NOT < prefix[0] ⇒ skips the zero-width bucket 1.
        assert_eq!(binary_search_cumulative(&prefix, 1.0), 2);
        assert_eq!(binary_search_cumulative(&prefix, 1.999), 2);
        assert_eq!(binary_search_cumulative(&prefix, 4.999), 3);
        // Rounding slack at the top lands in the final bucket.
        assert_eq!(binary_search_cumulative(&prefix, 5.0), 3);
    }

    #[test]
    fn cumulative_sampler_reuse() {
        let mut rng = rng_from_seed(41);
        let mut s = CumulativeSampler::with_capacity(4);
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[s.sample_weights(&[3.0, 1.0], &mut rng)] += 1;
        }
        let emp = empirical(&counts);
        assert!((emp[0] - 0.75).abs() < 0.02);
    }

    #[test]
    fn alias_table_statistics() {
        let mut rng = rng_from_seed(43);
        let weights = [0.1, 0.0, 0.4, 0.5, 2.0];
        let table = AliasTable::new(&weights).unwrap();
        assert_eq!(table.len(), 5);
        let mut counts = [0usize; 5];
        for _ in 0..90_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight outcome drawn");
        let total: f64 = weights.iter().sum();
        let emp = empirical(&counts);
        for (e, w) in emp.iter().zip(weights.iter().map(|w| w / total)) {
            assert!((e - w).abs() < 0.01, "empirical {e} vs {w}");
        }
    }

    #[test]
    fn alias_table_rejects_bad_input() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -1.0]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn alias_table_single_outcome() {
        let mut rng = rng_from_seed(47);
        let table = AliasTable::new(&[5.0]).unwrap();
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }
}
