//! Special functions: log-gamma, digamma, erf, log-sum-exp.
//!
//! Implemented from standard numerical recipes (Lanczos approximation for
//! `ln Γ`, asymptotic series for `ψ`, Abramowitz & Stegun 7.1.26 for `erf`)
//! so the crate stays dependency-free. Accuracy is far beyond what Gibbs
//! sampling over count data requires (`ln Γ` is good to ~1e-13 relative).

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// # Panics
/// Panics (in debug builds) if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `ψ(x) = ψ(x+1) - 1/x` to push the argument above 6,
/// then the asymptotic expansion.
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Numerically stable `ln Σ exp(xᵢ)`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Log of the multivariate beta function, `ln B(α) = Σᵢ ln Γ(αᵢ) − ln Γ(Σᵢ αᵢ)`.
///
/// This is the normalizer of the Dirichlet density and appears in the joint
/// log-likelihood of LDA-family models.
pub fn ln_multivariate_beta(alpha: &[f64]) -> f64 {
    let sum: f64 = alpha.iter().sum();
    alpha.iter().map(|&a| ln_gamma(a)).sum::<f64>() - ln_gamma(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            assert_close(ln_gamma((n + 1) as f64), f.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling sanity: ln Γ(171) is near the f64 overflow edge of Γ.
        let direct = ln_gamma(171.0);
        // ln 170! computed by summation.
        let summed: f64 = (1..=170).map(|k| (k as f64).ln()).sum();
        assert_close(direct, summed, 1e-8);
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.3, 1.0, 2.5, 7.7, 42.0] {
            assert_close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn digamma_known_value() {
        // ψ(1) = -γ (Euler–Mascheroni).
        assert_close(digamma(1.0), -0.577_215_664_901_532_9, 1e-9);
    }

    #[test]
    fn erf_known_values() {
        // The A&S 7.1.26 approximation carries ~1e-9 residual at 0.
        assert_close(erf(0.0), 0.0, 2e-9);
        assert_close(erf(1.0), 0.842_700_79, 2e-7);
        assert_close(erf(-1.0), -0.842_700_79, 2e-7);
        assert_close(erf(2.0), 0.995_322_27, 2e-7);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert_close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-10);
        }
        assert_close(std_normal_cdf(0.0), 0.5, 1e-9);
    }

    #[test]
    fn log_sum_exp_stable() {
        // Would overflow with naive exp.
        let xs = [1000.0, 1000.0];
        assert_close(log_sum_exp(&xs), 1000.0 + 2f64.ln(), 1e-10);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        // Mixed magnitudes.
        assert_close(log_sum_exp(&[0.0, (1e-3f64).ln()]), (1.001f64).ln(), 1e-12);
    }

    #[test]
    fn multivariate_beta_matches_pairwise_beta() {
        // B(a, b) = Γ(a)Γ(b)/Γ(a+b)
        let a = 2.0;
        let b = 3.5;
        let expected = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
        assert_close(ln_multivariate_beta(&[a, b]), expected, 1e-12);
    }
}
