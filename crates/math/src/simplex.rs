//! Small helpers for probability vectors (points on the simplex).

use crate::error::MathError;

/// Normalize `v` in place so it sums to 1.
///
/// # Errors
/// Fails if the vector is empty or its sum is not a positive finite number.
pub fn normalize(v: &mut [f64]) -> crate::Result<()> {
    if v.is_empty() {
        return Err(MathError::Empty("vector"));
    }
    let sum: f64 = v.iter().sum();
    if !(sum > 0.0 && sum.is_finite()) {
        return Err(MathError::NotADistribution {
            context: "normalize",
            sum,
        });
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
    Ok(())
}

/// Return a normalized copy of `v`.
///
/// # Errors
/// Same conditions as [`normalize`].
pub fn normalized(v: &[f64]) -> crate::Result<Vec<f64>> {
    let mut out = v.to_vec();
    normalize(&mut out)?;
    Ok(out)
}

/// Shannon entropy in nats, with the `0 ln 0 = 0` convention.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
}

/// The uniform distribution over `k` atoms.
pub fn uniform(k: usize) -> Vec<f64> {
    vec![1.0 / k as f64; k]
}

/// Check that `p` is (approximately) a probability distribution.
pub fn is_distribution(p: &[f64], tol: f64) -> bool {
    if p.is_empty() {
        return false;
    }
    let sum: f64 = p.iter().sum();
    (sum - 1.0).abs() <= tol && p.iter().all(|&x| x >= -tol && x.is_finite())
}

/// Indices of the `n` largest entries, descending.
///
/// **Tie-breaking contract (pinned):** entries with exactly equal values are
/// ordered by ascending index — the *lowest index wins*. This is how
/// "top-10 words per topic" lists are extracted throughout the evaluation
/// and how `FittedModel::top_words` and the serving layer pick topic
/// labels, so the rule is part of the public API: refactors must keep it
/// (and are held to it by `tie_break_is_lowest_index_first` below) or
/// top-word lists would shuffle across releases for φ rows with repeated
/// probabilities. NaN entries sort *after* every comparable value (by
/// index among themselves), keeping the comparator a total order so the
/// sort can neither panic nor mis-rank the finite entries around a NaN.
pub fn top_n_indices(values: &[f64], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        match (values[a].is_nan(), values[b].is_nan()) {
            // NaNs sink below every comparable value; index order among
            // themselves. Folding them in via `unwrap_or(Equal)` instead
            // would make the comparator intransitive (NaN "equal" to both
            // 0.1 and 0.9) — an inconsistent order the sort may amplify
            // into mis-ranked finite entries or reject with a panic.
            (true, true) => a.cmp(&b),
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => values[b]
                .partial_cmp(&values[a])
                .expect("both comparable")
                .then(a.cmp(&b)),
        }
    });
    idx.truncate(n);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        let mut v = vec![2.0, 2.0, 4.0];
        normalize(&mut v).unwrap();
        assert_eq!(v, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    fn normalize_rejects_zero_and_empty() {
        assert!(normalize(&mut []).is_err());
        assert!(normalize(&mut [0.0, 0.0]).is_err());
        assert!(normalize(&mut [f64::INFINITY]).is_err());
    }

    #[test]
    fn normalized_leaves_input_untouched() {
        let v = vec![1.0, 3.0];
        let n = normalized(&v).unwrap();
        assert_eq!(v, vec![1.0, 3.0]);
        assert_eq!(n, vec![0.25, 0.75]);
    }

    #[test]
    fn entropy_extremes() {
        assert!(entropy(&[1.0, 0.0, 0.0]).abs() < 1e-12);
        let k = 8;
        let u = uniform(k);
        assert!((entropy(&u) - (k as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn uniform_sums_to_one() {
        assert!(is_distribution(&uniform(7), 1e-12));
    }

    #[test]
    fn is_distribution_checks() {
        assert!(is_distribution(&[0.5, 0.5], 1e-9));
        assert!(!is_distribution(&[0.5, 0.6], 1e-9));
        assert!(!is_distribution(&[], 1e-9));
        assert!(!is_distribution(&[1.5, -0.5], 1e-9));
    }

    #[test]
    fn top_n_ordering_and_ties() {
        let v = [0.1, 0.5, 0.5, 0.2];
        assert_eq!(top_n_indices(&v, 3), vec![1, 2, 3]);
        assert_eq!(top_n_indices(&v, 10), vec![1, 2, 3, 0]);
        assert_eq!(top_n_indices(&v, 0), Vec::<usize>::new());
    }

    #[test]
    fn tie_break_is_lowest_index_first() {
        // The pinned public contract: equal values sort by ascending index.
        let all_equal = [0.25; 4];
        assert_eq!(top_n_indices(&all_equal, 4), vec![0, 1, 2, 3]);
        assert_eq!(top_n_indices(&all_equal, 2), vec![0, 1]);
        // Ties in the middle of an otherwise ordered vector.
        let v = [0.4, 0.3, 0.3, 0.3, 0.5];
        assert_eq!(top_n_indices(&v, 5), vec![4, 0, 1, 2, 3]);
        // The sort is stable under permutation of equal tails: truncating
        // must take the lowest-indexed of the tied entries.
        assert_eq!(top_n_indices(&v, 3), vec![4, 0, 1]);
        // NaNs sort after every comparable value, in index order — and must
        // not perturb the ranking of the finite entries around them.
        let v = [0.5, f64::NAN, 0.9, f64::NAN, 0.1];
        assert_eq!(top_n_indices(&v, 5), vec![2, 0, 4, 1, 3]);
        assert_eq!(top_n_indices(&v, 1), vec![2]);
        let all_nan = [f64::NAN; 3];
        assert_eq!(top_n_indices(&all_nan, 3), vec![0, 1, 2]);
    }
}
