//! Deterministic random-number-generator plumbing.
//!
//! Every stochastic component in the workspace accepts either an explicit
//! seed or a `&mut SldaRng`, so that each experiment in the paper can be
//! replayed bit-for-bit. We standardize on [`rand::rngs::SmallRng`]
//! (xoshiro256++ on 64-bit platforms): non-cryptographic, very fast, and
//! plenty good for MCMC.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG used throughout the Source-LDA workspace.
pub type SldaRng = SmallRng;

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SldaRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent child RNG from a parent.
///
/// Used to hand each worker thread (or each replicated experiment run) its
/// own stream while keeping the whole experiment a function of one seed.
pub fn spawn_rng(parent: &mut SldaRng) -> SldaRng {
    // Mix two draws through SplitMix64 so children of consecutive spawns are
    // decorrelated even if the parent stream has local structure.
    let raw: u64 = parent.gen::<u64>() ^ 0x9e37_79b9_7f4a_7c15;
    SmallRng::seed_from_u64(splitmix64(raw))
}

/// Snapshot an RNG's raw state for checkpointing. A generator rebuilt with
/// [`rng_from_state`] continues the exact stream, so a resumed training run
/// replays bit-for-bit.
pub fn rng_state(rng: &SldaRng) -> [u64; 4] {
    rng.state()
}

/// Rebuild an RNG from a [`rng_state`] snapshot.
pub fn rng_from_state(state: [u64; 4]) -> SldaRng {
    SmallRng::from_state(state)
}

/// One round of the SplitMix64 output function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draw a uniform value in `[0, 1)`.
#[inline]
pub fn uniform01(rng: &mut SldaRng) -> f64 {
    rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn spawned_children_are_deterministic_and_distinct() {
        let mut parent1 = rng_from_seed(42);
        let mut parent2 = rng_from_seed(42);
        let mut c1 = spawn_rng(&mut parent1);
        let mut c2 = spawn_rng(&mut parent2);
        for _ in 0..50 {
            assert_eq!(c1.gen::<u64>(), c2.gen::<u64>());
        }
        // A second spawn from the same parent yields a distinct stream.
        let mut c3 = spawn_rng(&mut parent1);
        let matches = (0..64)
            .filter(|_| c3.gen::<u64>() == c2.gen::<u64>())
            .count();
        assert!(matches < 4);
    }

    #[test]
    fn uniform01_in_range() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            let u = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut rng = rng_from_seed(19);
        for _ in 0..37 {
            rng.gen::<u64>();
        }
        let snap = rng_state(&rng);
        let ahead: Vec<u64> = (0..64).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = rng_from_state(snap);
        let resumed_ahead: Vec<u64> = (0..64).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(ahead, resumed_ahead);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
