//! Descriptive statistics: means, quantiles, and Tukey boxplot summaries.
//!
//! Figures 2, 3, and 4 of the paper are boxplots of JS-divergence samples;
//! [`BoxplotSummary`] computes exactly the five-number-plus-whiskers summary
//! needed to print those figures as text tables.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `NaN` for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (type 7, the R/NumPy default) of **sorted**
/// input. `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Median of unsorted input.
pub fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&v, 0.5)
}

/// Tukey boxplot summary: quartiles, 1.5·IQR whiskers clipped to the data,
/// and outlier count.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker (smallest observation ≥ Q1 − 1.5·IQR).
    pub whisker_low: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest observation ≤ Q3 + 1.5·IQR).
    pub whisker_high: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations outside the whiskers.
    pub outliers: usize,
    /// Number of observations.
    pub n: usize,
}

impl BoxplotSummary {
    /// Compute the summary from (unsorted) samples.
    ///
    /// Returns `None` for an empty input.
    pub fn from_samples(xs: &[f64]) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q1 = quantile_sorted(&v, 0.25);
        let med = quantile_sorted(&v, 0.5);
        let q3 = quantile_sorted(&v, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let whisker_high = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        let outliers = v.iter().filter(|&&x| x < lo_fence || x > hi_fence).count();
        Some(Self {
            min: v[0],
            whisker_low,
            q1,
            median: med,
            q3,
            whisker_high,
            max: v[v.len() - 1],
            mean: mean(&v),
            outliers,
            n: v.len(),
        })
    }

    /// A one-line fixed-width rendering used by the figure binaries.
    pub fn render_row(&self, label: &str) -> String {
        format!(
            "{label:<28} n={:<6} min={:<8.4} q1={:<8.4} med={:<8.4} q3={:<8.4} max={:<8.4} mean={:<8.4} outliers={}",
            self.n, self.min, self.q1, self.median, self.q3, self.max, self.mean, self.outliers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 2.5);
        assert_eq!(quantile_sorted(&xs, 0.25), 1.75);
        assert!(quantile_sorted(&[], 0.5).is_nan());
    }

    #[test]
    fn median_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn boxplot_summary_quartiles() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = BoxplotSummary::from_samples(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.q1 - 25.75).abs() < 1e-9);
        assert!((s.q3 - 75.25).abs() < 1e-9);
        assert_eq!(s.outliers, 0);
        assert_eq!(s.whisker_low, 1.0);
        assert_eq!(s.whisker_high, 100.0);
    }

    #[test]
    fn boxplot_detects_outliers() {
        let mut xs: Vec<f64> = vec![10.0; 50];
        // Tight cluster with two extremes.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += (i % 5) as f64 * 0.1;
        }
        xs.push(1000.0);
        xs.push(-1000.0);
        let s = BoxplotSummary::from_samples(&xs).unwrap();
        assert_eq!(s.outliers, 2);
        assert!(s.whisker_high < 1000.0);
        assert!(s.whisker_low > -1000.0);
    }

    #[test]
    fn boxplot_empty_is_none() {
        assert!(BoxplotSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn render_row_contains_label() {
        let s = BoxplotSummary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        let row = s.render_row("Money Supply");
        assert!(row.contains("Money Supply"));
        assert!(row.contains("n=3"));
    }
}
