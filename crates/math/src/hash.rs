//! A fast, deterministic, non-cryptographic hasher (the rustc "Fx" hash).
//!
//! Vocabulary interning hashes millions of short strings; SipHash (std's
//! default) is measurably slower and HashDoS resistance is irrelevant here.
//! The algorithm is tiny, so we implement it in-crate rather than pull a
//! dependency (see DESIGN.md §6).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: multiply-rotate over machine words.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&"pencil"), hash_of(&"pencil"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_close_strings() {
        assert_ne!(hash_of(&"pencil"), hash_of(&"pencils"));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn tail_length_mixed_in() {
        // Same bytes, different lengths must differ.
        let mut h1 = FxHasher::default();
        h1.write(b"abc");
        let mut h2 = FxHasher::default();
        h2.write(b"abc\0");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn usable_as_map() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        for (i, w) in ["ruler", "baseball", "umpire", "pencil"].iter().enumerate() {
            map.insert((*w).to_string(), i);
        }
        assert_eq!(map["umpire"], 2);
        let mut set: FxHashSet<&str> = FxHashSet::default();
        set.insert("x");
        assert!(set.contains("x"));
    }

    #[test]
    fn distribution_sanity() {
        // Hash 10k distinct strings into 64 buckets; no bucket should be
        // pathologically loaded.
        let mut buckets = [0usize; 64];
        for i in 0..10_000 {
            let h = hash_of(&format!("word-{i}"));
            buckets[(h % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 400, "bucket overload: {max}");
    }
}
