//! A minimal dense row-major matrix used for count tables and the φ/θ
//! outputs of the topic models.
//!
//! Deliberately tiny: the models need contiguous storage, O(1) row slices,
//! and nothing else — pulling in a linear-algebra crate would be overkill.

use std::ops::{Index, IndexMut};

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> DenseMatrix<T> {
    /// Create a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Create from a fill value.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }
}

impl<T> DenseMatrix<T> {
    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat access to the underlying storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable access.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }
}

impl<T> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for DenseMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl DenseMatrix<f64> {
    /// Normalize every row to sum to 1 (rows with zero mass become uniform).
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        for row in self.data.chunks_exact_mut(cols.max(1)) {
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                row.iter_mut().for_each(|x| *x /= sum);
            } else if cols > 0 {
                let u = 1.0 / cols as f64;
                row.iter_mut().for_each(|x| *x = u);
            }
        }
    }

    /// Collect rows into owned vectors (used at API boundaries).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter_rows().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m: DenseMatrix<u32> = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 7;
        assert_eq!(m[(1, 2)], 7);
        assert_eq!(m.row(1), &[0, 0, 7]);
        assert_eq!(m.row(0), &[0, 0, 0]);
    }

    #[test]
    fn from_vec_round_trip() {
        let m = DenseMatrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m[(1, 0)], 3);
        assert_eq!(m.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn from_vec_checks_len() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m: DenseMatrix<f64> = DenseMatrix::zeros(2, 2);
        m.row_mut(0)[1] = 5.0;
        assert_eq!(m[(0, 1)], 5.0);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = DenseMatrix::from_vec(2, 2, vec![2.0, 2.0, 0.0, 0.0]);
        m.normalize_rows();
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert_eq!(m.row(1), &[0.5, 0.5]);
    }

    #[test]
    fn iter_rows_and_to_rows() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(m.to_rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn filled_constructor() {
        let m: DenseMatrix<f64> = DenseMatrix::filled(2, 2, 0.25);
        assert!(m.as_slice().iter().all(|&x| x == 0.25));
    }
}
