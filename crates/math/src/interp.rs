//! Piecewise-linear interpolation and monotone inversion.
//!
//! The smoothing function `g(λ)` of §III.C.2 is "approximated ... by linear
//! interpolation of an aggregated large number of samples for each point
//! taken in the range 0 to 1": we sample the JS-divergence curve as a
//! function of the hyperparameter exponent, then *invert* it so that equal
//! steps in λ produce equal steps in expected JS divergence. Both the
//! forward curve and its inverse are [`PiecewiseLinear`] functions.

use crate::error::MathError;

/// A piecewise-linear function defined by knots `(xs[i], ys[i])` with
/// strictly increasing `xs`. Evaluation outside the knot range clamps to the
/// end values.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Build from knot vectors.
    ///
    /// # Errors
    /// Fails if the vectors are empty, have different lengths, or `xs` is
    /// not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> crate::Result<Self> {
        if xs.is_empty() {
            return Err(MathError::Empty("interpolation knots"));
        }
        if xs.len() != ys.len() {
            return Err(MathError::LengthMismatch {
                context: "PiecewiseLinear::new",
                left: xs.len(),
                right: ys.len(),
            });
        }
        for w in xs.windows(2) {
            if w[1] <= w[0] {
                return Err(MathError::OutOfDomain {
                    name: "xs (must be strictly increasing)",
                    value: w[1],
                });
            }
        }
        Ok(Self { xs, ys })
    }

    /// Build from `(x, y)` sample pairs, sorting by `x` and averaging
    /// duplicate `x` values.
    ///
    /// # Errors
    /// Fails if no samples are given.
    pub fn from_samples(mut samples: Vec<(f64, f64)>) -> crate::Result<Self> {
        if samples.is_empty() {
            return Err(MathError::Empty("interpolation samples"));
        }
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut xs: Vec<f64> = Vec::with_capacity(samples.len());
        let mut ys: Vec<f64> = Vec::with_capacity(samples.len());
        let mut i = 0;
        while i < samples.len() {
            let x = samples[i].0;
            let mut acc = 0.0;
            let mut n = 0usize;
            while i < samples.len() && samples[i].0 == x {
                acc += samples[i].1;
                n += 1;
                i += 1;
            }
            xs.push(x);
            ys.push(acc / n as f64);
        }
        Self::new(xs, ys)
    }

    /// The knot x-coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The knot y-coordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluate at `x` (clamping outside the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the bracketing interval.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Whether the knot y-values are monotone non-increasing.
    pub fn is_non_increasing(&self) -> bool {
        self.ys.windows(2).all(|w| w[1] <= w[0] + 1e-12)
    }

    /// Whether the knot y-values are monotone non-decreasing.
    pub fn is_non_decreasing(&self) -> bool {
        self.ys.windows(2).all(|w| w[1] >= w[0] - 1e-12)
    }

    /// Invert a monotone function: returns the piecewise-linear function
    /// mapping y ↦ x. For non-strictly-monotone inputs, flat stretches are
    /// nudged by a tiny epsilon so the inverse is well defined.
    ///
    /// # Errors
    /// Fails if the function is not monotone (neither non-increasing nor
    /// non-decreasing).
    pub fn inverse(&self) -> crate::Result<PiecewiseLinear> {
        let (xs, ys): (Vec<f64>, Vec<f64>) = if self.is_non_decreasing() {
            (self.ys.clone(), self.xs.clone())
        } else if self.is_non_increasing() {
            // Reverse so the new xs (old ys) increase.
            (
                self.ys.iter().rev().copied().collect(),
                self.xs.iter().rev().copied().collect(),
            )
        } else {
            return Err(MathError::NoConvergence(
                "inverse of non-monotone piecewise-linear function",
            ));
        };
        // Enforce strict increase on the new xs by epsilon-nudging flats.
        let mut xs = xs;
        for i in 1..xs.len() {
            if xs[i] <= xs[i - 1] {
                xs[i] = xs[i - 1] + 1e-12;
            }
        }
        PiecewiseLinear::new(xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates_and_clamps() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
        assert_eq!(f.eval(0.5), 5.0);
        assert_eq!(f.eval(1.5), 5.0);
        assert_eq!(f.eval(-1.0), 0.0);
        assert_eq!(f.eval(3.0), 0.0);
        assert_eq!(f.eval(1.0), 10.0);
    }

    #[test]
    fn constructor_validates() {
        assert!(PiecewiseLinear::new(vec![], vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(PiecewiseLinear::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(PiecewiseLinear::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_samples_sorts_and_averages() {
        let f = PiecewiseLinear::from_samples(vec![(1.0, 4.0), (0.0, 0.0), (1.0, 6.0)]).unwrap();
        assert_eq!(f.xs(), &[0.0, 1.0]);
        assert_eq!(f.ys(), &[0.0, 5.0]);
    }

    #[test]
    fn inverse_of_increasing_function() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        let inv = f.inverse().unwrap();
        assert!((inv.eval(1.0) - 0.5).abs() < 1e-12);
        assert!((inv.eval(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_of_decreasing_function() {
        // Shape of the JS-divergence curve: high at exponent 0, low at 1.
        let f = PiecewiseLinear::new(vec![0.0, 0.5, 1.0], vec![0.6, 0.3, 0.1]).unwrap();
        assert!(f.is_non_increasing());
        let inv = f.inverse().unwrap();
        // inverse maps a JS value back to the exponent producing it.
        assert!((inv.eval(0.6) - 0.0).abs() < 1e-9);
        assert!((inv.eval(0.3) - 0.5).abs() < 1e-9);
        assert!((inv.eval(0.1) - 1.0).abs() < 1e-9);
        // Round trip at an off-knot point.
        let y = f.eval(0.25);
        assert!((inv.eval(y) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn inverse_rejects_non_monotone() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
        assert!(f.inverse().is_err());
    }

    #[test]
    fn inverse_tolerates_flat_segments() {
        let f = PiecewiseLinear::new(vec![0.0, 1.0, 2.0], vec![5.0, 5.0, 6.0]).unwrap();
        let inv = f.inverse().unwrap();
        // Flat stretch collapses; values near 5 map near the flat region.
        let x = inv.eval(5.0);
        assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn single_knot_function() {
        let f = PiecewiseLinear::new(vec![0.5], vec![3.0]).unwrap();
        assert_eq!(f.eval(0.0), 3.0);
        assert_eq!(f.eval(1.0), 3.0);
    }
}
