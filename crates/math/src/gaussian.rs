//! Gaussian utilities: pdf, truncated sampling, and the discretized
//! truncated normal used to integrate λ out of the collapsed Gibbs equations
//! (§III.C.2, Eq. 3–4 of the paper).

use crate::error::MathError;
use crate::gamma::standard_normal;
use crate::rng::SldaRng;
use crate::special::std_normal_cdf;
use rand::Rng;

/// Normal density `N(x; µ, σ)`.
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma > 0.0);
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// A normal distribution truncated to a closed interval `[lo, hi]`.
///
/// The paper draws `λ_t ~ N(µ, σ)` "bound ... to the interval [0, 1]" for
/// the generative model (§IV.B), which is exactly this distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Construct a truncated normal.
    ///
    /// # Errors
    /// Fails if `sigma <= 0` or `lo >= hi`.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> crate::Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(MathError::NonPositiveParameter {
                name: "sigma",
                value: sigma,
            });
        }
        if lo >= hi {
            return Err(MathError::OutOfDomain {
                name: "lo/hi",
                value: lo,
            });
        }
        Ok(Self { mu, sigma, lo, hi })
    }

    /// The standard `[0, 1]`-bounded prior over λ.
    pub fn unit_interval(mu: f64, sigma: f64) -> crate::Result<Self> {
        Self::new(mu, sigma, 0.0, 1.0)
    }

    /// Mass the untruncated normal places inside `[lo, hi]`.
    pub fn acceptance_mass(&self) -> f64 {
        std_normal_cdf((self.hi - self.mu) / self.sigma)
            - std_normal_cdf((self.lo - self.mu) / self.sigma)
    }

    /// Draw a sample by rejection, falling back to a clamped draw if the
    /// acceptance region is pathologically small.
    pub fn sample(&self, rng: &mut SldaRng) -> f64 {
        const MAX_REJECTIONS: usize = 10_000;
        for _ in 0..MAX_REJECTIONS {
            let x = self.mu + self.sigma * standard_normal(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        // Degenerate tail: fall back to uniform over the interval, which is
        // the limit shape of an extremely flat truncated normal there.
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }

    /// Density at `x` (normalized over the truncation interval).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        normal_pdf(x, self.mu, self.sigma) / self.acceptance_mass()
    }

    /// The mean parameter µ of the parent normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter σ of the parent normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// A discretization of a `[lo, hi]`-truncated normal onto `A` midpoint
/// quadrature nodes with normalized weights.
///
/// This realizes the paper's "approximated numerically during sampling":
/// the integral `∫ f(λ) N(λ; µ, σ) dλ` over `[0, 1]` becomes
/// `Σₐ wₐ f(λₐ)` with `Σ wₐ = 1`. `A` is the paper's *approximation steps*
/// parameter, which enters the running-time bound `O(I·D_avg·D·T·A)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretizedGaussian {
    points: Vec<f64>,
    weights: Vec<f64>,
}

impl DiscretizedGaussian {
    /// Discretize `N(µ, σ)` truncated to `[lo, hi]` onto `a_points` nodes.
    ///
    /// # Errors
    /// Fails if `a_points == 0`, `sigma <= 0`, or `lo >= hi`.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64, a_points: usize) -> crate::Result<Self> {
        if a_points == 0 {
            return Err(MathError::Empty("quadrature points"));
        }
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(MathError::NonPositiveParameter {
                name: "sigma",
                value: sigma,
            });
        }
        if lo >= hi {
            return Err(MathError::OutOfDomain {
                name: "lo/hi",
                value: lo,
            });
        }
        let step = (hi - lo) / a_points as f64;
        let mut points = Vec::with_capacity(a_points);
        let mut weights = Vec::with_capacity(a_points);
        for a in 0..a_points {
            let x = lo + (a as f64 + 0.5) * step;
            points.push(x);
            weights.push(normal_pdf(x, mu, sigma));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || total.is_nan() {
            // Completely flat tail: fall back to uniform weights.
            let w = 1.0 / a_points as f64;
            weights.iter_mut().for_each(|v| *v = w);
        } else {
            weights.iter_mut().for_each(|v| *v /= total);
        }
        Ok(Self { points, weights })
    }

    /// Discretization of the `[0, 1]` λ prior onto `A` nodes.
    pub fn unit_interval(mu: f64, sigma: f64, a_points: usize) -> crate::Result<Self> {
        Self::new(mu, sigma, 0.0, 1.0, a_points)
    }

    /// Quadrature nodes `λₐ`.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Normalized weights `wₐ` (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of nodes `A`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff there are no nodes (never for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Approximate `E[f(λ)]` under the truncated normal.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn pdf_peak_at_mean() {
        assert!(normal_pdf(0.0, 0.0, 1.0) > normal_pdf(0.5, 0.0, 1.0));
        let peak = normal_pdf(0.0, 0.0, 1.0);
        assert!((peak - 0.398_942_28).abs() < 1e-7);
    }

    #[test]
    fn truncated_normal_bounds_respected() {
        let mut rng = rng_from_seed(51);
        let tn = TruncatedNormal::unit_interval(0.5, 1.0).unwrap();
        for _ in 0..10_000 {
            let x = tn.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_mean_shifts_with_mu() {
        let mut rng = rng_from_seed(53);
        let lo = TruncatedNormal::unit_interval(0.2, 0.3).unwrap();
        let hi = TruncatedNormal::unit_interval(0.8, 0.3).unwrap();
        let n = 20_000;
        let mean_lo: f64 = (0..n).map(|_| lo.sample(&mut rng)).sum::<f64>() / n as f64;
        let mean_hi: f64 = (0..n).map(|_| hi.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean_lo < 0.4, "mean_lo = {mean_lo}");
        assert!(mean_hi > 0.6, "mean_hi = {mean_hi}");
    }

    #[test]
    fn truncated_normal_rejects_bad_params() {
        assert!(TruncatedNormal::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, -1.0, 0.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(TruncatedNormal::new(0.0, 1.0, 2.0, 1.0).is_err());
    }

    #[test]
    fn acceptance_mass_sane() {
        let tn = TruncatedNormal::unit_interval(0.5, 0.1).unwrap();
        assert!(tn.acceptance_mass() > 0.999);
        let wide = TruncatedNormal::unit_interval(0.5, 10.0).unwrap();
        assert!(wide.acceptance_mass() < 0.1);
    }

    #[test]
    fn pdf_zero_outside_interval() {
        let tn = TruncatedNormal::unit_interval(0.5, 1.0).unwrap();
        assert_eq!(tn.pdf(-0.1), 0.0);
        assert_eq!(tn.pdf(1.1), 0.0);
        assert!(tn.pdf(0.5) > 0.0);
    }

    #[test]
    fn discretized_weights_normalized() {
        let dg = DiscretizedGaussian::unit_interval(0.7, 0.3, 16).unwrap();
        let sum: f64 = dg.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(dg.len(), 16);
        assert!(dg.points().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn discretized_weights_peak_near_mu() {
        let dg = DiscretizedGaussian::unit_interval(0.7, 0.1, 20).unwrap();
        let (argmax, _) = dg
            .weights()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let peak_point = dg.points()[argmax];
        assert!((peak_point - 0.7).abs() < 0.06, "peak at {peak_point}");
    }

    #[test]
    fn integrate_constant_function() {
        let dg = DiscretizedGaussian::unit_interval(0.5, 1.0, 8).unwrap();
        assert!((dg.integrate(|_| 3.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integrate_mean_approximates_truncated_mean() {
        // For a nearly-flat normal over [0,1], E[λ] ≈ 0.5.
        let dg = DiscretizedGaussian::unit_interval(0.5, 100.0, 64).unwrap();
        assert!((dg.integrate(|x| x) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn rejects_zero_points() {
        assert!(DiscretizedGaussian::unit_interval(0.5, 1.0, 0).is_err());
    }
}
