//! Divergences and distances between discrete probability distributions.
//!
//! The paper leans on the Jensen–Shannon divergence everywhere: Figures 2–4
//! measure the JS divergence between a source distribution and Dirichlet
//! draws; the graphical experiment reports average JS divergence per model;
//! topic labeling and topic-to-document evaluation (Fig. 8 d/e) both use it.
//! We use natural-log JS, whose maximum value is `ln 2 ≈ 0.693` — consistent
//! with the ranges plotted in the paper.

use crate::error::MathError;

fn check_pair(context: &'static str, p: &[f64], q: &[f64]) -> crate::Result<()> {
    if p.len() != q.len() {
        return Err(MathError::LengthMismatch {
            context,
            left: p.len(),
            right: q.len(),
        });
    }
    if p.is_empty() {
        return Err(MathError::Empty("distribution"));
    }
    Ok(())
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats.
///
/// Uses the conventions `0·ln(0/q) = 0` and returns `+∞` when `p` has mass
/// where `q` has none.
///
/// # Errors
/// Fails on length mismatch or empty inputs. Inputs are assumed normalized.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> crate::Result<f64> {
    check_pair("kl_divergence", p, q)?;
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return Ok(f64::INFINITY);
            }
            acc += pi * (pi / qi).ln();
        }
    }
    Ok(acc)
}

/// Jensen–Shannon divergence in nats: `½ KL(p ‖ m) + ½ KL(q ‖ m)` with
/// `m = ½(p + q)`. Always finite, symmetric, bounded by `ln 2`.
///
/// # Errors
/// Fails on length mismatch or empty inputs.
pub fn js_divergence(p: &[f64], q: &[f64]) -> crate::Result<f64> {
    check_pair("js_divergence", p, q)?;
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let mi = 0.5 * (pi + qi);
        if pi > 0.0 {
            acc += 0.5 * pi * (pi / mi).ln();
        }
        if qi > 0.0 {
            acc += 0.5 * qi * (qi / mi).ln();
        }
    }
    // Guard tiny negative rounding.
    Ok(acc.max(0.0))
}

/// Hellinger distance `H(p, q) = (1/√2)·‖√p − √q‖₂`, in `[0, 1]`.
///
/// # Errors
/// Fails on length mismatch or empty inputs.
pub fn hellinger(p: &[f64], q: &[f64]) -> crate::Result<f64> {
    check_pair("hellinger", p, q)?;
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let d = pi.sqrt() - qi.sqrt();
        acc += d * d;
    }
    Ok((acc / 2.0).sqrt().min(1.0))
}

/// Total variation distance `½ Σ |pᵢ − qᵢ|`, in `[0, 1]`.
///
/// # Errors
/// Fails on length mismatch or empty inputs.
pub fn total_variation(p: &[f64], q: &[f64]) -> crate::Result<f64> {
    check_pair("total_variation", p, q)?;
    Ok(p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>() / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn kl_identity_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_on_support_mismatch() {
        let p = [0.5, 0.5, 0.0];
        let q = [1.0, 0.0, 0.0];
        assert!(kl_divergence(&p, &q).unwrap().is_infinite());
        // But q ≪ p is fine.
        assert!(kl_divergence(&q, &p).unwrap().is_finite());
    }

    #[test]
    fn kl_known_value() {
        // KL(Bern(0.5) || Bern(0.25)) = 0.5 ln 2 + 0.5 ln(2/3)
        let p = [0.5, 0.5];
        let q = [0.25, 0.75];
        let expected = 0.5 * (0.5f64 / 0.25).ln() + 0.5 * (0.5f64 / 0.75).ln();
        assert!((kl_divergence(&p, &q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [0.9, 0.1, 0.0];
        let q = [0.0, 0.1, 0.9];
        let a = js_divergence(&p, &q).unwrap();
        let b = js_divergence(&q, &p).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a <= LN2 + 1e-12);
    }

    #[test]
    fn js_maximum_for_disjoint_support() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((js_divergence(&p, &q).unwrap() - LN2).abs() < 1e-12);
    }

    #[test]
    fn js_identity_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(js_divergence(&p, &p).unwrap() < 1e-12);
    }

    #[test]
    fn hellinger_properties() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((hellinger(&p, &q).unwrap() - 1.0).abs() < 1e-12);
        assert!(hellinger(&p, &p).unwrap() < 1e-12);
    }

    #[test]
    fn total_variation_properties() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q).unwrap() - 1.0).abs() < 1e-12);
        let r = [0.5, 0.5];
        assert!((total_variation(&p, &r).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(kl_divergence(&[1.0], &[0.5, 0.5]).is_err());
        assert!(js_divergence(&[1.0], &[0.5, 0.5]).is_err());
        assert!(hellinger(&[1.0], &[0.5, 0.5]).is_err());
        assert!(total_variation(&[1.0], &[0.5, 0.5]).is_err());
        assert!(js_divergence(&[], &[]).is_err());
    }

    #[test]
    fn js_le_tv_relationship_sanity() {
        // JS(p,q) ≤ TV(p,q)·ln2·2 — loose sanity bound linking the metrics.
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        let js = js_divergence(&p, &q).unwrap();
        let tv = total_variation(&p, &q).unwrap();
        assert!(js <= 2.0 * LN2 * tv + 1e-12);
    }
}
