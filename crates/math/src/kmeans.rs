//! K-means clustering over discrete probability distributions.
//!
//! §III.C.3 of the paper: "At the end of the sampling phase we then can use
//! a clustering algorithm (such as k-means, JS divergence) to further reduce
//! the modeled topics and give a total of K topics." Points are rows of the
//! φ matrix; the distance is pluggable, defaulting to the Jensen–Shannon
//! divergence; centroids are (renormalized) arithmetic means, which stay on
//! the simplex.

use crate::divergence::js_divergence;
use crate::error::MathError;
use crate::rng::SldaRng;
use rand::Rng;

/// Distance function over distributions.
pub type DistanceFn = fn(&[f64], &[f64]) -> f64;

/// JS-divergence distance (panics-free wrapper; inputs are same-length rows).
pub fn js_distance(a: &[f64], b: &[f64]) -> f64 {
    js_divergence(a, b).unwrap_or(f64::INFINITY)
}

/// Squared Euclidean distance.
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// K-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    distance: DistanceFn,
    normalize_centroids: bool,
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Final centroids (renormalized means of member rows).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of member-to-centroid distances at convergence.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
}

impl KMeans {
    /// New clusterer with `k` clusters and the JS-divergence metric.
    ///
    /// Centroid renormalization (keeping centroids on the simplex) is on by
    /// default, matching the distribution-clustering use case of the paper's
    /// superset topic reduction.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            distance: js_distance,
            normalize_centroids: true,
        }
    }

    /// Override the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Override the distance function.
    pub fn distance(mut self, d: DistanceFn) -> Self {
        self.distance = d;
        self
    }

    /// Control whether centroids are renormalized onto the simplex after the
    /// mean update. Disable for general (non-distribution) point clouds,
    /// e.g. with the Euclidean metric.
    pub fn normalize_centroids(mut self, on: bool) -> Self {
        self.normalize_centroids = on;
        self
    }

    /// Run Lloyd's algorithm with k-means++ seeding.
    ///
    /// # Errors
    /// Fails if there are no rows, `k == 0`, or `k` exceeds the row count.
    pub fn fit(&self, rows: &[Vec<f64>], rng: &mut SldaRng) -> crate::Result<KMeansResult> {
        if rows.is_empty() {
            return Err(MathError::Empty("kmeans input rows"));
        }
        if self.k == 0 || self.k > rows.len() {
            return Err(MathError::OutOfDomain {
                name: "k",
                value: self.k as f64,
            });
        }
        let dist = self.distance;
        let mut centroids = self.plus_plus_init(rows, rng);
        let mut assignments = vec![0usize; rows.len()];
        let mut iterations = 0;
        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, row) in rows.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .map(|(c, cent)| (c, dist(row, cent)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0);
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update step: arithmetic mean per cluster, renormalized so the
            // centroid remains a distribution when the inputs are.
            let dim = rows[0].len();
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (row, &a) in rows.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in sums.iter_mut().zip(&counts).enumerate() {
                if count == 0 {
                    // Re-seed an empty cluster at the row farthest from its
                    // current centroid (standard empty-cluster repair).
                    let far = rows
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            dist(a, &centroids[assignments[0]])
                                .partial_cmp(&dist(b, &centroids[assignments[0]]))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = rows[far].clone();
                    continue;
                }
                let scale = if self.normalize_centroids {
                    let total: f64 = sum.iter().sum();
                    if total > 0.0 {
                        total
                    } else {
                        1.0
                    }
                } else {
                    count as f64
                };
                for x in sum.iter_mut() {
                    *x /= scale;
                }
                centroids[c] = sum.clone();
            }
            if !changed && iter > 0 {
                break;
            }
        }
        let inertia = rows
            .iter()
            .zip(&assignments)
            .map(|(row, &a)| dist(row, &centroids[a]))
            .sum();
        Ok(KMeansResult {
            assignments,
            centroids,
            inertia,
            iterations,
        })
    }

    /// k-means++ seeding: first centroid uniform, the rest proportional to
    /// distance from the nearest existing centroid.
    fn plus_plus_init(&self, rows: &[Vec<f64>], rng: &mut SldaRng) -> Vec<Vec<f64>> {
        let dist = self.distance;
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(rows[rng.gen_range(0..rows.len())].clone());
        let mut d2: Vec<f64> = rows.iter().map(|r| dist(r, &centroids[0])).collect();
        while centroids.len() < self.k {
            let total: f64 = d2.iter().sum();
            let idx = if total > 0.0 {
                let u = rng.gen::<f64>() * total;
                let mut acc = 0.0;
                let mut pick = rows.len() - 1;
                for (i, &d) in d2.iter().enumerate() {
                    acc += d;
                    if u < acc {
                        pick = i;
                        break;
                    }
                }
                pick
            } else {
                rng.gen_range(0..rows.len())
            };
            centroids.push(rows[idx].clone());
            for (d, row) in d2.iter_mut().zip(rows) {
                let nd = dist(row, centroids.last().expect("just pushed"));
                if nd < *d {
                    *d = nd;
                }
            }
        }
        centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn blob(center: &[f64], jitter: f64, n: usize, rng: &mut SldaRng) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let mut v: Vec<f64> = center
                    .iter()
                    .map(|&c| (c + jitter * (rng.gen::<f64>() - 0.5)).max(1e-6))
                    .collect();
                let s: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= s);
                v
            })
            .collect()
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let mut rng = rng_from_seed(61);
        let mut rows = blob(&[0.9, 0.05, 0.05], 0.02, 20, &mut rng);
        rows.extend(blob(&[0.05, 0.05, 0.9], 0.02, 20, &mut rng));
        let result = KMeans::new(2).fit(&rows, &mut rng).unwrap();
        // All of the first 20 in one cluster, the rest in the other.
        let first = result.assignments[0];
        assert!(result.assignments[..20].iter().all(|&a| a == first));
        assert!(result.assignments[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn centroids_stay_on_simplex() {
        let mut rng = rng_from_seed(67);
        let mut rows = blob(&[0.5, 0.3, 0.2], 0.1, 15, &mut rng);
        rows.extend(blob(&[0.1, 0.8, 0.1], 0.1, 15, &mut rng));
        let result = KMeans::new(2).fit(&rows, &mut rng).unwrap();
        for c in &result.centroids {
            let sum: f64 = c.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut rng = rng_from_seed(71);
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]];
        let result = KMeans::new(3).fit(&rows, &mut rng).unwrap();
        assert!(result.inertia < 1e-9, "inertia {}", result.inertia);
    }

    #[test]
    fn rejects_invalid_k() {
        let mut rng = rng_from_seed(73);
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(KMeans::new(0).fit(&rows, &mut rng).is_err());
        assert!(KMeans::new(3).fit(&rows, &mut rng).is_err());
        assert!(KMeans::new(1).fit(&[], &mut rng).is_err());
    }

    #[test]
    fn euclidean_metric_works_too() {
        let mut rng = rng_from_seed(79);
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let result = KMeans::new(2)
            .distance(euclidean_sq)
            .normalize_centroids(false)
            .fit(&rows, &mut rng)
            .unwrap();
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[2], result.assignments[3]);
        assert_ne!(result.assignments[0], result.assignments[2]);
    }
}
