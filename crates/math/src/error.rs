//! Error type shared by the numeric constructors in this crate.

use std::fmt;

/// Errors produced by fallible numeric constructors and routines.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A collection that must be non-empty was empty.
    Empty(&'static str),
    /// Two inputs that must have equal lengths did not.
    LengthMismatch {
        /// Name of the operation that failed.
        context: &'static str,
        /// Length of the left-hand input.
        left: usize,
        /// Length of the right-hand input.
        right: usize,
    },
    /// A vector expected to be a probability distribution was not.
    NotADistribution {
        /// Name of the operation that failed.
        context: &'static str,
        /// The sum of the supplied vector.
        sum: f64,
    },
    /// A value was outside its permitted domain.
    OutOfDomain {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// An iterative routine failed to converge.
    NoConvergence(&'static str),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
            MathError::Empty(what) => write!(f, "{what} must be non-empty"),
            MathError::LengthMismatch {
                context,
                left,
                right,
            } => write!(f, "{context}: length mismatch ({left} vs {right})"),
            MathError::NotADistribution { context, sum } => {
                write!(
                    f,
                    "{context}: input is not a probability distribution (sum = {sum})"
                )
            }
            MathError::OutOfDomain { name, value } => {
                write!(f, "parameter `{name}` out of domain: {value}")
            }
            MathError::NoConvergence(what) => write!(f, "{what} failed to converge"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MathError::NonPositiveParameter {
            name: "alpha",
            value: -1.0,
        };
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("-1"));

        let e = MathError::LengthMismatch {
            context: "kl_divergence",
            left: 3,
            right: 4,
        };
        assert!(e.to_string().contains("kl_divergence"));

        let e = MathError::Empty("weights");
        assert!(e.to_string().contains("weights"));

        let e = MathError::NotADistribution {
            context: "entropy",
            sum: 0.5,
        };
        assert!(e.to_string().contains("0.5"));

        let e = MathError::OutOfDomain {
            name: "lambda",
            value: 2.0,
        };
        assert!(e.to_string().contains("lambda"));

        let e = MathError::NoConvergence("truncated normal sampling");
        assert!(e.to_string().contains("converge"));
    }
}
