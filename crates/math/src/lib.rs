//! Numerics substrate for the Source-LDA reproduction.
//!
//! This crate collects every mathematical primitive the topic models need:
//!
//! * special functions ([`special`]): log-gamma, digamma, erf;
//! * random sampling ([`rng`], [`gamma`], [`dirichlet`], [`gaussian`],
//!   [`categorical`]): deterministic seeded RNGs and the distributions used
//!   by the generative models and the collapsed Gibbs samplers;
//! * information-theoretic divergences ([`divergence`]) — in particular the
//!   Jensen–Shannon divergence the paper uses throughout its evaluation;
//! * probability-vector helpers ([`simplex`]);
//! * prefix-sum scans ([`prefix`]) — the kernel of the paper's Algorithm 2;
//! * piecewise-linear interpolation and inversion ([`interp`]) — used to
//!   build the λ smoothing function `g` of §III.C.2;
//! * k-means clustering over distributions ([`kmeans`]) — used by the
//!   superset topic reduction of §III.C.3;
//! * descriptive statistics ([`stats`]) — boxplot summaries for Figures 2–4;
//! * a fast non-cryptographic hasher ([`hash`]) for string interning.
//!
//! Everything is `f64`, allocation-conscious, and deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categorical;
pub mod dirichlet;
pub mod divergence;
pub mod error;
pub mod gamma;
pub mod gaussian;
pub mod hash;
pub mod interp;
pub mod kmeans;
pub mod matrix;
pub mod prefix;
pub mod rng;
pub mod simplex;
pub mod special;
pub mod stats;

pub use categorical::{sample_categorical, sample_cumulative, AliasTable, CumulativeSampler};
pub use dirichlet::Dirichlet;
pub use divergence::{hellinger, js_divergence, kl_divergence, total_variation};
pub use error::MathError;
pub use gaussian::{normal_pdf, DiscretizedGaussian, TruncatedNormal};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use interp::PiecewiseLinear;
pub use kmeans::{KMeans, KMeansResult};
pub use matrix::DenseMatrix;
pub use prefix::{exclusive_scan, inclusive_scan};
pub use rng::{rng_from_seed, rng_from_state, rng_state, spawn_rng, SldaRng};
pub use simplex::{entropy, normalize, normalized};
pub use stats::BoxplotSummary;

/// Convenient `Result` alias for fallible numeric constructors.
pub type Result<T> = std::result::Result<T, MathError>;
