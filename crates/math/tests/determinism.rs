//! Deterministic-seed pinning tests for the numeric kernels.
//!
//! Perf work on the samplers (the ROADMAP's main axis) must not silently
//! change seeded streams: every experiment in the paper reproduction is a
//! function of its seed, and the parallel samplers are only "exact" because
//! they replay the serial sampler's draws bit-for-bit. These tests pin
//!
//! * the raw RNG stream (golden first words of a seeded generator),
//! * Dirichlet draws (simplex membership + bit-exact replay + golden values),
//! * categorical sampling (golden draw sequence + empirical law),
//! * prefix-sum kernels (bit-exact agreement between the sequential,
//!   Blelloch, and blockwise variants — not just tolerance-close).
//!
//! If an intentional RNG change ever lands, re-derive the golden constants
//! and say so loudly in the changelog: it invalidates recorded experiments.

use rand::Rng;
use srclda_math::prefix::{
    blelloch_exclusive_scan, blelloch_inclusive_scan, blockwise_inclusive_scan, exclusive_scan,
    inclusive_scan,
};
use srclda_math::{rng_from_seed, sample_categorical, AliasTable, Dirichlet};

// ---------------------------------------------------------------------------
// Raw RNG stream
// ---------------------------------------------------------------------------

#[test]
fn rng_stream_is_pinned() {
    let mut rng = rng_from_seed(42);
    let got: Vec<u64> = (0..4).map(|_| rng.gen::<u64>()).collect();
    assert_eq!(
        got,
        vec![
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
        ],
        "seeded RNG stream changed — this invalidates every recorded experiment",
    );
}

#[test]
fn rng_f64_stream_replays_bit_exact() {
    let mut a = rng_from_seed(1234);
    let mut b = rng_from_seed(1234);
    for _ in 0..1000 {
        let (x, y): (f64, f64) = (a.gen(), b.gen());
        assert_eq!(x.to_bits(), y.to_bits());
        assert!((0.0..1.0).contains(&x));
    }
}

// ---------------------------------------------------------------------------
// Dirichlet
// ---------------------------------------------------------------------------

#[test]
fn dirichlet_golden_sample() {
    let mut rng = rng_from_seed(7);
    let d = Dirichlet::new(vec![1.0, 2.0, 3.0]).unwrap();
    let got = d.sample(&mut rng);
    let want = [0.258003475879303, 0.48374150244246544, 0.25825502167823167];
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g - w).abs() < 1e-15,
            "golden Dirichlet draw drifted: {g} vs {w}"
        );
    }
}

#[test]
fn dirichlet_samples_stay_on_simplex_for_extreme_seeds_and_alphas() {
    for seed in [0u64, 1, u64::MAX, 0xdead_beef] {
        for alpha in [0.01, 1.0, 50.0] {
            let d = Dirichlet::symmetric(alpha, 17).unwrap();
            let mut rng = rng_from_seed(seed);
            for _ in 0..50 {
                let theta = d.sample(&mut rng);
                let sum: f64 = theta.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "seed {seed} α {alpha}: sum {sum}");
                assert!(theta.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }
}

#[test]
fn dirichlet_sample_and_sample_into_agree() {
    let d = Dirichlet::new(vec![0.5, 1.5, 2.5, 0.1]).unwrap();
    let mut r1 = rng_from_seed(99);
    let mut r2 = rng_from_seed(99);
    let a = d.sample(&mut r1);
    let mut b = vec![0.0; 4];
    d.sample_into(&mut r2, &mut b);
    assert_eq!(
        a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "allocating and in-place sampling must consume the stream identically",
    );
}

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

#[test]
fn categorical_golden_draw_sequence() {
    let mut rng = rng_from_seed(11);
    let weights = [1.0, 2.0, 7.0];
    let got: Vec<usize> = (0..12)
        .map(|_| sample_categorical(&weights, &mut rng))
        .collect();
    assert_eq!(got, vec![2, 2, 2, 2, 1, 2, 1, 0, 2, 2, 2, 2]);
}

#[test]
fn categorical_matches_target_probabilities() {
    // Fixed seed ⇒ this is a regression test, not a flaky statistical one.
    let mut rng = rng_from_seed(2024);
    let weights = [2.0, 0.0, 3.0, 5.0];
    let mut counts = [0usize; 4];
    let n = 100_000;
    for _ in 0..n {
        counts[sample_categorical(&weights, &mut rng)] += 1;
    }
    assert_eq!(counts[1], 0, "zero-weight outcome drawn");
    for (c, w) in counts.iter().zip([0.2, 0.0, 0.3, 0.5]) {
        let emp = *c as f64 / n as f64;
        assert!((emp - w).abs() < 5e-3, "empirical {emp} vs target {w}");
    }
}

#[test]
fn alias_table_matches_target_probabilities() {
    let mut rng = rng_from_seed(77);
    let weights = [1.0, 4.0, 0.0, 5.0];
    let table = AliasTable::new(&weights).unwrap();
    let mut counts = [0usize; 4];
    let n = 100_000;
    for _ in 0..n {
        counts[table.sample(&mut rng)] += 1;
    }
    assert_eq!(counts[2], 0);
    for (c, w) in counts.iter().zip([0.1, 0.4, 0.0, 0.5]) {
        let emp = *c as f64 / n as f64;
        assert!((emp - w).abs() < 5e-3, "empirical {emp} vs target {w}");
    }
}

// ---------------------------------------------------------------------------
// Prefix sums
// ---------------------------------------------------------------------------

#[test]
fn prefix_sums_known_values() {
    let mut v = vec![0.5, 1.5, 2.0, 4.0, 8.0];
    inclusive_scan(&mut v);
    assert_eq!(v, vec![0.5, 2.0, 4.0, 8.0, 16.0]);
    let mut v = vec![0.5, 1.5, 2.0, 4.0, 8.0];
    exclusive_scan(&mut v);
    assert_eq!(v, vec![0.0, 0.5, 2.0, 4.0, 8.0]);
}

#[test]
fn scan_variants_agree_bit_exact_on_dyadic_data() {
    // With dyadic-rational inputs every partial sum is exactly representable,
    // so the three scan algorithms must agree to the last bit regardless of
    // association order. This is the strongest pin available before perf
    // work rearranges the arithmetic.
    for n in [1usize, 2, 5, 8, 33, 128, 257] {
        let data: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) * 0.25).collect();
        let mut seq = data.clone();
        inclusive_scan(&mut seq);
        let mut ble = data.clone();
        blelloch_inclusive_scan(&mut ble);
        assert_eq!(
            seq.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            ble.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "Blelloch scan diverged at n = {n}",
        );
        for blocks in [1usize, 2, 3, 7, 64] {
            let mut blk = data.clone();
            blockwise_inclusive_scan(&mut blk, blocks);
            assert_eq!(
                seq.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                blk.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "blockwise scan diverged at n = {n}, blocks = {blocks}",
            );
        }
    }
}

#[test]
fn exclusive_blelloch_matches_sequential_exclusive() {
    let data: Vec<f64> = (0..100).map(|i| (i % 11) as f64 * 0.5).collect();
    let mut seq = data.clone();
    exclusive_scan(&mut seq);
    let mut ble = data;
    blelloch_exclusive_scan(&mut ble);
    assert_eq!(
        seq.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        ble.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
    );
}
