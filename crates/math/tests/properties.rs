//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use srclda_math::categorical::{binary_search_cumulative, sample_categorical, sample_cumulative};
use srclda_math::prefix::{blelloch_inclusive_scan, blockwise_inclusive_scan, inclusive_scan};
use srclda_math::rng::rng_from_seed;
use srclda_math::simplex::{normalized, top_n_indices};
use srclda_math::special::{ln_gamma, log_sum_exp};
use srclda_math::{js_divergence, Dirichlet, PiecewiseLinear};

fn positive_weights(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..100.0, 1..max_len)
}

proptest! {
    #[test]
    fn blelloch_scan_equals_sequential(data in prop::collection::vec(0.0f64..10.0, 0..300)) {
        let mut seq = data.clone();
        inclusive_scan(&mut seq);
        let mut par = data;
        blelloch_inclusive_scan(&mut par);
        for (a, b) in seq.iter().zip(&par) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn blockwise_scan_equals_sequential(
        data in prop::collection::vec(0.0f64..10.0, 1..300),
        blocks in 1usize..16,
    ) {
        let mut seq = data.clone();
        inclusive_scan(&mut seq);
        let mut blk = data;
        blockwise_inclusive_scan(&mut blk, blocks);
        for (a, b) in seq.iter().zip(&blk) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn dirichlet_samples_on_simplex(alpha in prop::collection::vec(0.01f64..50.0, 1..40), seed in any::<u64>()) {
        let d = Dirichlet::new(alpha).unwrap();
        let mut rng = rng_from_seed(seed);
        let theta = d.sample(&mut rng);
        let sum: f64 = theta.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(theta.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn js_divergence_symmetric_bounded(
        p_raw in positive_weights(30),
        q_raw in positive_weights(30),
    ) {
        // Force equal lengths by truncation.
        let n = p_raw.len().min(q_raw.len());
        let p = normalized(&p_raw[..n]).unwrap();
        let q = normalized(&q_raw[..n]).unwrap();
        let a = js_divergence(&p, &q).unwrap();
        let b = js_divergence(&q, &p).unwrap();
        prop_assert!((a - b).abs() < 1e-10);
        prop_assert!(a >= 0.0);
        prop_assert!(a <= std::f64::consts::LN_2 + 1e-10);
    }

    #[test]
    fn categorical_only_picks_positive_weights(
        weights in prop::collection::vec(0.0f64..5.0, 1..50),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = rng_from_seed(seed);
        let i = sample_categorical(&weights, &mut rng);
        prop_assert!(i < weights.len());
        // Only a zero-weight bucket can never be chosen... unless rounding
        // put us in the final slack bucket.
        if weights[i] == 0.0 {
            prop_assert_eq!(i, weights.len() - 1);
        }
    }

    #[test]
    fn cumulative_sampling_matches_linear(
        weights in positive_weights(50),
        seed in any::<u64>(),
    ) {
        let prefix: Vec<f64> = weights.iter().scan(0.0, |acc, &w| { *acc += w; Some(*acc) }).collect();
        let mut r1 = rng_from_seed(seed);
        let mut r2 = rng_from_seed(seed);
        prop_assert_eq!(
            sample_categorical(&weights, &mut r1),
            sample_cumulative(&prefix, &mut r2)
        );
    }

    #[test]
    fn binary_search_finds_first_exceeding(prefix_raw in positive_weights(50), frac in 0.0f64..1.0) {
        let prefix: Vec<f64> = prefix_raw.iter().scan(0.0, |acc, &w| { *acc += w; Some(*acc) }).collect();
        let total = *prefix.last().unwrap();
        let u = frac * total * 0.999_999;
        let i = binary_search_cumulative(&prefix, u);
        prop_assert!(prefix[i] > u);
        if i > 0 {
            prop_assert!(prefix[i - 1] <= u);
        }
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.05f64..50.0) {
        // ln Γ(x+1) = ln Γ(x) + ln x
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    }

    #[test]
    fn log_sum_exp_dominates_max(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn piecewise_linear_eval_within_hull(
        ys in prop::collection::vec(-10.0f64..10.0, 2..20),
        frac in 0.0f64..1.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let hi = *xs.last().unwrap();
        let f = PiecewiseLinear::new(xs, ys.clone()).unwrap();
        let x = frac * hi;
        let y = f.eval(x);
        let (min, max) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        prop_assert!(y >= min - 1e-9 && y <= max + 1e-9);
    }

    #[test]
    fn top_n_returns_descending(values in prop::collection::vec(0.0f64..1.0, 0..60), n in 0usize..70) {
        let idx = top_n_indices(&values, n);
        prop_assert_eq!(idx.len(), n.min(values.len()));
        for w in idx.windows(2) {
            prop_assert!(values[w[0]] >= values[w[1]]);
        }
    }
}
