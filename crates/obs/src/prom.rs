//! Prometheus text-exposition encoding (`text/plain; version=0.0.4`).
//!
//! [`PromText`] is a low-level writer used both by [`crate::Registry`]
//! and by external metric structs (the serving daemon's lock-free
//! counters) so trainer and serving families are encoded by exactly one
//! implementation. It handles HELP/label escaping, Prometheus float
//! forms (`+Inf`, `NaN`), and the cumulative-bucket shape of histogram
//! families.

use std::fmt::Write as _;

/// The content type the exposition must be served under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Append-only writer producing valid exposition text.
#[derive(Debug)]
pub struct PromText<'a> {
    out: &'a mut String,
}

/// Format a sample value: Prometheus floats render like Go's
/// `strconv.FormatFloat`, with `+Inf`/`-Inf`/`NaN` spelled out.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl<'a> PromText<'a> {
    /// Wrap an existing buffer.
    pub fn wrap(out: &'a mut String) -> Self {
        Self { out }
    }

    /// Emit a family's `# HELP` and `# TYPE` lines. `kind` is one of
    /// `counter`, `gauge`, `histogram`, `summary`, `untyped`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// Emit a full histogram family: `buckets` are `(upper_edge_secs,
    /// cumulative_count)` pairs in increasing edge order (the terminal
    /// `+Inf` bucket is appended automatically from `count`), followed by
    /// `_sum` and `_count`. `labels` are attached to every line.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        self.header(name, help, "histogram");
        let bucket_name = format!("{name}_bucket");
        let edges: Vec<String> = buckets
            .iter()
            .map(|&(edge, _)| format_value(edge))
            .collect();
        for (edge, &(_, cumulative)) in edges.iter().zip(buckets) {
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", edge.as_str()));
            self.sample(&bucket_name, &with_le, cumulative as f64);
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_le, count as f64);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, count as f64);
    }

    /// The underlying buffer length (useful to detect "anything written").
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Structural validation of an exposition body: every line must be a
/// comment, blank, or a `name{labels} value` sample whose value parses.
/// Returns the number of sample lines, or the first offending line.
///
/// This is the check CI and the loopback tests run against the daemon's
/// `GET /metrics` text output — not a full client, but enough to catch
/// unescaped labels, missing values, and malformed floats.
pub fn validate_exposition(body: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split the value off the end; labels may contain spaces inside
        // quoted values, so find the metric part by the last '}' if any.
        let (metric, value) = match line.rfind('}') {
            Some(brace) => {
                let rest = line[brace + 1..].trim();
                (&line[..brace + 1], rest)
            }
            None => match line.split_once(' ') {
                Some((m, v)) => (m, v.trim()),
                None => return Err(format!("line {}: no value: {line:?}", lineno + 1)),
            },
        };
        if metric.is_empty() {
            return Err(format!("line {}: empty metric name", lineno + 1));
        }
        let name_end = metric.find('{').unwrap_or(metric.len());
        let name = &metric[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !ok {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_and_escaping() {
        let mut out = String::new();
        let mut p = PromText::wrap(&mut out);
        assert!(p.is_empty());
        p.header("m_total", "Help with \\ and\nnewline.", "counter");
        p.sample("m_total", &[("path", "a\"b\\c\nd")], 3.0);
        assert!(!p.is_empty());
        assert!(out.contains("# HELP m_total Help with \\\\ and\\nnewline.\n"));
        assert!(out.contains("m_total{path=\"a\\\"b\\\\c\\nd\"} 3\n"));
        assert_eq!(validate_exposition(&out), Ok(1));
    }

    #[test]
    fn histogram_shape() {
        let mut out = String::new();
        let mut p = PromText::wrap(&mut out);
        p.histogram(
            "lat_seconds",
            "Latency.",
            &[("model", "wiki")],
            &[(0.001, 2), (0.01, 5)],
            0.025,
            6,
        );
        assert!(out.contains("# TYPE lat_seconds histogram\n"));
        assert!(out.contains("lat_seconds_bucket{model=\"wiki\",le=\"0.001\"} 2\n"));
        assert!(out.contains("lat_seconds_bucket{model=\"wiki\",le=\"0.01\"} 5\n"));
        assert!(out.contains("lat_seconds_bucket{model=\"wiki\",le=\"+Inf\"} 6\n"));
        assert!(out.contains("lat_seconds_sum{model=\"wiki\"} 0.025\n"));
        assert!(out.contains("lat_seconds_count{model=\"wiki\"} 6\n"));
        // Three bucket lines plus _sum and _count.
        assert_eq!(validate_exposition(&out), Ok(5));
    }

    #[test]
    fn special_floats() {
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
        assert_eq!(format_value(0.25), "0.25");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("just words no value here\n").is_err());
        assert!(validate_exposition("1leading_digit 3\n").is_err());
        assert!(validate_exposition("name notanumber\n").is_err());
        assert_eq!(validate_exposition("# only comments\n\n"), Ok(0));
        assert_eq!(validate_exposition("ok_total 1\nok_gauge -2.5e3\n"), Ok(2));
    }
}
