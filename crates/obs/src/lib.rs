//! Structured telemetry for the Source-LDA reproduction: training
//! observers, JSONL/progress sinks, and a Prometheus text encoder.
//!
//! The training stack ([`srclda_core`]'s fitting loop and sampler
//! backends) emits [`TrainEvent`]s through the [`TrainObserver`] trait;
//! the serving daemon renders its lock-free counters through the
//! [`prom`] encoder. This crate deliberately depends on **nothing** —
//! not even the other workspace crates — so both `srclda_core` and
//! `srclda_serve` can depend on it without a cycle, and so the observer
//! machinery can make a hard promise: *attaching an observer never
//! perturbs the chain*. Observers are read-only callbacks — they receive
//! value snapshots, never draw RNG, and never touch sampler state — and
//! the default [`NoopObserver`] reports `enabled() == false`, so the
//! fitting loop skips even the clock reads (pinned bit-identical by
//! `tests/telemetry.rs` in the workspace root).
//!
//! Three consumers are provided:
//!
//! * [`JsonlSink`] — one JSON object per line, schema documented on
//!   [`TrainEvent::to_json`]; the output round-trips through the
//!   workspace's vendored JSON codec (`srclda_serve::server::json`).
//! * [`ProgressSink`] — human-readable one-line-per-sweep progress.
//! * [`RegistryObserver`] — aggregates events into a [`Registry`] of
//!   relaxed-atomic counters/gauges, renderable as Prometheus text
//!   exposition (`text/plain; version=0.0.4`) and mountable into the
//!   daemon's `GET /metrics` alongside the serving families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod observer;
pub mod prom;
pub mod registry;
pub mod sink;

pub use event::{ShardTimings, SparseBucketCounts, TrainEvent};
pub use observer::{Fanout, NoopObserver, RegistryObserver, TrainObserver};
pub use prom::{validate_exposition, PromText};
pub use registry::{Counter, Gauge, Registry, SpanTimer};
pub use sink::{JsonlSink, ProgressSink};
