//! File and stream sinks: JSONL event logs and human-readable progress
//! lines.

use crate::event::TrainEvent;
use crate::observer::TrainObserver;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes one JSON object per event, one event per line, to any
/// [`Write`] target. Lines follow the schema documented in the README's
/// Observability section and round-trip through the serving layer's
/// vendored JSON parser.
pub struct JsonlSink<W: Write> {
    /// `None` only after [`JsonlSink::finish`] takes the writer.
    writer: Option<W>,
    /// First write error, if any — surfaced by [`JsonlSink::finish`].
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Some(writer),
            error: None,
        }
    }

    /// Flush and return the writer, surfacing any deferred write error.
    /// Observers cannot fail mid-sweep (the fit loop never unwinds for
    /// telemetry), so errors are held until the caller asks.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self.writer.take().expect("writer present until finish");
        writer.flush()?;
        Ok(writer)
    }
}

impl<W: Write> TrainObserver for JsonlSink<W> {
    fn on_event(&mut self, event: &TrainEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.write_all(line.as_bytes()) {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Emits a one-line human-readable summary per sweep (plus fit
/// completion), suitable for a terminal while a long run trains.
pub struct ProgressSink<W: Write> {
    writer: W,
}

impl ProgressSink<io::Stderr> {
    /// Progress lines on standard error.
    pub fn stderr() -> Self {
        Self::new(io::stderr())
    }
}

impl<W: Write> ProgressSink<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }
}

impl<W: Write> TrainObserver for ProgressSink<W> {
    fn on_event(&mut self, event: &TrainEvent) {
        let line = match event {
            TrainEvent::Sweep {
                sweep,
                duration_secs,
                tokens_per_sec,
                loglik,
                ..
            } => {
                let ll = match loglik {
                    Some(ll) => format!(" loglik={ll:.2}"),
                    None => String::new(),
                };
                format!(
                    "sweep {sweep}: {:.1}ms, {:.0} tok/s{ll}",
                    duration_secs * 1e3,
                    tokens_per_sec
                )
            }
            TrainEvent::Adapt {
                sweep,
                duration_secs,
                threads,
            } => format!(
                "adapt @ sweep {sweep}: {:.1}ms on {threads} thread(s)",
                duration_secs * 1e3
            ),
            TrainEvent::Checkpoint {
                sweep,
                bytes,
                duration_secs,
            } => format!(
                "checkpoint @ sweep {sweep}: {bytes} bytes in {:.1}ms",
                duration_secs * 1e3
            ),
            TrainEvent::FitComplete {
                sweeps,
                duration_secs,
                tokens_per_sec,
                ..
            } => format!(
                "fit complete: {sweeps} sweeps in {duration_secs:.2}s ({tokens_per_sec:.0} tok/s)"
            ),
            TrainEvent::Perplexity {
                perplexity,
                rescued_draws,
                ..
            } => format!("perplexity {perplexity:.3} ({rescued_draws} rescued draws)"),
            // Bucket/shard detail stays in the JSONL stream.
            TrainEvent::SparseBuckets { .. } | TrainEvent::ShardSweep { .. } => return,
        };
        let _ = writeln!(self.writer, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SparseBucketCounts;

    fn sweep(n: u64) -> TrainEvent {
        TrainEvent::Sweep {
            sweep: n,
            duration_secs: 0.25,
            tokens: 1000,
            tokens_per_sec: 4000.0,
            loglik: Some(-12.5),
            loglik_clamped_tokens: 0,
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(&sweep(1));
        sink.on_event(&TrainEvent::SparseBuckets {
            sweep: 1,
            counts: SparseBucketCounts {
                q_hits: 9,
                r_hits: 1,
                s_hits: 0,
                dense_fallbacks: 0,
            },
        });
        let bytes = sink.finish().expect("no write errors");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"sweep\""));
        assert!(lines[1].starts_with("{\"event\":\"sparse_buckets\""));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn jsonl_sink_create_writes_file() {
        let dir = std::env::temp_dir().join("srclda_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.on_event(&sweep(7));
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"sweep\":7"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_sink_renders_sweeps_and_skips_detail_events() {
        let mut buf = Vec::new();
        {
            let mut sink = ProgressSink::new(&mut buf);
            sink.on_event(&sweep(3));
            sink.on_event(&TrainEvent::SparseBuckets {
                sweep: 3,
                counts: SparseBucketCounts::default(),
            });
            sink.on_event(&TrainEvent::FitComplete {
                sweeps: 3,
                duration_secs: 0.75,
                tokens_per_sec: 4000.0,
                loglik_clamped_tokens: 0,
            });
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("sweep 3: 250.0ms, 4000 tok/s loglik=-12.50"));
        assert!(text.contains("fit complete: 3 sweeps in 0.75s (4000 tok/s)"));
    }
}
