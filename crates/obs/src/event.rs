//! The training event vocabulary.
//!
//! Every event is a plain value snapshot taken at a sweep or chunk
//! boundary of the fitting loop — nothing here can reach back into the
//! sampler. The JSONL schema (one object per line, discriminated by the
//! `"event"` key) is documented on [`TrainEvent::to_json`] and pinned by
//! the round-trip test in the workspace root.

use crate::json;

/// Per-sweep routing tallies of the sub-linear sparse bucket kernel
/// (`Backend::SparseKernel`): which bucket resolved each token's draw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseBucketCounts {
    /// Draws resolved by the word-sparse `q` bucket (binary search over
    /// the per-word cumulative — the sub-linear fast path).
    pub q_hits: u64,
    /// Draws resolved by the document bucket walk (O(k_d)).
    pub r_hits: u64,
    /// Draws resolved by the smoothing bucket walk entered *normally*
    /// (`u ≥ q + r`); the walk is O(T), the kernel's slow tail.
    pub s_hits: u64,
    /// Dense-walk fallbacks: drift overruns that fell out of their bucket
    /// into the O(T) smoothing walk (or its terminal fallback), plus
    /// zero-mass uniform draws. Should be ~0; growth signals cache drift.
    pub dense_fallbacks: u64,
}

impl SparseBucketCounts {
    /// Total draws tallied.
    pub fn total(&self) -> u64 {
        self.q_hits + self.r_hits + self.s_hits + self.dense_fallbacks
    }

    /// Fold another tally into this one (used to merge per-shard tallies
    /// into one sweep-level total).
    pub fn absorb(&mut self, other: SparseBucketCounts) {
        self.q_hits += other.q_hits;
        self.r_hits += other.r_hits;
        self.s_hits += other.s_hits;
        self.dense_fallbacks += other.dense_fallbacks;
    }
}

/// Per-sweep timings of the document-sharded backend
/// (`Backend::ShardedDocs`): each shard's sweep wall-clock and the
/// sweep-boundary merge, plus — when the shard kernel is the sparse bucket
/// kernel — the merged bucket-routing tallies across all shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardTimings {
    /// Seconds each shard spent sweeping, indexed by shard.
    pub shard_secs: Vec<f64>,
    /// Seconds spent merging shard deltas into the global counts.
    pub merge_secs: f64,
    /// Bucket-routing tallies summed over every shard's sweep, `Some` iff
    /// the shard kernel is sparse (`ShardedDocs { kernel: Sparse, .. }`).
    pub buckets: Option<SparseBucketCounts>,
}

/// One telemetry event from a training run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainEvent {
    /// A full Gibbs sweep completed.
    Sweep {
        /// Absolute completed-sweep index (1-based).
        sweep: u64,
        /// Wall-clock seconds since the previous sweep boundary.
        duration_secs: f64,
        /// Tokens sampled per sweep (the corpus token count).
        tokens: u64,
        /// `tokens / duration_secs` for this sweep.
        tokens_per_sec: f64,
        /// Joint word log-likelihood, when the trace schedule evaluated
        /// it at this sweep.
        loglik: Option<f64>,
        /// Tokens clamped in this sweep's log-likelihood evaluation
        /// (0 when `loglik` is `None`).
        loglik_clamped_tokens: u64,
    },
    /// Sparse-kernel bucket routing tallies for one sweep.
    SparseBuckets {
        /// Absolute sweep index the tallies cover.
        sweep: u64,
        /// The routing tallies.
        counts: SparseBucketCounts,
    },
    /// Per-shard sweep and merge timings for one sharded sweep.
    ShardSweep {
        /// Absolute sweep index the timings cover.
        sweep: u64,
        /// The timings.
        timings: ShardTimings,
    },
    /// A λ-adaptation pass completed at a chunk boundary.
    Adapt {
        /// Completed sweeps when the adaptation ran.
        sweep: u64,
        /// Wall-clock seconds of the adaptation.
        duration_secs: f64,
        /// Worker threads the topic-sharded adaptation used.
        threads: u64,
    },
    /// A training checkpoint was captured and handed to the writer.
    Checkpoint {
        /// The checkpoint's completed-sweep index.
        sweep: u64,
        /// Checkpoint payload size in bytes (section payloads — the
        /// assignments, counts, RNG states, and priors).
        bytes: u64,
        /// Wall-clock seconds the checkpoint callback (the write) took.
        duration_secs: f64,
    },
    /// The fit returned.
    FitComplete {
        /// Sweeps executed by this run (resumed runs count only their
        /// own sweeps).
        sweeps: u64,
        /// Total wall-clock seconds of the run.
        duration_secs: f64,
        /// Aggregate sampled tokens per second over the run.
        tokens_per_sec: f64,
        /// Total clamped tokens across every log-likelihood evaluation
        /// (see `FittedModel::loglik_clamped_tokens`).
        loglik_clamped_tokens: u64,
    },
    /// A held-out perplexity evaluation finished (emitted by evaluation
    /// drivers, not by the fitting loop itself).
    Perplexity {
        /// The per-token perplexity.
        perplexity: f64,
        /// Gibbs draws that needed the `2^512` underflow-rescue pass.
        rescued_draws: u64,
        /// Draws whose topic mass was all-zero (uniform fallback).
        zero_mass_draws: u64,
    },
}

impl TrainEvent {
    /// The event's `"event"` discriminator value.
    pub fn kind(&self) -> &'static str {
        match self {
            TrainEvent::Sweep { .. } => "sweep",
            TrainEvent::SparseBuckets { .. } => "sparse_buckets",
            TrainEvent::ShardSweep { .. } => "shard_sweep",
            TrainEvent::Adapt { .. } => "adapt",
            TrainEvent::Checkpoint { .. } => "checkpoint",
            TrainEvent::FitComplete { .. } => "fit_complete",
            TrainEvent::Perplexity { .. } => "perplexity",
        }
    }

    /// Render the event as one JSON object (no trailing newline).
    ///
    /// Schema — every line carries `"event"` plus its variant's fields:
    ///
    /// ```json
    /// {"event":"sweep","sweep":12,"duration_secs":0.01,"tokens":9600,
    ///  "tokens_per_sec":960000.0,"loglik":-123.4,"loglik_clamped_tokens":0}
    /// {"event":"sparse_buckets","sweep":12,"q_hits":9000,"r_hits":500,
    ///  "s_hits":100,"dense_fallbacks":0}
    /// {"event":"shard_sweep","sweep":12,"merge_secs":0.001,
    ///  "shard_secs":[0.004,0.005]}
    /// {"event":"shard_sweep","sweep":12,"merge_secs":0.001,
    ///  "shard_secs":[0.004,0.005],"q_hits":9000,"r_hits":500,
    ///  "s_hits":100,"dense_fallbacks":0}
    /// {"event":"adapt","sweep":12,"duration_secs":0.002,"threads":8}
    /// {"event":"checkpoint","sweep":12,"bytes":40960,"duration_secs":0.003}
    /// {"event":"fit_complete","sweeps":24,"duration_secs":0.5,
    ///  "tokens_per_sec":460800.0,"loglik_clamped_tokens":0}
    /// {"event":"perplexity","perplexity":56.4,"rescued_draws":0,
    ///  "zero_mass_draws":0}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"event\":");
        json::push_str(&mut out, self.kind());
        match self {
            TrainEvent::Sweep {
                sweep,
                duration_secs,
                tokens,
                tokens_per_sec,
                loglik,
                loglik_clamped_tokens,
            } => {
                out.push_str(&format!(",\"sweep\":{sweep},\"duration_secs\":"));
                json::push_f64(&mut out, *duration_secs);
                out.push_str(&format!(",\"tokens\":{tokens},\"tokens_per_sec\":"));
                json::push_f64(&mut out, *tokens_per_sec);
                out.push_str(",\"loglik\":");
                json::push_opt_f64(&mut out, *loglik);
                out.push_str(&format!(
                    ",\"loglik_clamped_tokens\":{loglik_clamped_tokens}"
                ));
            }
            TrainEvent::SparseBuckets { sweep, counts } => {
                out.push_str(&format!(
                    ",\"sweep\":{sweep},\"q_hits\":{},\"r_hits\":{},\"s_hits\":{},\
                     \"dense_fallbacks\":{}",
                    counts.q_hits, counts.r_hits, counts.s_hits, counts.dense_fallbacks
                ));
            }
            TrainEvent::ShardSweep { sweep, timings } => {
                out.push_str(&format!(",\"sweep\":{sweep},\"merge_secs\":"));
                json::push_f64(&mut out, timings.merge_secs);
                out.push_str(",\"shard_secs\":[");
                for (i, s) in timings.shard_secs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::push_f64(&mut out, *s);
                }
                out.push(']');
                if let Some(b) = &timings.buckets {
                    out.push_str(&format!(
                        ",\"q_hits\":{},\"r_hits\":{},\"s_hits\":{},\
                         \"dense_fallbacks\":{}",
                        b.q_hits, b.r_hits, b.s_hits, b.dense_fallbacks
                    ));
                }
            }
            TrainEvent::Adapt {
                sweep,
                duration_secs,
                threads,
            } => {
                out.push_str(&format!(",\"sweep\":{sweep},\"duration_secs\":"));
                json::push_f64(&mut out, *duration_secs);
                out.push_str(&format!(",\"threads\":{threads}"));
            }
            TrainEvent::Checkpoint {
                sweep,
                bytes,
                duration_secs,
            } => {
                out.push_str(&format!(
                    ",\"sweep\":{sweep},\"bytes\":{bytes},\"duration_secs\":"
                ));
                json::push_f64(&mut out, *duration_secs);
            }
            TrainEvent::FitComplete {
                sweeps,
                duration_secs,
                tokens_per_sec,
                loglik_clamped_tokens,
            } => {
                out.push_str(&format!(",\"sweeps\":{sweeps},\"duration_secs\":"));
                json::push_f64(&mut out, *duration_secs);
                out.push_str(",\"tokens_per_sec\":");
                json::push_f64(&mut out, *tokens_per_sec);
                out.push_str(&format!(
                    ",\"loglik_clamped_tokens\":{loglik_clamped_tokens}"
                ));
            }
            TrainEvent::Perplexity {
                perplexity,
                rescued_draws,
                zero_mass_draws,
            } => {
                out.push_str(",\"perplexity\":");
                json::push_f64(&mut out, *perplexity);
                out.push_str(&format!(
                    ",\"rescued_draws\":{rescued_draws},\"zero_mass_draws\":{zero_mass_draws}"
                ));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_json_shapes() {
        let events = [
            TrainEvent::Sweep {
                sweep: 12,
                duration_secs: 0.01,
                tokens: 9600,
                tokens_per_sec: 960_000.0,
                loglik: Some(-123.5),
                loglik_clamped_tokens: 2,
            },
            TrainEvent::SparseBuckets {
                sweep: 12,
                counts: SparseBucketCounts {
                    q_hits: 9000,
                    r_hits: 500,
                    s_hits: 100,
                    dense_fallbacks: 1,
                },
            },
            TrainEvent::ShardSweep {
                sweep: 3,
                timings: ShardTimings {
                    shard_secs: vec![0.5, 0.25],
                    merge_secs: 0.125,
                    buckets: None,
                },
            },
            TrainEvent::Adapt {
                sweep: 10,
                duration_secs: 0.002,
                threads: 8,
            },
            TrainEvent::Checkpoint {
                sweep: 6,
                bytes: 40960,
                duration_secs: 0.003,
            },
            TrainEvent::FitComplete {
                sweeps: 24,
                duration_secs: 0.5,
                tokens_per_sec: 460_800.0,
                loglik_clamped_tokens: 0,
            },
            TrainEvent::Perplexity {
                perplexity: 56.5,
                rescued_draws: 3,
                zero_mass_draws: 0,
            },
        ];
        for e in &events {
            let line = e.to_json();
            assert!(
                line.starts_with(&format!("{{\"event\":\"{}\"", e.kind())),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
        }
        // Spot-check exact renderings (the schema contract).
        assert_eq!(
            events[0].to_json(),
            "{\"event\":\"sweep\",\"sweep\":12,\"duration_secs\":0.01,\"tokens\":9600,\
             \"tokens_per_sec\":960000,\"loglik\":-123.5,\"loglik_clamped_tokens\":2}"
        );
        assert_eq!(
            events[2].to_json(),
            "{\"event\":\"shard_sweep\",\"sweep\":3,\"merge_secs\":0.125,\
             \"shard_secs\":[0.5,0.25]}"
        );
        // Sharded-sparse sweeps append the aggregated bucket tallies.
        let with_buckets = TrainEvent::ShardSweep {
            sweep: 3,
            timings: ShardTimings {
                shard_secs: vec![0.5, 0.25],
                merge_secs: 0.125,
                buckets: Some(SparseBucketCounts {
                    q_hits: 9000,
                    r_hits: 500,
                    s_hits: 100,
                    dense_fallbacks: 1,
                }),
            },
        };
        assert_eq!(
            with_buckets.to_json(),
            "{\"event\":\"shard_sweep\",\"sweep\":3,\"merge_secs\":0.125,\
             \"shard_secs\":[0.5,0.25],\"q_hits\":9000,\"r_hits\":500,\
             \"s_hits\":100,\"dense_fallbacks\":1}"
        );
    }

    #[test]
    fn no_loglik_renders_null() {
        let e = TrainEvent::Sweep {
            sweep: 1,
            duration_secs: 0.0,
            tokens: 10,
            tokens_per_sec: 0.0,
            loglik: None,
            loglik_clamped_tokens: 0,
        };
        assert!(e.to_json().contains("\"loglik\":null"));
    }

    #[test]
    fn bucket_totals_add_up() {
        let c = SparseBucketCounts {
            q_hits: 1,
            r_hits: 2,
            s_hits: 3,
            dense_fallbacks: 4,
        };
        assert_eq!(c.total(), 10);
    }
}
