//! Minimal JSON *writing* helpers for the JSONL sink.
//!
//! This crate is dependency-free, so it cannot use the serving layer's
//! vendored codec; it only needs to *emit* JSON, never parse it. The
//! escaping and number forms here are the strict subset the vendored
//! parser accepts — `tests/telemetry.rs` round-trips every event line
//! through `srclda_serve::server::json::parse` to pin that.

/// Append `s` as a JSON string literal (quoted, escaped).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float as a JSON number. Rust's `Display` for `f64` is
/// shortest-round-trip, so the reader reconstructs the exact bits.
/// Non-finite values have no JSON number form and are emitted as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Append an optional float (`None` → `null`).
pub fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(input: &str) -> String {
        let mut out = String::new();
        push_str(&mut out, input);
        out
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(s("plain"), "\"plain\"");
        assert_eq!(s("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(s("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(s("\u{1}"), "\"\\u0001\"");
        assert_eq!(s("unicode: λ"), "\"unicode: λ\"");
    }

    #[test]
    fn floats_render_finite_or_null() {
        let mut out = String::new();
        push_f64(&mut out, 0.5);
        assert_eq!(out, "0.5");
        let mut out = String::new();
        push_f64(&mut out, -1234.25);
        assert_eq!(out, "-1234.25");
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_opt_f64(&mut out, None);
        assert_eq!(out, "null");
    }
}
