//! The [`TrainObserver`] trait, the no-op default, fan-out, and the
//! registry-aggregating observer.

use crate::event::TrainEvent;
use crate::registry::{Counter, Gauge, Registry};
use std::sync::Arc;

/// A read-only consumer of training telemetry.
///
/// Observers receive value snapshots ([`TrainEvent`]) at sweep and chunk
/// boundaries. They cannot reach back into the sampler — the contract,
/// pinned by the workspace's bit-identity tests, is that attaching any
/// observer leaves the trained model bit-identical to running without
/// one.
pub trait TrainObserver {
    /// Whether the producer should bother building events at all. The
    /// fitting loop checks this once per run and, when `false`, skips
    /// even the per-sweep clock reads — the disabled path costs one
    /// branch.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn on_event(&mut self, event: &TrainEvent);
}

/// The default observer: reports `enabled() == false` and drops events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _event: &TrainEvent) {}
}

/// Fan one event stream out to several observers (e.g. a JSONL file plus
/// a progress line plus a metric registry). Enabled iff any child is.
#[derive(Default)]
pub struct Fanout {
    children: Vec<Box<dyn TrainObserver>>,
}

impl Fanout {
    /// An empty fan-out (disabled until a child is added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a child observer (builder style).
    #[must_use]
    pub fn with(mut self, child: Box<dyn TrainObserver>) -> Self {
        self.children.push(child);
        self
    }

    /// Add a child observer.
    pub fn push(&mut self, child: Box<dyn TrainObserver>) {
        self.children.push(child);
    }
}

impl TrainObserver for Fanout {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }

    fn on_event(&mut self, event: &TrainEvent) {
        for child in &mut self.children {
            child.on_event(event);
        }
    }
}

/// Aggregates training events into a [`Registry`] of Prometheus
/// families, all prefixed `srclda_train_` (plus the perplexity pair).
/// Share the registry with a serving daemon to expose a live training
/// run on `GET /metrics` next to the serving families.
pub struct RegistryObserver {
    registry: Arc<Registry>,
    sweeps: Arc<Counter>,
    tokens: Arc<Counter>,
    sweep_nanos: Arc<Counter>,
    tokens_per_sec: Arc<Gauge>,
    loglik: Arc<Gauge>,
    loglik_clamped: Arc<Counter>,
    bucket_q: Arc<Counter>,
    bucket_r: Arc<Counter>,
    bucket_s: Arc<Counter>,
    bucket_fallback: Arc<Counter>,
    shard_nanos: Vec<Arc<Counter>>,
    merge_nanos: Arc<Counter>,
    adapts: Arc<Counter>,
    adapt_nanos: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_bytes: Arc<Counter>,
    checkpoint_nanos: Arc<Counter>,
    perplexity: Arc<Gauge>,
    rescued_draws: Arc<Counter>,
    zero_mass_draws: Arc<Counter>,
}

const NANOS: f64 = 1e-9;

impl RegistryObserver {
    /// Register the trainer families into `registry` and observe into
    /// them.
    pub fn new(registry: Arc<Registry>) -> Self {
        let bucket = |name: &str| {
            registry.counter(
                "srclda_train_sparse_bucket_hits_total",
                "Sparse-kernel draws resolved per bucket.",
                &[("bucket", name)],
            )
        };
        Self {
            sweeps: registry.counter("srclda_train_sweeps_total", "Completed Gibbs sweeps.", &[]),
            tokens: registry.counter(
                "srclda_train_tokens_total",
                "Tokens sampled across all sweeps.",
                &[],
            ),
            sweep_nanos: registry.counter_scaled(
                "srclda_train_sweep_seconds_total",
                "Wall-clock seconds spent in sweeps.",
                &[],
                NANOS,
            ),
            tokens_per_sec: registry.gauge(
                "srclda_train_tokens_per_sec",
                "Sampling throughput of the most recent sweep.",
                &[],
            ),
            loglik: registry.gauge(
                "srclda_train_loglik",
                "Most recent joint word log-likelihood.",
                &[],
            ),
            loglik_clamped: registry.counter(
                "srclda_train_loglik_clamped_tokens_total",
                "Tokens clamped in log-likelihood evaluations.",
                &[],
            ),
            bucket_q: bucket("word"),
            bucket_r: bucket("doc"),
            bucket_s: bucket("smoothing"),
            bucket_fallback: registry.counter(
                "srclda_train_sparse_dense_fallbacks_total",
                "Sparse-kernel draws that fell back to a dense walk.",
                &[],
            ),
            shard_nanos: Vec::new(),
            merge_nanos: registry.counter_scaled(
                "srclda_train_shard_merge_seconds_total",
                "Seconds merging shard deltas at sweep boundaries.",
                &[],
                NANOS,
            ),
            adapts: registry.counter(
                "srclda_train_adaptations_total",
                "Completed lambda-adaptation passes.",
                &[],
            ),
            adapt_nanos: registry.counter_scaled(
                "srclda_train_adapt_seconds_total",
                "Seconds spent in lambda adaptation.",
                &[],
                NANOS,
            ),
            checkpoints: registry.counter(
                "srclda_train_checkpoints_total",
                "Checkpoints captured.",
                &[],
            ),
            checkpoint_bytes: registry.counter(
                "srclda_train_checkpoint_bytes_total",
                "Checkpoint payload bytes handed to the writer.",
                &[],
            ),
            checkpoint_nanos: registry.counter_scaled(
                "srclda_train_checkpoint_seconds_total",
                "Seconds spent writing checkpoints.",
                &[],
                NANOS,
            ),
            perplexity: registry.gauge(
                "srclda_perplexity",
                "Most recent held-out per-token perplexity.",
                &[],
            ),
            rescued_draws: registry.counter(
                "srclda_perplexity_rescued_draws_total",
                "Perplexity Gibbs draws that needed the underflow-rescue pass.",
                &[],
            ),
            zero_mass_draws: registry.counter(
                "srclda_perplexity_zero_mass_draws_total",
                "Perplexity Gibbs draws with all-zero topic mass.",
                &[],
            ),
            registry,
        }
    }

    /// The registry this observer writes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn shard_counter(&mut self, shard: usize) -> &Counter {
        while self.shard_nanos.len() <= shard {
            let label = self.shard_nanos.len().to_string();
            self.shard_nanos.push(self.registry.counter_scaled(
                "srclda_train_shard_sweep_seconds_total",
                "Seconds each shard spent sweeping.",
                &[("shard", &label)],
                NANOS,
            ));
        }
        &self.shard_nanos[shard]
    }
}

fn nanos(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e9) as u64
    } else {
        0
    }
}

impl TrainObserver for RegistryObserver {
    fn on_event(&mut self, event: &TrainEvent) {
        match event {
            TrainEvent::Sweep {
                duration_secs,
                tokens,
                tokens_per_sec,
                loglik,
                loglik_clamped_tokens,
                ..
            } => {
                self.sweeps.inc();
                self.tokens.add(*tokens);
                self.sweep_nanos.add(nanos(*duration_secs));
                self.tokens_per_sec.set(*tokens_per_sec);
                if let Some(ll) = loglik {
                    self.loglik.set(*ll);
                }
                self.loglik_clamped.add(*loglik_clamped_tokens);
            }
            TrainEvent::SparseBuckets { counts, .. } => {
                self.bucket_q.add(counts.q_hits);
                self.bucket_r.add(counts.r_hits);
                self.bucket_s.add(counts.s_hits);
                self.bucket_fallback.add(counts.dense_fallbacks);
            }
            TrainEvent::ShardSweep { timings, .. } => {
                for (shard, &secs) in timings.shard_secs.iter().enumerate() {
                    self.shard_counter(shard).add(nanos(secs));
                }
                self.merge_nanos.add(nanos(timings.merge_secs));
            }
            TrainEvent::Adapt { duration_secs, .. } => {
                self.adapts.inc();
                self.adapt_nanos.add(nanos(*duration_secs));
            }
            TrainEvent::Checkpoint {
                bytes,
                duration_secs,
                ..
            } => {
                self.checkpoints.inc();
                self.checkpoint_bytes.add(*bytes);
                self.checkpoint_nanos.add(nanos(*duration_secs));
            }
            TrainEvent::FitComplete { .. } => {}
            TrainEvent::Perplexity {
                perplexity,
                rescued_draws,
                zero_mass_draws,
            } => {
                self.perplexity.set(*perplexity);
                self.rescued_draws.add(*rescued_draws);
                self.zero_mass_draws.add(*zero_mass_draws);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ShardTimings, SparseBucketCounts};

    #[test]
    fn noop_is_disabled() {
        let mut o = NoopObserver;
        assert!(!o.enabled());
        o.on_event(&TrainEvent::FitComplete {
            sweeps: 1,
            duration_secs: 0.0,
            tokens_per_sec: 0.0,
            loglik_clamped_tokens: 0,
        });
    }

    #[test]
    fn fanout_enabled_iff_any_child_is() {
        assert!(!Fanout::new().enabled());
        assert!(!Fanout::new().with(Box::new(NoopObserver)).enabled());
        let registry = Arc::new(Registry::new());
        let fan = Fanout::new()
            .with(Box::new(NoopObserver))
            .with(Box::new(RegistryObserver::new(registry)));
        assert!(fan.enabled());
    }

    #[test]
    fn registry_observer_aggregates_every_event_kind() {
        let registry = Arc::new(Registry::new());
        let mut obs = RegistryObserver::new(registry.clone());
        assert!(obs.enabled());
        for sweep in 1..=3u64 {
            obs.on_event(&TrainEvent::Sweep {
                sweep,
                duration_secs: 0.5,
                tokens: 100,
                tokens_per_sec: 200.0,
                loglik: Some(-50.0 - sweep as f64),
                loglik_clamped_tokens: 1,
            });
        }
        obs.on_event(&TrainEvent::SparseBuckets {
            sweep: 3,
            counts: SparseBucketCounts {
                q_hits: 90,
                r_hits: 8,
                s_hits: 2,
                dense_fallbacks: 1,
            },
        });
        obs.on_event(&TrainEvent::ShardSweep {
            sweep: 3,
            timings: ShardTimings {
                shard_secs: vec![0.25, 0.5],
                merge_secs: 0.125,
                buckets: None,
            },
        });
        obs.on_event(&TrainEvent::Adapt {
            sweep: 3,
            duration_secs: 1.0,
            threads: 4,
        });
        obs.on_event(&TrainEvent::Checkpoint {
            sweep: 3,
            bytes: 1024,
            duration_secs: 2.0,
        });
        obs.on_event(&TrainEvent::Perplexity {
            perplexity: 42.5,
            rescued_draws: 7,
            zero_mass_draws: 1,
        });
        let text = registry.render();
        assert!(text.contains("srclda_train_sweeps_total 3\n"));
        assert!(text.contains("srclda_train_tokens_total 300\n"));
        assert!(text.contains("srclda_train_sweep_seconds_total 1.5\n"));
        assert!(text.contains("srclda_train_tokens_per_sec 200\n"));
        assert!(text.contains("srclda_train_loglik -53\n"));
        assert!(text.contains("srclda_train_loglik_clamped_tokens_total 3\n"));
        assert!(text.contains("srclda_train_sparse_bucket_hits_total{bucket=\"word\"} 90\n"));
        assert!(text.contains("srclda_train_sparse_bucket_hits_total{bucket=\"doc\"} 8\n"));
        assert!(text.contains("srclda_train_sparse_bucket_hits_total{bucket=\"smoothing\"} 2\n"));
        assert!(text.contains("srclda_train_sparse_dense_fallbacks_total 1\n"));
        assert!(text.contains("srclda_train_shard_sweep_seconds_total{shard=\"0\"} 0.25\n"));
        assert!(text.contains("srclda_train_shard_sweep_seconds_total{shard=\"1\"} 0.5\n"));
        assert!(text.contains("srclda_train_shard_merge_seconds_total 0.125\n"));
        assert!(text.contains("srclda_train_adaptations_total 1\n"));
        assert!(text.contains("srclda_train_adapt_seconds_total 1\n"));
        assert!(text.contains("srclda_train_checkpoints_total 1\n"));
        assert!(text.contains("srclda_train_checkpoint_bytes_total 1024\n"));
        assert!(text.contains("srclda_train_checkpoint_seconds_total 2\n"));
        assert!(text.contains("srclda_perplexity 42.5\n"));
        assert!(text.contains("srclda_perplexity_rescued_draws_total 7\n"));
        assert!(text.contains("srclda_perplexity_zero_mass_draws_total 1\n"));
        assert_eq!(
            crate::prom::validate_exposition(&text).map(|n| n > 15),
            Ok(true)
        );
    }
}
