//! Relaxed-atomic counters, gauges, and the metric registry.
//!
//! Everything here is lock-free on the hot path: a [`Counter`] add or
//! [`Gauge`] set is one relaxed atomic store, so instrumented code never
//! contends with itself. The [`Registry`] owns the family metadata
//! (name, help, kind, labels) behind a mutex that is only taken at
//! registration and render time — never per observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A monotonically increasing relaxed-atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed-atomic gauge holding an `f64` (stored as its bit pattern).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A wall-clock span: start it, read elapsed seconds (or nanos) when the
/// spanned work finishes. Reading does not consume the timer.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Elapsed seconds since [`SpanTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed whole nanoseconds (saturating at `u64::MAX`).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Prometheus metric kinds the registry can render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
        }
    }
}

#[derive(Debug)]
enum Metric {
    /// A counter rendered as `get() * scale` — scale `1.0` for plain
    /// counts, `1e-9` for counters accumulating nanoseconds but exposed
    /// as `_seconds_total`.
    Counter(Arc<Counter>, f64),
    Gauge(Arc<Gauge>),
}

#[derive(Debug)]
struct Sample {
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// A named collection of metric families, renderable as Prometheus text
/// exposition. Registration is idempotent: asking for an existing
/// `(name, labels)` pair returns the already-registered handle.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn family<'a>(
        families: &'a mut Vec<Family>,
        name: &str,
        help: &str,
        kind: Kind,
    ) -> &'a mut Family {
        if let Some(i) = families.iter().position(|f| f.name == name) {
            assert_eq!(
                families[i].kind, kind,
                "metric {name:?} registered with two kinds"
            );
            return &mut families[i];
        }
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        });
        families.last_mut().expect("just pushed")
    }

    fn find_sample(family: &Family, labels: &[(&str, &str)]) -> Option<usize> {
        family.samples.iter().position(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Register (or fetch) a counter sample.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_scaled(name, help, labels, 1.0)
    }

    /// Register (or fetch) a counter whose rendered value is
    /// `get() * scale` — e.g. a nanosecond accumulator exposed as a
    /// `_seconds_total` family with `scale = 1e-9`.
    pub fn counter_scaled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Counter> {
        let mut families = self.lock();
        let family = Self::family(&mut families, name, help, Kind::Counter);
        if let Some(i) = Self::find_sample(family, labels) {
            if let Metric::Counter(c, _) = &family.samples[i].metric {
                return c.clone();
            }
            unreachable!("counter family holds only counters");
        }
        let counter = Arc::new(Counter::default());
        family.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: Metric::Counter(counter.clone(), scale),
        });
        counter
    }

    /// Register (or fetch) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut families = self.lock();
        let family = Self::family(&mut families, name, help, Kind::Gauge);
        if let Some(i) = Self::find_sample(family, labels) {
            if let Metric::Gauge(g) = &family.samples[i].metric {
                return g.clone();
            }
            unreachable!("gauge family holds only gauges");
        }
        let gauge = Arc::new(Gauge::default());
        family.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metric: Metric::Gauge(gauge.clone()),
        });
        gauge
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Render every family as Prometheus text exposition
    /// (`text/plain; version=0.0.4`), in registration order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`Registry::render`] appending into an existing buffer (so a
    /// caller can unify several registries in one exposition).
    pub fn render_into(&self, out: &mut String) {
        let mut text = crate::prom::PromText::wrap(out);
        for family in self.lock().iter() {
            text.header(&family.name, &family.help, family.kind.name());
            for sample in &family.samples {
                let labels: Vec<(&str, &str)> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let value = match &sample.metric {
                    Metric::Counter(c, scale) => c.get() as f64 * scale,
                    Metric::Gauge(g) => g.get(),
                };
                text.sample(&family.name, &labels, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_render() {
        let r = Registry::new();
        assert!(r.is_empty());
        let c = r.counter("srclda_test_total", "A test counter.", &[]);
        c.add(3);
        c.inc();
        let labeled = r.counter("srclda_labeled_total", "Labeled.", &[("bucket", "word")]);
        labeled.add(7);
        let g = r.gauge("srclda_test_gauge", "A gauge.", &[]);
        g.set(-2.5);
        let secs = r.counter_scaled("srclda_test_seconds_total", "Seconds.", &[], 1e-9);
        secs.add(1_500_000_000);
        let text = r.render();
        assert!(text.contains("# HELP srclda_test_total A test counter.\n"));
        assert!(text.contains("# TYPE srclda_test_total counter\n"));
        assert!(
            text.contains("\nsrclda_test_total 4\n") || text.starts_with("srclda_test_total 4")
        );
        assert!(text.contains("srclda_labeled_total{bucket=\"word\"} 7\n"));
        assert!(text.contains("srclda_test_gauge -2.5\n"));
        assert!(text.contains("srclda_test_seconds_total 1.5\n"));
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "X.", &[("m", "1")]);
        let b = r.counter("x_total", "X.", &[("m", "1")]);
        let other = r.counter("x_total", "X.", &[("m", "2")]);
        a.add(1);
        b.add(1);
        other.add(5);
        assert_eq!(a.get(), 2);
        let text = r.render();
        assert!(text.contains("x_total{m=\"1\"} 2\n"));
        assert!(text.contains("x_total{m=\"2\"} 5\n"));
        // One family header, two samples.
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
    }

    #[test]
    fn span_timer_measures_forward_time() {
        let t = SpanTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.elapsed_secs() > 0.0);
        assert!(t.elapsed_nanos() > 0);
    }
}
