//! Criterion benchmarks for the collapsed Gibbs samplers: per-fit cost of
//! every model family and the serial-vs-parallel backends over a topic-count
//! sweep (the microbenchmark companion to Figure 8(f)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srclda_core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use srclda_core::{Backend, Ctm, Eda, Lda, SmoothingMode, SourceLda, Variant};
use srclda_knowledge::SmoothingConfig;
use srclda_synth::random_source_topics;

struct World {
    corpus: srclda_corpus::Corpus,
    knowledge: srclda_knowledge::KnowledgeSource,
}

fn world(b: usize) -> World {
    let (vocab, knowledge) = random_source_topics(800, b, 20, 200, 42);
    let active: Vec<usize> = (0..b.min(20)).collect();
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: 60,
        doc_len: DocLength::Fixed(50),
        lambda_mode: LambdaMode::None,
        seed: 7,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&active), &vocab)
    .expect("generation succeeds");
    World {
        corpus: generated.corpus,
        knowledge,
    }
}

const ITERS: usize = 5;

fn bench_models(c: &mut Criterion) {
    let w = world(40);
    let mut group = c.benchmark_group("models_5iter");
    group.sample_size(10);
    group.bench_function("lda", |bench| {
        let model = Lda::builder()
            .topics(40)
            .iterations(ITERS)
            .seed(1)
            .build()
            .unwrap();
        bench.iter(|| model.fit(&w.corpus).unwrap());
    });
    group.bench_function("source_lda_bijective", |bench| {
        let model = SourceLda::builder()
            .knowledge_source(w.knowledge.clone())
            .variant(Variant::Bijective)
            .iterations(ITERS)
            .seed(1)
            .build()
            .unwrap();
        bench.iter(|| model.fit(&w.corpus).unwrap());
    });
    group.bench_function("source_lda_full_a4", |bench| {
        let model = SourceLda::builder()
            .knowledge_source(w.knowledge.clone())
            .variant(Variant::Full)
            .approximation_steps(4)
            .smoothing(SmoothingMode::Shared(SmoothingConfig {
                grid_points: 6,
                samples_per_point: 10,
            }))
            .iterations(ITERS)
            .seed(1)
            .build()
            .unwrap();
        bench.iter(|| model.fit(&w.corpus).unwrap());
    });
    group.bench_function("eda", |bench| {
        let model = Eda::builder()
            .knowledge_source(w.knowledge.clone())
            .iterations(ITERS)
            .seed(1)
            .build()
            .unwrap();
        bench.iter(|| model.fit(&w.corpus).unwrap());
    });
    group.bench_function("ctm", |bench| {
        let model = Ctm::builder()
            .knowledge_source(w.knowledge.clone())
            .iterations(ITERS)
            .seed(1)
            .build()
            .unwrap();
        bench.iter(|| model.fit(&w.corpus).unwrap());
    });
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends_2iter");
    group.sample_size(10);
    // Never oversubscribe the spin-barrier samplers.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let p = cores.clamp(2, 3);
    for &b in &[128usize, 512] {
        let w = world(b);
        for (name, backend) in [
            ("serial", Backend::Serial),
            ("simple_p", Backend::SimpleParallel { threads: p }),
            ("prefix_p", Backend::PrefixSums { threads: p }),
        ] {
            group.bench_with_input(BenchmarkId::new(name, b), &b, |bench, _| {
                let model = SourceLda::builder()
                    .knowledge_source(w.knowledge.clone())
                    .variant(Variant::Bijective)
                    .iterations(2)
                    .backend(backend)
                    .seed(1)
                    .build()
                    .unwrap();
                bench.iter(|| model.fit(&w.corpus).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_backends);
criterion_main!(benches);
