//! Criterion benchmarks for the knowledge-source machinery: smoothing
//! function estimation (the per-topic cost of Algorithm 1's "Calculate gₜ")
//! and integrated-prior construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srclda_knowledge::{SmoothingConfig, SmoothingFunction, SourceTopic};
use srclda_math::{rng_from_seed, DiscretizedGaussian};

fn topic(support: usize, vocab: usize) -> SourceTopic {
    let mut counts = vec![0.0; vocab];
    for (i, c) in counts.iter_mut().take(support).enumerate() {
        *c = (500.0 / (i + 1) as f64).round().max(1.0);
    }
    SourceTopic::new("bench", counts)
}

fn bench_smoothing(c: &mut Criterion) {
    let mut group = c.benchmark_group("smoothing_estimate");
    group.sample_size(10);
    for &support in &[50usize, 200] {
        let t = topic(support, 10_000);
        let cfg = SmoothingConfig {
            grid_points: 10,
            samples_per_point: 30,
        };
        group.bench_with_input(BenchmarkId::from_parameter(support), &support, |b, _| {
            let mut rng = rng_from_seed(3);
            b.iter(|| SmoothingFunction::estimate(&t, 0.01, &cfg, &mut rng));
        });
    }
    group.finish();
}

fn bench_integration_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrated_prior_build");
    group.sample_size(20);
    let quad = DiscretizedGaussian::unit_interval(0.7, 0.3, 8).unwrap();
    for &(support, vocab) in &[(200usize, 2000usize), (200, 50_000)] {
        let t = topic(support, vocab);
        let g = SmoothingFunction::identity();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{vocab}")),
            &vocab,
            |b, _| {
                b.iter(|| srclda_core::prior::TopicPrior::integrated(&t, 0.01, &g, &quad));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_smoothing, bench_integration_table);
criterion_main!(benches);
