//! Criterion benchmarks for the numeric kernels the samplers lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srclda_math::prefix::{blelloch_inclusive_scan, blockwise_inclusive_scan, inclusive_scan};
use srclda_math::{rng_from_seed, sample_categorical, AliasTable, Dirichlet};

fn bench_dirichlet(c: &mut Criterion) {
    let mut group = c.benchmark_group("dirichlet_sample");
    for &dim in &[32usize, 512, 4096] {
        let d = Dirichlet::symmetric(0.5, dim).unwrap();
        let mut rng = rng_from_seed(1);
        let mut buf = vec![0.0; dim];
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| d.sample_into(&mut rng, &mut buf));
        });
    }
    group.finish();
}

fn bench_categorical(c: &mut Criterion) {
    let mut group = c.benchmark_group("categorical");
    let weights: Vec<f64> = (0..1024).map(|i| ((i * 37) % 97) as f64 + 0.5).collect();
    let mut rng = rng_from_seed(2);
    group.bench_function("linear_1024", |b| {
        b.iter(|| sample_categorical(&weights, &mut rng));
    });
    let table = AliasTable::new(&weights).unwrap();
    group.bench_function("alias_1024", |b| {
        b.iter(|| table.sample(&mut rng));
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_4096");
    let data: Vec<f64> = (0..4096).map(|i| (i % 13) as f64 * 0.5).collect();
    group.bench_function("sequential", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| inclusive_scan(&mut v),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("blelloch", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| blelloch_inclusive_scan(&mut v),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("blockwise_6", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| blockwise_inclusive_scan(&mut v, 6),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_dirichlet, bench_categorical, bench_scans);
criterion_main!(benches);
