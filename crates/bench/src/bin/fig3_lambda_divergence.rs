//! Regenerates Figure 3 (JS divergence vs raw λ).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig3_lambda_divergence",
        "Regenerates Figure 3 (JS divergence vs raw λ).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig34::run_fig3(scale));
}
