//! Training-sweep throughput benchmark: tokens/sec through the serial
//! Gibbs sampler, dense reference sweep vs. optimized kernel, per model
//! family × T × V — plus a high-T λ-integrated family (T ∈ {500, 2000})
//! that also times the sub-linear `Backend::SparseKernel` bucket kernel.
//! Writes `BENCH_sweep.json` into the working directory.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "sweep_throughput",
        "Training-sweep throughput (tokens/sec): dense reference sweep vs. \
         optimized kernel per model family, plus the sub-linear sparse \
         bucket kernel on the high-T family; emits BENCH_sweep.json.",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!(
        "{}",
        srclda_bench::experiments::sweep_throughput::run(scale)
    );
}
