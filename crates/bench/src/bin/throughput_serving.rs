//! Measures serving throughput (artifact load + online fold-in): docs/sec serial vs multi-worker vs warm cache.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(&args, "throughput_serving", "Measures serving throughput (artifact load + online fold-in): docs/sec serial vs multi-worker vs warm cache.", &[]);
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::throughput::run(scale));
}
