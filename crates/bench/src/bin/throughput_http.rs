//! HTTP serving throughput benchmark: boots the `srclda-served` daemon on
//! a loopback port and drives it with a self-contained load generator —
//! requests/sec and tokens/sec for serial vs pooled workers vs warm
//! cache. Writes `BENCH_serve.json` into the working directory.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "throughput_http",
        "Serving throughput over loopback HTTP (requests/sec, tokens/sec): \
         serial vs pooled workers vs warm cache through a real \
         srclda-served daemon; emits BENCH_serve.json.",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::throughput_http::run(scale));
}
