//! Regenerates Figure 7 (fixed λ vs integrated λ).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig7_lambda_integration",
        "Regenerates Figure 7 (fixed λ vs integrated λ).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig7::run(scale));
}
