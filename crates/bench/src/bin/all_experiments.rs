//! Runs every experiment in sequence, printing each report and writing a
//! copy under `results/` (one file per artifact). Accepts `--smoke` /
//! `--full` like the individual binaries.

use srclda_bench::experiments;
use srclda_bench::Scale;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "all_experiments",
        "Runs every experiment in sequence, printing each report and \
         writing a copy under results/.",
        &[],
    );
    let scale = Scale::from_args(&args);
    let out_dir = Path::new("results");
    let _ = fs::create_dir_all(out_dir);

    type Runner = fn(Scale) -> String;
    let runs: Vec<(&str, Runner)> = vec![
        ("table0_case_study", experiments::table0::run),
        ("fig2_source_variance", experiments::fig2::run),
        ("fig3_lambda_divergence", experiments::fig34::run_fig3),
        ("fig4_smoothed_lambda", experiments::fig34::run_fig4),
        ("fig6_graphical", experiments::fig6::run),
        ("fig7_lambda_integration", experiments::fig7::run),
        ("table1_reuters", experiments::table1::run),
        ("fig8_wikipedia", experiments::fig8::run),
        ("fig8f_scaling", experiments::fig8f::run),
        ("ablations", experiments::ablation::run),
        ("throughput_serving", experiments::throughput::run),
        ("throughput_http", experiments::throughput_http::run),
        ("sweep_throughput", experiments::sweep_throughput::run),
        ("train_throughput", experiments::train_throughput::run),
    ];
    for (name, f) in runs {
        let start = Instant::now();
        let report = f(scale);
        let elapsed = start.elapsed();
        println!("{report}");
        println!(">>> {name} finished in {elapsed:.2?}\n");
        let path = out_dir.join(format!("{name}.txt"));
        if let Err(e) = fs::write(&path, &report) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    println!(
        "All experiments complete; reports written to {}/",
        out_dir.display()
    );
}
