//! Document-sharded training: the throughput benchmark **and** the
//! checkpoint/resume driver.
//!
//! Without `--train`, runs the `train_throughput` experiment (tokens/sec,
//! serial kernel vs `Backend::ShardedDocs` at S ∈ {1, 2, 4}; emits
//! `BENCH_train.json`).
//!
//! With `--train`, runs a fully deterministic training job on the pinned
//! golden-fixture corpus (the §I case-study world) and exercises the
//! checkpoint lifecycle end to end:
//!
//! ```sh
//! # train, writing rotating resumable v2 .slda generations
//! # (ck.g000006.slda, ck.g000012.slda, …) every 6 sweeps, and simulate
//! # a kill right after the sweep-12 checkpoint:
//! train_throughput --train --sweeps 24 --shards 2 \
//!     --checkpoint-every 6 --checkpoint-path ck.slda --stop-after 12
//! # scan, checksum-validate, and resume from the newest good generation:
//! train_throughput --train --sweeps 24 --shards 2 \
//!     --checkpoint-every 6 --checkpoint-path ck.slda --resume auto
//! # the printed "final digest" is bit-identical to an uninterrupted run:
//! train_throughput --train --sweeps 24 --shards 2
//! # crash *during* the sweep-12 checkpoint write instead (exit 9); the
//! # torn file fails its checksum and --resume auto falls back to the
//! # sweep-6 generation:
//! train_throughput --train --sweeps 24 --shards 2 --checkpoint-every 6 \
//!     --checkpoint-path ck.slda --fault torn@12 --fault-seed 42
//! ```

use srclda_bench::cli::{flag_present, flag_value, handle_help};
use srclda_core::prelude::gibbs_perplexity_counted;
use srclda_core::{Backend, GibbsModel, KernelKind, SourceLda, TrainCheckpoint, Variant};
use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_obs::{JsonlSink, ProgressSink, TrainEvent, TrainObserver};
use srclda_serve::codec::fnv1a64;
use srclda_serve::server::json;
use srclda_serve::{CheckpointStore, FaultKind, FaultPlan, ModelArtifact};

const EXTRA_FLAGS: &[(&str, &str)] = &[
    (
        "--train",
        "run the deterministic training demo instead of the benchmark",
    ),
    (
        "--shards <S>",
        "document shard count for --train (default 2)",
    ),
    (
        "--kernel <K>",
        "shard sweep kernel for --train: flat, sparse, or dense (default flat)",
    ),
    ("--sweeps <N>", "Gibbs sweeps for --train (default 24)"),
    ("--seed <N>", "run seed for --train (default 7)"),
    (
        "--checkpoint-every <N>",
        "write a resumable .slda generation every N sweeps",
    ),
    (
        "--checkpoint-path <P>",
        "base path for checkpoint generations; sweep-N lands at \
         <stem>.g<N>.slda beside it (default train_checkpoint.slda)",
    ),
    ("--keep <K>", "checkpoint generations to retain (default 3)"),
    (
        "--resume <P|auto>",
        "resume from a checkpoint-bearing .slda file, or scan the \
         --checkpoint-path generations for the newest valid one",
    ),
    (
        "--stop-after <K>",
        "exit right after the sweep-K checkpoint (simulated kill)",
    ),
    (
        "--fault <kind>@<sweep>",
        "inject a fault into the sweep-<sweep> checkpoint write and exit 9; \
         kinds: torn, fail, enospc, crash",
    ),
    (
        "--fault-seed <N>",
        "seed deriving the injected fault's byte offset (default 42)",
    ),
    (
        "--telemetry <P>",
        "stream JSONL telemetry events to P during --train",
    ),
    (
        "--progress",
        "print per-sweep progress lines to stderr during --train",
    ),
    (
        "--validate-telemetry <P>",
        "validate a telemetry JSONL file against the event schema and exit",
    ),
];

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Fans events out to the requested sinks by mutable reference (unlike
/// `srclda_obs::Fanout`, which takes ownership), so the JSONL sink can
/// still be `finish()`ed for its deferred I/O error after the fit.
struct Tee<'a>(Vec<&'a mut dyn TrainObserver>);

impl TrainObserver for Tee<'_> {
    fn enabled(&self) -> bool {
        self.0.iter().any(|o| o.enabled())
    }

    fn on_event(&mut self, event: &TrainEvent) {
        for sink in &mut self.0 {
            sink.on_event(event);
        }
    }
}

fn parse_usize(args: &[String], flag: &str) -> Option<usize> {
    if !flag_present(args, flag) {
        return None;
    }
    match flag_value(args, flag) {
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(_) => die(&format!("{flag} needs a non-negative integer, got {v:?}")),
        },
        None => die(&format!("{flag} requires a value")),
    }
}

/// The pinned golden-fixture corpus (the §I case-study world of
/// `tests/artifact_compat.rs`, repeated so the shards have real work) and
/// its knowledge source.
fn golden_world() -> (Corpus, Tokenizer, srclda_knowledge::KnowledgeSource) {
    let tokenizer = Tokenizer::permissive();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for i in 0..24 {
        builder.add_tokens(
            format!("school-{i}"),
            &["pencil", "pencil", "ruler", "eraser"],
        );
        builder.add_tokens(
            format!("sports-{i}"),
            &["baseball", "umpire", "baseball", "glove"],
        );
        // "bag" appears in *both* articles with equal weight, so its
        // tokens stay genuinely stochastic: the final assignments depend
        // on the chain, not just the priors. Without this every run
        // converges to one prior-determined fixed point and the CI digest
        // comparison could not distinguish a broken resume that merely
        // re-converges.
        builder.add_tokens(
            format!("mixed-{i}"),
            &["pencil", "baseball", "bag", "bag", "bag", "glove"],
        );
    }
    let corpus = builder.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook bag pencil ruler pencil ".repeat(40),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire pitcher inning bag baseball umpire baseball glove ".repeat(40),
    );
    let knowledge = ks.build(corpus.vocabulary());
    (corpus, tokenizer, knowledge)
}

/// FNV-1a digest over the final assignments and φ bits: two runs print
/// the same digest iff they produced bit-identical models.
fn digest(assignments: &[Vec<u32>], phi: &[f64]) -> u64 {
    let mut bytes = Vec::new();
    for doc in assignments {
        for &t in doc {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
    }
    for &x in phi {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Parse a `--fault` spec like `torn@12` into the fault kind and the
/// checkpoint sweep it strikes at.
fn parse_fault_spec(spec: &str) -> (FaultKind, usize) {
    let Some((kind_str, sweep_str)) = spec.split_once('@') else {
        die(&format!("--fault wants <kind>@<sweep>, got {spec:?}"));
    };
    let kind = match kind_str {
        "torn" => FaultKind::TornWrite,
        "fail" => FaultKind::FailWrite,
        "enospc" => FaultKind::DiskFull,
        "crash" => FaultKind::CrashAfterRename,
        other => die(&format!(
            "unknown fault kind {other:?} (expected torn, fail, enospc, or crash)"
        )),
    };
    let sweep = sweep_str.parse().unwrap_or_else(|_| {
        die(&format!(
            "--fault sweep must be an integer, got {sweep_str:?}"
        ))
    });
    (kind, sweep)
}

fn train(args: &[String]) {
    let shards = parse_usize(args, "--shards").unwrap_or(2);
    let kernel = if flag_present(args, "--kernel") {
        match flag_value(args, "--kernel") {
            Some("flat") => KernelKind::Flat,
            Some("sparse") => KernelKind::Sparse,
            Some("dense") => KernelKind::Dense,
            Some(other) => die(&format!(
                "--kernel wants flat, sparse, or dense, got {other:?}"
            )),
            None => die("--kernel requires a value"),
        }
    } else {
        KernelKind::Flat
    };
    let sweeps = parse_usize(args, "--sweeps").unwrap_or(24);
    let seed = parse_usize(args, "--seed").unwrap_or(7) as u64;
    let checkpoint_every = parse_usize(args, "--checkpoint-every");
    let stop_after = parse_usize(args, "--stop-after");
    let keep = parse_usize(args, "--keep").unwrap_or(3);
    let fault_seed = parse_usize(args, "--fault-seed").unwrap_or(42) as u64;
    let checkpoint_path = flag_value(args, "--checkpoint-path")
        .unwrap_or("train_checkpoint.slda")
        .to_string();
    let resume_path = flag_value(args, "--resume").map(str::to_string);
    if flag_present(args, "--resume") && resume_path.is_none() {
        die("--resume requires a path or \"auto\"");
    }
    if flag_present(args, "--checkpoint-path") && flag_value(args, "--checkpoint-path").is_none() {
        die("--checkpoint-path requires a path");
    }
    let fault = flag_value(args, "--fault").map(parse_fault_spec);
    if flag_present(args, "--fault") && fault.is_none() {
        die("--fault requires a <kind>@<sweep> value");
    }
    if fault.is_some() && checkpoint_every.is_none() {
        die("--fault only makes sense with --checkpoint-every");
    }
    match (stop_after, checkpoint_every) {
        (Some(_), None) => die("--stop-after only makes sense with --checkpoint-every"),
        (Some(stop), Some(every)) => {
            // An unreachable stop sweep would silently never fire and the
            // "simulated kill" would degrade into a full run.
            if stop == 0 || !stop.is_multiple_of(every) || stop > sweeps {
                die(&format!(
                    "--stop-after {stop} is never a checkpoint boundary \
                     (checkpoints fire at multiples of {every} up to {sweeps})"
                ));
            }
        }
        (None, _) => {}
    }
    let store = CheckpointStore::new(&checkpoint_path, keep);

    let (corpus, tokenizer, knowledge) = golden_world();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model: GibbsModel = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(sweeps)
        .seed(seed)
        .backend(Backend::ShardedDocs {
            kernel,
            shards,
            threads,
        })
        .build()
        .and_then(|m| m.assemble(corpus.vocab_size()))
        .unwrap_or_else(|e| die(&e.to_string()));

    let resume: Option<TrainCheckpoint> = resume_path.and_then(|path| {
        if path == "auto" {
            // Scan the generation family for the newest valid snapshot,
            // skipping (and reporting) torn or bit-flipped files.
            let recovery = store
                .resume_auto()
                .unwrap_or_else(|e| die(&format!("scanning {checkpoint_path:?} generations: {e}")));
            println!(
                "resume auto: scanned {} generation(s), {} corrupt skipped, {} stale tmp cleaned",
                recovery.scanned, recovery.corrupt, recovery.cleaned_tmp
            );
            let Some(recovered) = recovery.recovered else {
                println!("resume auto: no valid generation found, starting fresh");
                return None;
            };
            let cp = recovered
                .artifact
                .checkpoint()
                .unwrap_or_else(|| {
                    die(&format!(
                        "{:?} carries no checkpoint section",
                        recovered.path
                    ))
                })
                .clone();
            println!(
                "resuming from {:?} at sweep {} (checkpoint digest {:016x})",
                recovered.path,
                cp.sweep,
                cp.digest()
            );
            return Some(cp);
        }
        let artifact =
            ModelArtifact::load(&path).unwrap_or_else(|e| die(&format!("loading {path:?}: {e}")));
        let cp = artifact
            .checkpoint()
            .unwrap_or_else(|| die(&format!("{path:?} carries no checkpoint section")))
            .clone();
        println!("resuming from {path:?} at sweep {}", cp.sweep);
        Some(cp)
    });

    let telemetry_path = flag_value(args, "--telemetry").map(str::to_string);
    if flag_present(args, "--telemetry") && telemetry_path.is_none() {
        die("--telemetry requires a path");
    }
    let mut jsonl = telemetry_path.as_ref().map(|path| {
        JsonlSink::create(path).unwrap_or_else(|e| die(&format!("creating {path:?}: {e}")))
    });
    let mut progress = flag_present(args, "--progress").then(ProgressSink::stderr);
    let mut sinks: Vec<&mut dyn TrainObserver> = Vec::new();
    if let Some(sink) = jsonl.as_mut() {
        sinks.push(sink);
    }
    if let Some(sink) = progress.as_mut() {
        sinks.push(sink);
    }
    // With no sinks the tee reports `enabled() == false` and the fit
    // takes the exact no-telemetry fast path; either way the chain is
    // bit-identical (observers are read-only value-snapshot consumers).
    let mut tee = Tee(sinks);

    let labels = model.labels().to_vec();
    let fitted = model
        .fit_observed(
            &corpus,
            resume.as_ref(),
            checkpoint_every,
            |cp| {
                let artifact = ModelArtifact::from_checkpoint(
                    cp,
                    labels.clone(),
                    corpus.vocabulary(),
                    &tokenizer,
                )
                .map_err(|e| {
                    srclda_core::CoreError::InvalidConfig(format!("checkpoint artifact: {e}"))
                })?;
                let plan = match fault {
                    Some((kind, at)) if at == cp.sweep as usize => {
                        FaultPlan::seeded(kind, fault_seed)
                    }
                    _ => FaultPlan::none(),
                };
                match store.save_generation_with_plan(cp.sweep, &artifact, &plan) {
                    Ok(path) => {
                        println!("checkpoint at sweep {} -> {}", cp.sweep, path.display());
                    }
                    Err(e) if plan.triggered() > 0 => {
                        // The injected fault fired: this process is "the
                        // trainer that died mid-checkpoint". Exit 9 so CI
                        // can tell a simulated crash from a real failure.
                        println!(
                            "simulated crash during checkpoint at sweep {}: {e}",
                            cp.sweep
                        );
                        std::process::exit(9);
                    }
                    Err(e) => {
                        return Err(srclda_core::CoreError::InvalidConfig(format!(
                            "writing generation {} of {checkpoint_path:?}: {e}",
                            cp.sweep
                        )));
                    }
                }
                if stop_after == Some(cp.sweep as usize) {
                    println!("stopping after sweep {} (simulated kill)", cp.sweep);
                    std::process::exit(0);
                }
                Ok(())
            },
            &mut tee,
        )
        .unwrap_or_else(|e| die(&e.to_string()));

    if tee.enabled() {
        // Telemetry runs close the loop with a held-out-style perplexity
        // pass over the training corpus, so the JSONL stream carries the
        // underflow-rescue tallies alongside the sweep records.
        let est = gibbs_perplexity_counted(&fitted, &corpus, 20, seed.wrapping_add(1))
            .unwrap_or_else(|e| die(&format!("perplexity evaluation: {e}")));
        tee.on_event(&TrainEvent::Perplexity {
            perplexity: est.perplexity,
            rescued_draws: est.rescued_draws,
            zero_mass_draws: est.zero_mass_draws,
        });
    }
    drop(tee);
    if let (Some(sink), Some(path)) = (jsonl, telemetry_path.as_ref()) {
        sink.finish()
            .unwrap_or_else(|e| die(&format!("writing {path:?}: {e}")));
        println!("telemetry -> {path}");
    }

    println!(
        "trained {} docs x {} sweeps, shards={shards}, kernel={kernel:?}, seed={seed}",
        corpus.num_docs(),
        sweeps
    );
    println!(
        "final digest: {:016x}",
        digest(fitted.assignments(), fitted.phi().as_slice())
    );
}

/// Field schemas per event kind: `(name, nullable)`; the `"event"`
/// discriminator itself is implicit. `shard_secs` is additionally
/// required to be an array of numbers.
const SWEEP_FIELDS: &[(&str, bool)] = &[
    ("sweep", false),
    ("duration_secs", false),
    ("tokens", false),
    ("tokens_per_sec", false),
    ("loglik", true),
    ("loglik_clamped_tokens", false),
];
const SPARSE_FIELDS: &[(&str, bool)] = &[
    ("sweep", false),
    ("q_hits", false),
    ("r_hits", false),
    ("s_hits", false),
    ("dense_fallbacks", false),
];
const SHARD_FIELDS: &[(&str, bool)] = &[
    ("sweep", false),
    ("merge_secs", false),
    ("shard_secs", false),
];
/// Bucket tallies a `shard_sweep` line carries iff the shard kernel is
/// sparse — all four present or all four absent, never a subset.
const SHARD_BUCKET_FIELDS: &[&str] = &["q_hits", "r_hits", "s_hits", "dense_fallbacks"];
const ADAPT_FIELDS: &[(&str, bool)] = &[
    ("sweep", false),
    ("duration_secs", false),
    ("threads", false),
];
const CHECKPOINT_FIELDS: &[(&str, bool)] =
    &[("sweep", false), ("bytes", false), ("duration_secs", false)];
const FIT_COMPLETE_FIELDS: &[(&str, bool)] = &[
    ("sweeps", false),
    ("duration_secs", false),
    ("tokens_per_sec", false),
    ("loglik_clamped_tokens", false),
];
const PERPLEXITY_FIELDS: &[(&str, bool)] = &[
    ("perplexity", false),
    ("rescued_draws", false),
    ("zero_mass_draws", false),
];

/// Strict schema validation for a telemetry JSONL file: every line must
/// parse (through the same vendored JSON codec the daemon serves with)
/// as an object whose `"event"` kind is known and whose fields exactly
/// match that kind's schema. Unknown kinds, missing fields, wrong types,
/// and *extra* fields all exit 2 — schema drift must fail CI loudly, not
/// scroll past it.
fn validate_telemetry(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path:?}: {e}")));
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).unwrap_or_else(|e| die(&format!("{path}:{lineno}: {e}")));
        let json::Value::Obj(members) = &value else {
            die(&format!("{path}:{lineno}: line is not a json object"));
        };
        let Some(kind) = value.get("event").and_then(|v| v.as_str()) else {
            die(&format!(
                "{path}:{lineno}: missing the \"event\" discriminator"
            ));
        };
        let (kind, fields, optional): (&'static str, &[(&str, bool)], &[&str]) = match kind {
            "sweep" => ("sweep", SWEEP_FIELDS, &[]),
            "sparse_buckets" => ("sparse_buckets", SPARSE_FIELDS, &[]),
            "shard_sweep" => ("shard_sweep", SHARD_FIELDS, SHARD_BUCKET_FIELDS),
            "adapt" => ("adapt", ADAPT_FIELDS, &[]),
            "checkpoint" => ("checkpoint", CHECKPOINT_FIELDS, &[]),
            "fit_complete" => ("fit_complete", FIT_COMPLETE_FIELDS, &[]),
            "perplexity" => ("perplexity", PERPLEXITY_FIELDS, &[]),
            other => die(&format!("{path}:{lineno}: unknown event kind {other:?}")),
        };
        for (field, nullable) in fields {
            let Some(v) = value.get(field) else {
                die(&format!(
                    "{path}:{lineno}: {kind} event is missing {field:?}"
                ));
            };
            let ok = match v {
                json::Value::Null => *nullable,
                json::Value::Num(_) => *field != "shard_secs",
                json::Value::Arr(items) => {
                    *field == "shard_secs" && items.iter().all(|x| matches!(x, json::Value::Num(_)))
                }
                _ => false,
            };
            if !ok {
                die(&format!(
                    "{path}:{lineno}: {kind} field {field:?} has the wrong type"
                ));
            }
        }
        let present_optional = optional.iter().filter(|f| value.get(f).is_some()).count();
        if present_optional != 0 && present_optional != optional.len() {
            die(&format!(
                "{path}:{lineno}: {kind} event carries {present_optional} of \
                 {} bucket fields (all or none)",
                optional.len()
            ));
        }
        for field in optional {
            if let Some(v) = value.get(field) {
                if !matches!(v, json::Value::Num(_)) {
                    die(&format!(
                        "{path}:{lineno}: {kind} field {field:?} has the wrong type"
                    ));
                }
            }
        }
        if let Some((name, _)) = members.iter().find(|(name, _)| {
            name != "event"
                && !fields.iter().any(|(f, _)| f == name)
                && !optional.iter().any(|f| f == name)
        }) {
            die(&format!(
                "{path}:{lineno}: {kind} event has unknown field {name:?}"
            ));
        }
        match counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((kind, 1)),
        }
    }
    let total: usize = counts.iter().map(|(_, n)| n).sum();
    if total == 0 {
        die(&format!("{path}: no telemetry events"));
    }
    let by_kind: Vec<String> = counts.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "validated {total} telemetry events in {path} ({})",
        by_kind.join(", ")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    handle_help(
        &args,
        "train_throughput",
        "Document-sharded training throughput (serial kernel vs ShardedDocs; \
         emits BENCH_train.json), plus a deterministic --train mode \
         exercising checkpoint/resume on the golden fixture corpus.",
        EXTRA_FLAGS,
    );
    // Strict flag hygiene: unknown options exit 2 rather than silently
    // benchmarking with a typo'd configuration.
    let known_value_flags = [
        "--scale",
        "--shards",
        "--kernel",
        "--sweeps",
        "--seed",
        "--checkpoint-every",
        "--checkpoint-path",
        "--keep",
        "--resume",
        "--stop-after",
        "--fault",
        "--fault-seed",
        "--telemetry",
        "--validate-telemetry",
    ];
    let known_bare = ["--train", "--smoke", "--full", "--progress"];
    let mut skip_next = false;
    for (i, arg) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        let name = arg.split('=').next().unwrap_or(arg);
        if known_bare.contains(&name) {
            continue;
        }
        if known_value_flags.contains(&name) {
            // `--flag value` form consumes the next argument.
            if !arg.contains('=') && i + 1 < args.len() {
                skip_next = true;
            }
            continue;
        }
        die(&format!("unknown argument {arg:?} (see --help)"));
    }

    if flag_present(&args, "--validate-telemetry") {
        let Some(path) = flag_value(&args, "--validate-telemetry") else {
            die("--validate-telemetry requires a file path");
        };
        validate_telemetry(path);
        return;
    }
    if flag_present(&args, "--train") {
        train(&args);
        return;
    }
    let scale = srclda_bench::Scale::from_args(&args);
    print!(
        "{}",
        srclda_bench::experiments::train_throughput::run(scale)
    );
}
