//! Regenerates the §I case-study labeling table.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::table0::run(scale));
}
