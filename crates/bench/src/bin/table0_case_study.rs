//! Regenerates the §I case-study labeling table.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "table0_case_study",
        "Regenerates the §I case-study labeling table.",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::table0::run(scale));
}
