//! Regenerates Figure 4 (JS divergence vs g(λ)).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig4_smoothed_lambda",
        "Regenerates Figure 4 (JS divergence vs g(λ)).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig34::run_fig4(scale));
}
