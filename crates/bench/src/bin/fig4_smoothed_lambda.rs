//! Regenerates Figure 4 (JS divergence vs g(λ)).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig34::run_fig4(scale));
}
