//! Regenerates Table I (Reuters newswire top-word lists).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "table1_reuters",
        "Regenerates Table I (Reuters newswire top-word lists).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::table1::run(scale));
}
