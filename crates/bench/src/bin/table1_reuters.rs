//! Regenerates Table I (Reuters newswire top-word lists).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::table1::run(scale));
}
