//! Regenerates Figure 2 (source-hyperparameter Dirichlet variability).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig2_source_variance",
        "Regenerates Figure 2 (source-hyperparameter Dirichlet variability).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig2::run(scale));
}
