//! Regenerates Figure 8 (a–e). `--part assignments|pmi|all` selects parts.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig8_wikipedia",
        "Regenerates Figure 8 (a–e): the Wikipedia-corpus evaluation.",
        &[("--part <p>", "assignments | pmi | all (default: all)")],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    let part = if srclda_bench::cli::flag_present(&args, "--part") {
        match srclda_bench::cli::flag_value(&args, "--part") {
            Some(p) => p,
            None => {
                eprintln!("error: --part requires a value (assignments, pmi, or all)");
                std::process::exit(2);
            }
        }
    } else {
        "all"
    };
    match part {
        "assignments" | "theta" => {
            print!(
                "{}",
                srclda_bench::experiments::fig8::run_assignments(scale)
            );
        }
        "pmi" => print!("{}", srclda_bench::experiments::fig8::run_pmi(scale)),
        "all" => print!("{}", srclda_bench::experiments::fig8::run(scale)),
        other => {
            eprintln!("error: unknown --part value {other:?} (expected assignments, pmi, or all)");
            std::process::exit(2);
        }
    }
}
