//! Regenerates Figure 8 (a–e). `--part assignments|pmi|all` selects parts.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    let part = srclda_bench::cli::flag_value(&args, "--part").unwrap_or("all");
    match part {
        "assignments" | "theta" => {
            print!("{}", srclda_bench::experiments::fig8::run_assignments(scale));
        }
        "pmi" => print!("{}", srclda_bench::experiments::fig8::run_pmi(scale)),
        _ => print!("{}", srclda_bench::experiments::fig8::run(scale)),
    }
}
