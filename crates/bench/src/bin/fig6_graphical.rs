//! Regenerates Figures 5-6 (the 5×5 graphical experiment).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig6_graphical",
        "Regenerates Figures 5-6 (the 5×5 graphical experiment).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig6::run(scale));
}
