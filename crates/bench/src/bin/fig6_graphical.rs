//! Regenerates Figures 5-6 (the 5×5 graphical experiment).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig6::run(scale));
}
