//! Regenerates the design-choice ablations (quadrature steps A, smoothing mode, ε sensitivity).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(&args, "ablations", "Regenerates the design-choice ablations (quadrature steps A, smoothing mode, ε sensitivity).", &[]);
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::ablation::run(scale));
}
