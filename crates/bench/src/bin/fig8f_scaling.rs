//! Regenerates Figure 8f (parallel sampler scaling).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    srclda_bench::cli::handle_help(
        &args,
        "fig8f_scaling",
        "Regenerates Figure 8f (parallel sampler scaling).",
        &[],
    );
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig8f::run(scale));
}
