//! Regenerates Figure 8f (parallel sampler scaling).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = srclda_bench::Scale::from_args(&args);
    print!("{}", srclda_bench::experiments::fig8f::run(scale));
}
