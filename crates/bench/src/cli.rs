//! Minimal command-line handling shared by the experiment binaries.

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-scale smoke run (CI / integration tests).
    Smoke,
    /// Laptop-scale default preserving the paper's setup shapes.
    #[default]
    Default,
    /// The paper's exact experiment sizes (can take a long time).
    Full,
}

impl Scale {
    /// Parse from raw process arguments: `--smoke` / `--full` shorthands or
    /// `--scale smoke|default|full`.
    ///
    /// An unrecognized `--scale` value aborts the process: silently falling
    /// back to `Default` would turn an intended seconds-scale smoke run
    /// into a potentially hours-long one.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Self {
        if flag_present(args, "--scale") {
            return match flag_value(args, "--scale") {
                Some("smoke") => Scale::Smoke,
                Some("default") => Scale::Default,
                Some("full") => Scale::Full,
                Some(other) => {
                    eprintln!(
                        "error: unknown --scale value {other:?} (expected smoke, default, or full)"
                    );
                    std::process::exit(2);
                }
                None => {
                    eprintln!("error: --scale requires a value (smoke, default, or full)");
                    std::process::exit(2);
                }
            };
        }
        if args.iter().any(|a| a.as_ref() == "--smoke") {
            Scale::Smoke
        } else if args.iter().any(|a| a.as_ref() == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, smoke: T, default: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Whether `--flag` appears at all (either `--flag value` or `--flag=value`).
/// Lets callers distinguish "flag absent" from "flag present but malformed".
pub fn flag_present<S: AsRef<str>>(args: &[S], flag: &str) -> bool {
    args.iter().any(|a| {
        let a = a.as_ref();
        a == flag || (a.starts_with(flag) && a.as_bytes().get(flag.len()) == Some(&b'='))
    })
}

/// Value of `--flag value` or `--flag=value` style options, if present.
pub fn flag_value<'a, S: AsRef<str>>(args: &'a [S], flag: &str) -> Option<&'a str> {
    for (i, arg) in args.iter().enumerate() {
        let a = arg.as_ref();
        if a == flag {
            return args.get(i + 1).map(|s| s.as_ref());
        }
        if a.starts_with(flag) && a.as_bytes().get(flag.len()) == Some(&b'=') {
            return Some(&a[flag.len() + 1..]);
        }
    }
    None
}

/// A standard experiment banner.
pub fn banner(id: &str, title: &str, scale: Scale) -> String {
    format!("=== {id}: {title} [scale: {scale:?}] ===\n",)
}

/// Render the standard usage text for an experiment binary: the shared
/// scale options plus any binary-specific `(flag, description)` extras.
pub fn usage(bin: &str, title: &str, extra: &[(&str, &str)]) -> String {
    let mut out = format!(
        "{title}\n\nusage: {bin} [options]\n\noptions:\n  \
         --scale <s>   smoke | default | full (default: default)\n  \
         --smoke       shorthand for --scale smoke\n  \
         --full        shorthand for --scale full\n"
    );
    for (flag, desc) in extra {
        out.push_str(&format!("  {flag:<13} {desc}\n"));
    }
    out.push_str("  --help, -h    print this message and exit\n");
    out
}

/// True iff `--help` or `-h` appears anywhere in the arguments.
pub fn help_requested<S: AsRef<str>>(args: &[S]) -> bool {
    args.iter()
        .any(|a| a.as_ref() == "--help" || a.as_ref() == "-h")
}

/// Standard help handling for experiment binaries: if `--help`/`-h` was
/// passed, print the usage text and exit 0 (before any scale parsing, so
/// `--help` never triggers the strict unknown-value abort).
pub fn handle_help<S: AsRef<str>>(args: &[S], bin: &str, title: &str, extra: &[(&str, &str)]) {
    if help_requested(args) {
        print!("{}", usage(bin, title, extra));
        std::process::exit(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(Scale::from_args(&["--smoke"]), Scale::Smoke);
        assert_eq!(Scale::from_args(&["--full"]), Scale::Full);
        assert_eq!(Scale::from_args(&["whatever"]), Scale::Default);
        assert_eq!(Scale::from_args::<&str>(&[]), Scale::Default);
    }

    #[test]
    fn parses_scale_flag_form() {
        assert_eq!(Scale::from_args(&["--scale", "smoke"]), Scale::Smoke);
        assert_eq!(Scale::from_args(&["--scale", "default"]), Scale::Default);
        assert_eq!(Scale::from_args(&["--scale", "full"]), Scale::Full);
        assert_eq!(Scale::from_args(&["--scale=smoke"]), Scale::Smoke);
        assert_eq!(Scale::from_args(&["--scale=full"]), Scale::Full);
        // The value form wins over a stray shorthand elsewhere in argv.
        assert_eq!(
            Scale::from_args(&["--full", "--scale", "smoke"]),
            Scale::Smoke
        );
    }

    #[test]
    fn flag_present_detects_both_forms() {
        assert!(flag_present(&["--scale", "smoke"], "--scale"));
        assert!(flag_present(&["--scale=smoke"], "--scale"));
        assert!(flag_present(&["--scale"], "--scale"));
        assert!(!flag_present(&["--scales", "smoke"], "--scale"));
        assert!(!flag_present::<&str>(&[], "--scale"));
    }

    #[test]
    fn flag_value_equals_form() {
        assert_eq!(flag_value(&["--part=pmi"], "--part"), Some("pmi"));
        assert_eq!(flag_value(&["--part="], "--part"), Some(""));
        assert_eq!(flag_value(&["--part"], "--part"), None);
        assert_eq!(flag_value(&["--partial=pmi"], "--part"), None);
    }

    #[test]
    fn pick_follows_scale() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn flag_values() {
        let args = ["--part", "pmi", "--smoke"];
        assert_eq!(flag_value(&args, "--part"), Some("pmi"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(flag_value(&args, "--smoke"), None);
    }

    #[test]
    fn banner_contains_id() {
        assert!(banner("F2", "title", Scale::Default).contains("F2"));
    }

    #[test]
    fn help_requested_matches_both_spellings() {
        assert!(help_requested(&["--help"]));
        assert!(help_requested(&["-h"]));
        assert!(help_requested(&["--smoke", "-h"]));
        assert!(!help_requested(&["--scale", "smoke"]));
        assert!(!help_requested::<&str>(&[]));
        // No prefix matching: `-hh` and `--helpme` are not help requests.
        assert!(!help_requested(&["-hh", "--helpme"]));
    }

    #[test]
    fn usage_lists_shared_and_extra_flags() {
        let u = usage(
            "fig8_wikipedia",
            "Figure 8",
            &[("--part <p>", "assignments | pmi | all")],
        );
        assert!(u.contains("usage: fig8_wikipedia"));
        assert!(u.contains("--scale"));
        assert!(u.contains("--smoke"));
        assert!(u.contains("--full"));
        assert!(u.contains("--part <p>"));
        assert!(u.contains("assignments | pmi | all"));
        assert!(u.contains("--help"));
        let plain = usage("table0_case_study", "Table 0", &[]);
        assert!(!plain.contains("--part"));
    }
}
