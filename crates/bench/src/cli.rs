//! Minimal command-line handling shared by the experiment binaries.

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-scale smoke run (CI / integration tests).
    Smoke,
    /// Laptop-scale default preserving the paper's setup shapes.
    #[default]
    Default,
    /// The paper's exact experiment sizes (can take a long time).
    Full,
}

impl Scale {
    /// Parse from raw process arguments (`--smoke` / `--full`).
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> Self {
        if args.iter().any(|a| a.as_ref() == "--smoke") {
            Scale::Smoke
        } else if args.iter().any(|a| a.as_ref() == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Pick one of three values by scale.
    pub fn pick<T: Copy>(self, smoke: T, default: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Value of `--flag value` style options, if present.
pub fn flag_value<'a, S: AsRef<str>>(args: &'a [S], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a.as_ref() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_ref())
}

/// A standard experiment banner.
pub fn banner(id: &str, title: &str, scale: Scale) -> String {
    format!(
        "=== {id}: {title} [scale: {scale:?}] ===\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scales() {
        assert_eq!(Scale::from_args(&["--smoke"]), Scale::Smoke);
        assert_eq!(Scale::from_args(&["--full"]), Scale::Full);
        assert_eq!(Scale::from_args(&["whatever"]), Scale::Default);
        assert_eq!(Scale::from_args::<&str>(&[]), Scale::Default);
    }

    #[test]
    fn pick_follows_scale() {
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn flag_values() {
        let args = ["--part", "pmi", "--smoke"];
        assert_eq!(flag_value(&args, "--part"), Some("pmi"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(flag_value(&args, "--smoke"), None);
    }

    #[test]
    fn banner_contains_id() {
        assert!(banner("F2", "title", Scale::Default).contains("F2"));
    }
}
