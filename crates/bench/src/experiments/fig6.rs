//! Figures 5–6: the graphical 5×5 experiment (§IV.A).
//!
//! Ten pixel-grid topics (rows/columns) are augmented by swapping one pixel
//! between paired topics, a 2,000-document corpus is generated from the
//! *augmented* topics, and Source-LDA — given only the *original* topics as
//! its knowledge source — must rediscover the augmented versions. Four runs
//! trace the log-likelihood; topic images are snapshotted along the way.
//! The comparison reports the average JS divergence between recovered and
//! true (augmented) topics for Source-LDA, EDA, and CTM (paper: 0.012 /
//! 0.138 / 0.43).

use crate::cli::{banner, Scale};
use srclda_core::generative::{DocLength, LdaGenerator};
use srclda_core::{Ctm, Eda, SourceLda, TraceConfig, Variant};
use srclda_eval::Series;
use srclda_knowledge::KnowledgeSource;
use srclda_math::js_divergence;
use srclda_math::rng_from_seed;
use srclda_synth::grid::{augment_topics, grid_topics, render_topics_row};

struct World {
    corpus: srclda_corpus::Corpus,
    truth_phi: srclda_math::DenseMatrix<f64>,
    knowledge: KnowledgeSource,
}

fn build_world(scale: Scale) -> World {
    let world = grid_topics();
    let mut rng = rng_from_seed(56);
    let augmented = augment_topics(&world.topics, &mut rng);
    let labels: Vec<Option<String>> = augmented.iter().map(|(l, _)| Some(l.clone())).collect();
    let dists: Vec<Vec<f64>> = augmented.iter().map(|(_, d)| d.clone()).collect();
    let generated = LdaGenerator {
        alpha: 1.0,
        num_docs: scale.pick(300, 2000, 2000),
        doc_len: DocLength::Fixed(25),
        seed: 65,
    }
    .generate(&dists, &labels, &world.vocab)
    .expect("generation succeeds");
    // Knowledge source: the ORIGINAL (non-augmented) topics, as pseudo-count
    // articles. The pseudo-count plays the role of the article length: real
    // Wikipedia articles supply hundreds of occurrences per topical word,
    // and the corpus is large (50k tokens), so the prior must be article-
    // strength for the source topics to stay anchored while the data pulls
    // in the swapped pixel.
    let knowledge = KnowledgeSource::from_distributions(world.topics.clone(), 250.0);
    World {
        corpus: generated.corpus,
        truth_phi: generated.truth.phi,
        knowledge,
    }
}

/// Mean JS divergence between each truth topic and its same-label fitted
/// topic.
fn mean_topic_js(
    fitted: &srclda_core::FittedModel,
    truth_phi: &srclda_math::DenseMatrix<f64>,
    knowledge: &KnowledgeSource,
) -> f64 {
    // Fitted topic order matches the knowledge source order for all three
    // models here (no unlabeled topics), which matches the truth order.
    let mut acc = 0.0;
    for t in 0..knowledge.len() {
        acc += js_divergence(fitted.phi_row(t), truth_phi.row(t)).unwrap_or(f64::NAN);
    }
    acc / knowledge.len() as f64
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner("F5/F6", "5×5 graphical experiment (§IV.A)", scale);
    let world = build_world(scale);
    let iterations = scale.pick(120, 500, 500);
    let snapshots: Vec<usize> = [1usize, 20, 50, 100, 150, 200, 300, 500]
        .into_iter()
        .filter(|&i| i <= iterations)
        .collect();
    let runs = scale.pick(2, 4, 4);

    // Log-likelihood traces for several seeds (Fig. 6 top).
    let mut series = Series::new("iteration", (1..=iterations).map(|i| i as f64).collect());
    let mut last_fit = None;
    for run_idx in 0..runs {
        // Raw-λ integration: the augmented topics differ from the source by
        // one pixel, i.e. they sit at high λ; integrating over raw λ keeps
        // the quadrature levels anchored enough to hold each topic slot on
        // its label while the data pulls in the swapped pixel. (The
        // g-linearized prior spends most of its mass on near-flat levels
        // and lets topic slots permute at this corpus size.)
        let model = SourceLda::builder()
            .knowledge_source(world.knowledge.clone())
            .variant(Variant::Full)
            .approximation_steps(scale.pick(4, 6, 8))
            .lambda_prior(0.7, 0.3)
            .smoothing(srclda_core::SmoothingMode::Identity)
            .alpha(1.0)
            .iterations(iterations)
            .seed(100 + run_idx as u64)
            .trace(TraceConfig {
                log_likelihood_every: Some(1),
                phi_snapshots: if run_idx == 0 {
                    snapshots.clone()
                } else {
                    vec![]
                },
            })
            .build()
            .expect("valid model");
        let fitted = model.fit(&world.corpus).expect("fit succeeds");
        series.push_column(
            format!("run-{run_idx}"),
            fitted.loglik_trace().iter().map(|&(_, l)| l).collect(),
        );
        if run_idx == 0 {
            // Topic images at the snapshot iterations (Fig. 6 bottom).
            out.push_str("topic images for run 0 (first 5 topics):\n");
            for (iter, phi) in fitted.snapshots() {
                out.push_str(&format!("-- iteration {iter} --\n"));
                let rows: Vec<&[f64]> = (0..5).map(|t| phi.row(t)).collect();
                out.push_str(&render_topics_row(&rows));
            }
        }
        last_fit = Some(fitted);
    }
    out.push_str("\nlog-likelihood traces (TSV):\n");
    out.push_str(&series.render());

    // Model comparison (SRC vs EDA vs CTM) on recovered topic quality.
    let src_js = mean_topic_js(
        last_fit.as_ref().expect("at least one run"),
        &world.truth_phi,
        &world.knowledge,
    );
    let eda = Eda::builder()
        .knowledge_source(world.knowledge.clone())
        .alpha(1.0)
        .iterations(scale.pick(40, 100, 200))
        .seed(7)
        .build()
        .expect("valid model")
        .fit(&world.corpus)
        .expect("fit succeeds");
    let eda_js = mean_topic_js(&eda, &world.truth_phi, &world.knowledge);
    let ctm = Ctm::builder()
        .knowledge_source(world.knowledge.clone())
        .alpha(1.0)
        .beta(0.1)
        .iterations(scale.pick(60, 200, 300))
        .seed(7)
        .build()
        .expect("valid model")
        .fit(&world.corpus)
        .expect("fit succeeds");
    let ctm_js = mean_topic_js(&ctm, &world.truth_phi, &world.knowledge);
    out.push_str(&format!(
        "\naverage JS divergence to the augmented truth (paper: SRC 0.012, EDA 0.138, CTM 0.43):\n  Source-LDA  {src_js:.4}\n  EDA         {eda_js:.4}\n  CTM         {ctm_js:.4}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_eval::TopicMapping;

    #[test]
    fn source_lda_recovers_augmented_topics_best() {
        let scale = Scale::Smoke;
        let world = build_world(scale);
        let src = SourceLda::builder()
            .knowledge_source(world.knowledge.clone())
            .variant(Variant::Full)
            .approximation_steps(4)
            .lambda_prior(0.7, 0.3)
            .smoothing(srclda_core::SmoothingMode::Identity)
            .alpha(1.0)
            .iterations(150)
            .seed(1)
            .build()
            .unwrap()
            .fit(&world.corpus)
            .unwrap();
        let eda = Eda::builder()
            .knowledge_source(world.knowledge.clone())
            .alpha(1.0)
            .iterations(40)
            .seed(1)
            .build()
            .unwrap()
            .fit(&world.corpus)
            .unwrap();
        let src_js = mean_topic_js(&src, &world.truth_phi, &world.knowledge);
        let eda_js = mean_topic_js(&eda, &world.truth_phi, &world.knowledge);
        // EDA is pinned to the originals, so it cannot track the augmented
        // truth; Source-LDA can (paper: 0.012 vs 0.138).
        assert!(
            src_js < eda_js,
            "Source-LDA {src_js:.4} should beat EDA {eda_js:.4}"
        );
        assert!(
            src_js < 0.1,
            "Source-LDA should track the truth: {src_js:.4}"
        );
    }

    #[test]
    fn mapping_is_label_consistent() {
        // Sanity on the implicit identity mapping used by mean_topic_js.
        let world = build_world(Scale::Smoke);
        let labels: Vec<Option<String>> = world
            .knowledge
            .labels()
            .iter()
            .map(|&l| Some(l.to_string()))
            .collect();
        let m = TopicMapping::by_label(&labels, &labels);
        for t in 0..labels.len() {
            assert_eq!(m.truth_of(t), Some(t));
        }
    }
}
