//! Figure 8 (a–e): the Wikipedia-corpus evaluation (§IV.D).
//!
//! A corpus is generated from `K` topics chosen out of a `B`-topic
//! knowledge base (MedlinePlus-style labels, synthetic articles). Models
//! are compared in two rounds:
//!
//! * **Unk (mixed)** — models receive the full `B`-topic superset;
//! * **Exact (bijective)** — models receive exactly the `K` used topics.
//!
//! Metrics: correct token assignments (a/b), summed θ JS divergence (d/e),
//! and PMI topic coherence over a `K` sweep (c).

use crate::cli::{banner, Scale};
use rand::seq::SliceRandom;
use srclda_core::generative::{DocLength, GeneratedCorpus, LambdaMode, SourceLdaGenerator};
use srclda_core::{Ctm, Eda, Lda, SmoothingMode, SourceLda, Variant};
use srclda_eval::report::bar_chart;
use srclda_eval::{mean_topic_pmi, theta_js_total, token_accuracy, Series, TopicMapping};
use srclda_knowledge::{KnowledgeSource, SmoothingConfig};
use srclda_math::rng_from_seed;
use srclda_synth::{medline_topic_names, SyntheticWikipedia, WikipediaConfig};

struct Setup {
    generated: GeneratedCorpus,
    superset: KnowledgeSource,
    exact: KnowledgeSource,
}

/// Build the §IV.D world: `b` candidate topics, corpus generated from a
/// random `k`-subset.
fn build(scale: Scale, b: usize, k: usize, seed: u64) -> Setup {
    let names = medline_topic_names();
    let labels: Vec<&str> = names.iter().take(b).map(String::as_str).collect();
    let wiki = SyntheticWikipedia::generate(
        &labels,
        &WikipediaConfig {
            core_words_per_topic: scale.pick(12, 30, 60),
            shared_vocab: scale.pick(80, 250, 400),
            article_len: scale.pick(250, 700, 1200),
            seed,
            ..WikipediaConfig::default()
        },
    );
    let mut indices: Vec<usize> = (0..b).collect();
    let mut rng = rng_from_seed(seed ^ 0x8d);
    indices.shuffle(&mut rng);
    let mut active = indices[..k].to_vec();
    active.sort_unstable();
    let exact = wiki.knowledge.select(&active);
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        // §IV.D: µ = 5.0, σ = 2.0 for generation (bounded to [0,1], so λ
        // concentrates near 1: topics track their articles closely).
        mu: 5.0,
        sigma: 2.0,
        lambda_mode: LambdaMode::Raw,
        num_docs: scale.pick(60, 300, 2000),
        doc_len: DocLength::Fixed(scale.pick(40, 100, 500)),
        seed: seed ^ 0x77,
        ..SourceLdaGenerator::default()
    }
    .generate(&exact, &wiki.vocab)
    .expect("generation succeeds");
    Setup {
        generated,
        superset: wiki.knowledge,
        exact,
    }
}

struct Outcome {
    name: &'static str,
    correct: usize,
    theta_js: f64,
}

fn score(
    name: &'static str,
    fitted: &srclda_core::FittedModel,
    setup: &Setup,
    by_phi: bool,
) -> Outcome {
    let mapping = if by_phi {
        // Generated φ/θ are finite by construction, so the NaN-input
        // errors cannot fire here; surface them loudly if that ever
        // changes rather than scoring garbage.
        TopicMapping::by_phi_js(fitted.phi(), &setup.generated.truth.phi)
            .expect("generated phi matrices are finite")
    } else {
        TopicMapping::by_label(fitted.labels(), &setup.generated.truth.labels)
    };
    let acc = token_accuracy(
        &setup.generated.truth.assignments,
        fitted.assignments(),
        &mapping,
    );
    let js = theta_js_total(fitted.theta(), &setup.generated.truth.theta, &mapping)
        .expect("generated theta matrices are finite");
    Outcome {
        name,
        correct: acc.correct,
        theta_js: js,
    }
}

fn smoothing(scale: Scale) -> SmoothingMode {
    match scale {
        // At reduced data density (30k tokens instead of the paper's 1M)
        // the g-linearized prior is too flat to anchor topic identities;
        // integrating over raw λ keeps the prior strength in the same
        // prior-to-data regime as the paper's setup.
        Scale::Smoke | Scale::Default => SmoothingMode::Identity,
        Scale::Full => SmoothingMode::Shared(SmoothingConfig {
            grid_points: 8,
            samples_per_point: 60,
        }),
    }
}

/// One evaluation round (Unk or Exact).
fn round(
    setup: &Setup,
    knowledge: &KnowledgeSource,
    tag: &str,
    scale: Scale,
) -> (String, Vec<Outcome>) {
    let iterations = scale.pick(50, 150, 1000);
    let t_total = knowledge.len();
    let alpha = 50.0 / t_total as f64;
    let corpus = &setup.generated.corpus;
    let beta = 200.0 / corpus.vocab_size() as f64;

    let src = SourceLda::builder()
        .knowledge_source(knowledge.clone())
        .variant(Variant::Full)
        .lambda_prior(0.7, 0.3)
        .approximation_steps(scale.pick(4, 6, 8))
        .smoothing(smoothing(scale))
        .adaptive_lambda(10)
        .alpha(alpha)
        .beta(beta)
        .iterations(iterations)
        .seed(8)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");
    let eda = Eda::builder()
        .knowledge_source(knowledge.clone())
        .alpha(alpha)
        .iterations(scale.pick(30, 80, 300))
        .seed(8)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");
    let ctm = Ctm::builder()
        .knowledge_source(knowledge.clone())
        .alpha(alpha)
        .beta(beta)
        .iterations(iterations)
        .seed(8)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");
    let lda = Lda::builder()
        .topics(setup.exact.len())
        .alpha(50.0 / setup.exact.len() as f64)
        .beta(beta)
        .iterations(iterations)
        .seed(8)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");

    let outcomes = vec![
        score("SRC", &src, setup, false),
        score("EDA", &eda, setup, false),
        score("CTM", &ctm, setup, false),
        score("LDA", &lda, setup, true),
    ];
    let mut text = String::new();
    text.push_str(&format!("\ncorrect token assignments ({tag}):\n"));
    let acc_entries: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| (format!("{}-{tag}", o.name), o.correct as f64))
        .collect();
    text.push_str(&bar_chart(&acc_entries, 40));
    text.push_str(&format!(
        "\nsummed θ JS divergence ({tag}, lower is better):\n"
    ));
    let js_entries: Vec<(String, f64)> = outcomes
        .iter()
        .map(|o| (format!("{}-{tag}", o.name), o.theta_js))
        .collect();
    text.push_str(&bar_chart(&js_entries, 40));
    (text, outcomes)
}

/// Figure 8 a/b/d/e: the two accuracy/θ rounds.
pub fn run_assignments(scale: Scale) -> String {
    let mut out = banner(
        "F8abde",
        "Wikipedia-corpus accuracy & θ divergence (Fig. 8 a/b/d/e)",
        scale,
    );
    let b = scale.pick(30, 120, 578);
    let k = scale.pick(10, 40, 100);
    let setup = build(scale, b, k, 81);
    out.push_str(&format!(
        "B = {b} candidate topics, K = {k} active, D = {} docs, {} tokens\n",
        setup.generated.corpus.num_docs(),
        setup.generated.corpus.num_tokens()
    ));
    let (unk_text, unk) = round(&setup, &setup.superset, "Unk", scale);
    out.push_str(&unk_text);
    let (exact_text, exact) = round(&setup, &setup.exact, "Exact", scale);
    out.push_str(&exact_text);
    let src_unk = unk.iter().find(|o| o.name == "SRC").expect("SRC present");
    let best_other_unk = unk
        .iter()
        .filter(|o| o.name != "SRC")
        .map(|o| o.correct)
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "\nSRC-Unk correct = {} vs best baseline {} (paper: SRC highest in both rounds)\n",
        src_unk.correct, best_other_unk
    ));
    let src_exact = exact.iter().find(|o| o.name == "SRC").expect("SRC present");
    out.push_str(&format!("SRC-Exact correct = {}\n", src_exact.correct));
    out
}

/// Figure 8 c: PMI coherence over a K sweep.
pub fn run_pmi(scale: Scale) -> String {
    let mut out = banner("F8c", "PMI topic coherence sweep (Fig. 8 c)", scale);
    let ks: Vec<usize> = match scale {
        Scale::Smoke => vec![8, 12],
        Scale::Default => vec![20, 30, 40, 50, 60],
        Scale::Full => vec![100, 125, 150, 175, 200],
    };
    let extra = scale.pick(8, 30, 100); // superset margin over K
    let window = 10;
    let top_n = 10;
    let iterations = scale.pick(50, 150, 1000);
    let mut series = Series::new("topics", ks.iter().map(|&k| k as f64).collect());
    let mut src_exact_col = Vec::new();
    let mut src_unk_col = Vec::new();
    let mut lda_col = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        let setup = build(scale, k + extra, k, 820 + i as u64);
        let corpus = &setup.generated.corpus;
        let beta = 200.0 / corpus.vocab_size() as f64;
        let fit_src = |knowledge: &KnowledgeSource| {
            SourceLda::builder()
                .knowledge_source(knowledge.clone())
                .variant(Variant::Full)
                .lambda_prior(0.7, 0.3)
                .approximation_steps(4)
                .smoothing(smoothing(scale))
                .alpha(50.0 / knowledge.len() as f64)
                .beta(beta)
                .iterations(iterations)
                .seed(9)
                .build()
                .expect("valid model")
                .fit(corpus)
                .expect("fit succeeds")
        };
        let pmi_of = |fitted: &srclda_core::FittedModel| {
            let tops: Vec<Vec<srclda_corpus::WordId>> = (0..fitted.num_topics())
                .map(|t| {
                    fitted
                        .top_words(t, top_n)
                        .into_iter()
                        .map(srclda_corpus::WordId::new)
                        .collect()
                })
                .collect();
            mean_topic_pmi(corpus, &tops, window).unwrap_or(f64::NAN)
        };
        let src_exact = fit_src(&setup.exact);
        let src_unk = fit_src(&setup.superset);
        let lda = Lda::builder()
            .topics(k)
            .alpha(50.0 / k as f64)
            .beta(beta)
            .iterations(iterations)
            .seed(9)
            .build()
            .expect("valid model")
            .fit(corpus)
            .expect("fit succeeds");
        src_exact_col.push(pmi_of(&src_exact));
        src_unk_col.push(pmi_of(&src_unk));
        lda_col.push(pmi_of(&lda));
    }
    series.push_column("SRC-Exact", src_exact_col.clone());
    series.push_column("SRC-Unk", src_unk_col.clone());
    series.push_column("LDA", lda_col.clone());
    out.push_str(&series.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    out.push_str(&format!(
        "\nmean PMI — SRC-Exact {:.3}, SRC-Unk {:.3}, LDA {:.3} (paper: SRC above LDA at every K)\n",
        mean(&src_exact_col),
        mean(&src_unk_col),
        mean(&lda_col)
    ));
    out
}

/// Both parts.
pub fn run(scale: Scale) -> String {
    let mut out = run_assignments(scale);
    out.push('\n');
    out.push_str(&run_pmi(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_beats_baselines_on_exact_round() {
        // Mid-size corpus: the λ-integrated prior needs enough tokens to
        // dominate EDA's frozen distributions (the paper uses 1M tokens).
        let setup = build(Scale::Default, 16, 8, 4242);
        let (_, outcomes) = round(&setup, &setup.exact, "Exact", Scale::Default);
        let get = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap();
        let src = get("SRC");
        let eda = get("EDA");
        let ctm = get("CTM");
        assert!(
            src.correct >= eda.correct && src.correct >= ctm.correct,
            "SRC {} vs EDA {} vs CTM {}",
            src.correct,
            eda.correct,
            ctm.correct
        );
        let total: usize = setup.generated.truth.assignments.iter().map(Vec::len).sum();
        assert!(
            src.correct * 2 > total,
            "SRC should classify most tokens: {}/{total}",
            src.correct
        );
    }

    #[test]
    fn theta_divergence_ranks_src_first_or_close() {
        let setup = build(Scale::Smoke, 16, 8, 77);
        let (_, outcomes) = round(&setup, &setup.exact, "Exact", Scale::Smoke);
        let src = outcomes.iter().find(|o| o.name == "SRC").unwrap().theta_js;
        let ctm = outcomes.iter().find(|o| o.name == "CTM").unwrap().theta_js;
        assert!(src <= ctm * 1.5, "SRC θ JS {src:.2} vs CTM {ctm:.2}");
    }
}
