//! Training throughput of the **document-sharded backend**
//! (`Backend::ShardedDocs`) against the serial kernel: tokens/second at
//! `S ∈ {1, 2, 4}` shards, per model family.
//!
//! The paper's parallel algorithms scale with the *topic* count; document
//! sharding is the corpus-scale axis (AD-LDA), and this experiment is its
//! perf contract: on a single-core box the sharded backend must track the
//! serial kernel closely (the snapshot/merge overhead is the price of the
//! shard structure — the acceptance bar is ≤10% at `S > 1` on the 1-core
//! reference machine), and on multi-core boxes the same `S` turns into
//! real speedup without changing a single sampled bit (`threads` is pure
//! scheduling). `S = 1` is additionally asserted bit-identical to
//! `Backend::Serial` on every cell, so the timed work is the same
//! statistical work.
//!
//! Rates come from the same differential timing as `sweep_throughput`
//! (two sweep counts, setup cancels; non-positive deltas retry then fall
//! back marked `unreliable`). Besides the printed report, the experiment
//! writes `BENCH_train.json` into the working directory so CI and future
//! PRs have a machine-readable baseline.

use super::sweep_throughput::{differential_rate, world};
use crate::cli::{banner, Scale};
use srclda_core::{
    Backend, FittedModel, GibbsModel, KernelKind, SmoothingMode, SourceLda, Variant,
};
use std::time::Instant;

/// Shard counts every cell is measured at.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One sharded measurement within a cell.
struct ShardedRate {
    shards: usize,
    tokens_per_sec: f64,
}

/// One benchmark cell: a model family timed serial vs sharded.
struct Cell {
    family: &'static str,
    topics: usize,
    vocab: usize,
    docs: usize,
    tokens_per_sweep: usize,
    sweeps: usize,
    threads: usize,
    serial_tokens_per_sec: f64,
    sharded: Vec<ShardedRate>,
    /// True when any backend's differential timing fell back to a
    /// whole-run rate (see `sweep_throughput::differential_rate`).
    unreliable: bool,
}

impl Cell {
    /// `rate / serial` — above 1 is speedup, below 1 is overhead.
    fn relative(&self, rate: f64) -> f64 {
        rate / self.serial_tokens_per_sec.max(1e-9)
    }
}

/// Time one family. `fit(backend, iters)` must be deterministic in the
/// backend chain contract; S=1 is asserted bit-identical to serial here.
fn time_family<F: Fn(Backend, usize) -> FittedModel>(
    fit: F,
    tokens_per_sweep: usize,
    sweeps: usize,
    threads: usize,
) -> (f64, Vec<ShardedRate>, bool) {
    let serial_fit = fit(Backend::Serial, sweeps);
    let one_shard = fit(
        Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 1,
            threads,
        },
        sweeps,
    );
    assert_eq!(
        serial_fit.assignments(),
        one_shard.assignments(),
        "S=1 sharded chain diverged from Backend::Serial"
    );
    let fit = &fit;
    let time_of = |backend: Backend| {
        move |iters: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let _ = fit(backend, iters);
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    let (serial, mut unreliable) =
        differential_rate(time_of(Backend::Serial), tokens_per_sweep, sweeps);
    let mut sharded = Vec::new();
    for shards in SHARD_COUNTS {
        let backend = Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards,
            threads,
        };
        let (rate, bad) = differential_rate(time_of(backend), tokens_per_sweep, sweeps);
        unreliable |= bad;
        sharded.push(ShardedRate {
            shards,
            tokens_per_sec: rate,
        });
    }
    (serial, sharded, unreliable)
}

/// One shard count measured with both shard kernels.
struct KernelRate {
    shards: usize,
    flat_tokens_per_sec: f64,
    sparse_tokens_per_sec: f64,
}

impl KernelRate {
    /// Sparse-sharded over flat-sharded tokens/sec at the same `S`.
    fn sparse_speedup(&self) -> f64 {
        self.sparse_tokens_per_sec / self.flat_tokens_per_sec.max(1e-9)
    }
}

/// The sharded-kernel cell: one high-T family timed with the flat and
/// sparse shard kernels at every shard count. This is the composed-axes
/// perf contract — at bucket-kernel scale (T = 2000) the sparse shard
/// kernel must deliver its sub-linear win *inside* the sharded execution
/// strategy, not just single-threaded.
struct SparseShardCell {
    family: &'static str,
    topics: usize,
    vocab: usize,
    docs: usize,
    tokens_per_sweep: usize,
    sweeps: usize,
    threads: usize,
    rates: Vec<KernelRate>,
    unreliable: bool,
}

/// Time one family with `ShardedDocs { kernel: Flat }` vs
/// `ShardedDocs { kernel: Sparse }` at every shard count. The S=1
/// sparse-sharded chain is asserted bit-identical to
/// `Backend::SparseKernel` first, so the timed sparse work is exactly the
/// single-thread bucket kernel's statistical work.
fn time_sharded_kernels<F: Fn(Backend, usize) -> FittedModel>(
    fit: F,
    tokens_per_sweep: usize,
    sweeps: usize,
    threads: usize,
) -> (Vec<KernelRate>, bool) {
    let sparse_fit = fit(Backend::SparseKernel, sweeps);
    let one_shard = fit(
        Backend::ShardedDocs {
            kernel: KernelKind::Sparse,
            shards: 1,
            threads,
        },
        sweeps,
    );
    assert_eq!(
        sparse_fit.assignments(),
        one_shard.assignments(),
        "S=1 sparse-sharded chain diverged from Backend::SparseKernel"
    );
    let fit = &fit;
    let time_of = |backend: Backend| {
        move |iters: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let _ = fit(backend, iters);
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    let mut rates = Vec::new();
    let mut unreliable = false;
    for shards in SHARD_COUNTS {
        let backend_of = |kernel: KernelKind| Backend::ShardedDocs {
            kernel,
            shards,
            threads,
        };
        let (flat, flat_bad) = differential_rate(
            time_of(backend_of(KernelKind::Flat)),
            tokens_per_sweep,
            sweeps,
        );
        let (sparse, sparse_bad) = differential_rate(
            time_of(backend_of(KernelKind::Sparse)),
            tokens_per_sweep,
            sweeps,
        );
        unreliable |= flat_bad || sparse_bad;
        rates.push(KernelRate {
            shards,
            flat_tokens_per_sec: flat,
            sparse_tokens_per_sec: sparse,
        });
    }
    (rates, unreliable)
}

/// Run the high-T sharded-kernel cell: the λ-integrated model at T = 2000
/// (the fig-8 bucket-kernel regime; V above the dense-integration cutoff
/// so the tables take the sparse layout).
fn run_sparse_shard_cell(shapes: &Shapes) -> SparseShardCell {
    let Shapes {
        topics,
        v,
        docs,
        doc_len,
        sweeps,
        support,
    } = *shapes;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 34);
    let (rates, unreliable) = time_sharded_kernels(
        |backend, iters| {
            SourceLda::builder()
                .knowledge_source(knowledge.clone())
                .variant(Variant::Full)
                .approximation_steps(8)
                .smoothing(SmoothingMode::Identity)
                .alpha(0.5)
                .iterations(iters)
                .backend(backend)
                .seed(7)
                .build()
                .expect("valid model")
                .fit(&corpus)
                .expect("fit succeeds")
        },
        corpus.num_tokens(),
        sweeps,
        threads,
    );
    SparseShardCell {
        family: "srclda_integrated_t2000",
        topics,
        vocab: v,
        docs: corpus.num_docs(),
        tokens_per_sweep: corpus.num_tokens(),
        sweeps,
        threads,
        rates,
        unreliable,
    }
}

/// The observer-overhead measurement: the same fit timed with the
/// telemetry observer detached (the `NoopObserver` fast path — one
/// branch per sweep) and attached (a `JsonlSink` streaming every event).
/// The obs subsystem's perf contract is that the detached path costs
/// nothing and the attached path stays within noise of it.
struct ObserverCell {
    tokens_per_sweep: usize,
    sweeps: usize,
    off_tokens_per_sec: f64,
    on_tokens_per_sec: f64,
    unreliable: bool,
}

impl ObserverCell {
    /// `on / off` — 1.0 means attaching the observer was free.
    fn relative(&self) -> f64 {
        self.on_tokens_per_sec / self.off_tokens_per_sec.max(1e-9)
    }
}

/// Time one family observer-off vs observer-on (serial backend, so the
/// per-sweep event emission is the only thing that differs).
fn measure_observer(shapes: &Shapes) -> ObserverCell {
    let Shapes {
        topics,
        v,
        docs,
        doc_len,
        sweeps,
        support,
    } = *shapes;
    let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 33);
    let assemble = |iters: usize| -> GibbsModel {
        SourceLda::builder()
            .knowledge_source(knowledge.clone())
            .variant(Variant::Mixture)
            .alpha(0.5)
            .iterations(iters)
            .backend(Backend::Serial)
            .seed(7)
            .build()
            .expect("valid model")
            .assemble(corpus.vocab_size())
            .expect("assemble succeeds")
    };
    let time_of = |observed: bool| {
        let assemble = &assemble;
        let corpus = &corpus;
        move |iters: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let model = assemble(iters);
                let start = Instant::now();
                let fitted = if observed {
                    let mut sink = srclda_obs::JsonlSink::new(std::io::sink());
                    model.fit_observed(
                        corpus,
                        None,
                        None,
                        |_: &srclda_core::TrainCheckpoint| Ok(()),
                        &mut sink,
                    )
                } else {
                    model.fit_resumable(corpus, None, None, |_: &srclda_core::TrainCheckpoint| {
                        Ok(())
                    })
                };
                let _ = fitted.expect("fit succeeds");
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    let (off, off_bad) = differential_rate(time_of(false), corpus.num_tokens(), sweeps);
    let (on, on_bad) = differential_rate(time_of(true), corpus.num_tokens(), sweeps);
    ObserverCell {
        tokens_per_sweep: corpus.num_tokens(),
        sweeps,
        off_tokens_per_sec: off,
        on_tokens_per_sec: on,
        unreliable: off_bad || on_bad,
    }
}

/// Cell dimensions, decoupled from [`Scale`] so the unit test can
/// exercise the full pipeline on a micro corpus without paying the
/// CI-scale timing runs in a debug build.
struct Shapes {
    topics: usize,
    v: usize,
    docs: usize,
    doc_len: usize,
    sweeps: usize,
    support: usize,
}

impl Shapes {
    /// Corpus-heavy shapes: document sharding targets corpus scale, so
    /// the token mass per sweep must dominate the per-sweep `S·V·T`
    /// snapshot/merge cost (that ratio *is* the overhead being measured —
    /// at `tokens ≥ ~150·V` the S=4 merge price sits well under the 10%
    /// acceptance bar).
    fn for_scale(scale: Scale) -> Self {
        Self {
            topics: scale.pick(16, 48, 96),
            v: scale.pick(400, 1200, 2500),
            docs: scale.pick(1000, 1500, 2500),
            doc_len: scale.pick(80, 100, 120),
            sweeps: scale.pick(12, 20, 24),
            support: scale.pick(12, 25, 40),
        }
    }

    /// Tiny shapes for the debug-build unit test.
    #[cfg(test)]
    fn micro() -> Self {
        Self {
            topics: 6,
            v: 120,
            docs: 40,
            doc_len: 30,
            sweeps: 6,
            support: 8,
        }
    }

    /// The sharded-kernel cell's shapes: T = 2000 at *every* scale (the
    /// topic count is the point of the cell — it's where the bucket
    /// kernel's sub-linear win lives). The corpus must carry enough
    /// token mass per sweep that the per-token kernel arithmetic
    /// dominates the per-sweep `S·V·T` snapshot/resync cost both
    /// kernels pay equally — at T=2000, V=6000 that copy is ~12M
    /// entries per shard per sweep, so a too-small corpus measures
    /// memcpy, not sampling. ~60k tokens/sweep keeps the flat O(T)
    /// reference affordable while leaving it per-token-bound. V stays
    /// above the dense-integration cutoff so the λ tables take the
    /// sparse layout, matching `sweep_throughput`'s high-T family.
    fn high_t(scale: Scale) -> Self {
        Self {
            topics: 2000,
            v: scale.pick(6000, 9000, 12000),
            docs: scale.pick(1000, 1200, 1500),
            doc_len: scale.pick(60, 80, 100),
            sweeps: scale.pick(4, 8, 8),
            support: scale.pick(12, 25, 40),
        }
    }

    /// Tiny high-T-shaped cell for the debug-build unit test (T is only
    /// "high" relative to the corpus; the test exercises the pipeline,
    /// not the speedup).
    #[cfg(test)]
    fn micro_high_t() -> Self {
        Self {
            topics: 48,
            v: 300,
            docs: 16,
            doc_len: 20,
            sweeps: 4,
            support: 8,
        }
    }
}

/// Run every family cell at the given shapes.
fn run_cells(shapes: &Shapes) -> Vec<Cell> {
    let Shapes {
        topics,
        v,
        docs,
        doc_len,
        sweeps,
        support,
    } = *shapes;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut cells = Vec::new();

    // Source-LDA with fixed δ priors (mixture variant).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 31);
        let (serial, sharded, unreliable) = time_family(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Mixture)
                    .unlabeled_topics(topics / 8)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
            threads,
        );
        cells.push(Cell {
            family: "srclda_fixed",
            topics: topics + topics / 8,
            vocab: v,
            docs: corpus.num_docs(),
            tokens_per_sweep: corpus.num_tokens(),
            sweeps,
            threads,
            serial_tokens_per_sec: serial,
            sharded,
            unreliable,
        });
    }

    // The full λ-integrated model (identity smoothing, default quadrature).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 32);
        let (serial, sharded, unreliable) = time_family(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Full)
                    .approximation_steps(8)
                    .smoothing(SmoothingMode::Identity)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
            threads,
        );
        cells.push(Cell {
            family: "srclda_integrated",
            topics,
            vocab: v,
            docs: corpus.num_docs(),
            tokens_per_sweep: corpus.num_tokens(),
            sweeps,
            threads,
            serial_tokens_per_sec: serial,
            sharded,
            unreliable,
        });
    }

    cells
}

/// Render `BENCH_train.json` (hand-rolled: the workspace is offline and
/// vendors no JSON crate; every value is numeric or a static identifier).
fn render_json(
    scale: Scale,
    cells: &[Cell],
    sparse_cell: &SparseShardCell,
    observer: &ObserverCell,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"train_throughput\",\n");
    out.push_str("  \"unit\": \"tokens_per_sec\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n").to_lowercase());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"machine_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"observer\": {{\"tokens_per_sweep\": {}, \"sweeps\": {}, \
         \"off_tokens_per_sec\": {:.1}, \"on_tokens_per_sec\": {:.1}, \
         \"relative\": {:.4}, \"unreliable\": {}}},\n",
        observer.tokens_per_sweep,
        observer.sweeps,
        observer.off_tokens_per_sec,
        observer.on_tokens_per_sec,
        observer.relative(),
        observer.unreliable,
    ));
    out.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"topics\": {}, \"vocab\": {}, \"docs\": {}, \
             \"tokens_per_sweep\": {}, \"sweeps\": {}, \"threads\": {}, \
             \"serial_tokens_per_sec\": {:.1}, \"sharded\": [",
            c.family,
            c.topics,
            c.vocab,
            c.docs,
            c.tokens_per_sweep,
            c.sweeps,
            c.threads,
            c.serial_tokens_per_sec,
        ));
        for (j, s) in c.sharded.iter().enumerate() {
            out.push_str(&format!(
                "{{\"shards\": {}, \"tokens_per_sec\": {:.1}, \"relative_to_serial\": {:.3}}}{}",
                s.shards,
                s.tokens_per_sec,
                c.relative(s.tokens_per_sec),
                if j + 1 < c.sharded.len() { ", " } else { "" },
            ));
        }
        out.push_str(&format!(
            "], \"unreliable\": {}}}{}\n",
            c.unreliable,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"sharded_kernels\": {{\"family\": \"{}\", \"topics\": {}, \"vocab\": {}, \
         \"docs\": {}, \"tokens_per_sweep\": {}, \"sweeps\": {}, \"threads\": {}, \
         \"rates\": [",
        sparse_cell.family,
        sparse_cell.topics,
        sparse_cell.vocab,
        sparse_cell.docs,
        sparse_cell.tokens_per_sweep,
        sparse_cell.sweeps,
        sparse_cell.threads,
    ));
    for (j, r) in sparse_cell.rates.iter().enumerate() {
        out.push_str(&format!(
            "{{\"shards\": {}, \"flat_tokens_per_sec\": {:.1}, \
             \"sparse_tokens_per_sec\": {:.1}, \"sparse_speedup\": {:.3}}}{}",
            r.shards,
            r.flat_tokens_per_sec,
            r.sparse_tokens_per_sec,
            r.sparse_speedup(),
            if j + 1 < sparse_cell.rates.len() {
                ", "
            } else {
                ""
            },
        ));
    }
    out.push_str(&format!(
        "], \"unreliable\": {}}}\n",
        sparse_cell.unreliable
    ));
    out.push_str("}\n");
    out
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "TRN",
        "document-sharded training throughput (serial kernel vs ShardedDocs)",
        scale,
    );
    let cells = run_cells(&Shapes::for_scale(scale));
    out.push_str(&format!(
        "{:<20} {:>6} {:>6} {:>8} {:>14} {:>7}  {}\n",
        "family", "T", "V", "tokens", "serial tok/s", "threads", "sharded tok/s (xserial)"
    ));
    for c in &cells {
        let sharded: Vec<String> = c
            .sharded
            .iter()
            .map(|s| {
                format!(
                    "S{}: {:.0} ({:.2}x)",
                    s.shards,
                    s.tokens_per_sec,
                    c.relative(s.tokens_per_sec)
                )
            })
            .collect();
        out.push_str(&format!(
            "{:<20} {:>6} {:>6} {:>8} {:>14.0} {:>7}  {}{}\n",
            c.family,
            c.topics,
            c.vocab,
            c.tokens_per_sweep,
            c.serial_tokens_per_sec,
            c.threads,
            sharded.join("  "),
            if c.unreliable { "  UNRELIABLE" } else { "" },
        ));
    }
    out.push_str(
        "(S=1 is asserted bit-identical to the serial kernel on every cell; \
         S>1 is the AD-LDA approximate chain, deterministic in (seed, S, kernel) \
         whatever the thread count)\n",
    );
    let sparse_cell = run_sparse_shard_cell(&Shapes::high_t(scale));
    out.push_str(&format!(
        "sharded kernels at T={} ({} tokens/sweep, {} threads):\n",
        sparse_cell.topics, sparse_cell.tokens_per_sweep, sparse_cell.threads,
    ));
    for r in &sparse_cell.rates {
        out.push_str(&format!(
            "  S{}: flat {:.0} tok/s, sparse {:.0} tok/s ({:.1}x){}\n",
            r.shards,
            r.flat_tokens_per_sec,
            r.sparse_tokens_per_sec,
            r.sparse_speedup(),
            if sparse_cell.unreliable {
                "  UNRELIABLE"
            } else {
                ""
            },
        ));
    }
    out.push_str(
        "(S=1 sparse-sharded is asserted bit-identical to Backend::SparseKernel; \
         both shard kernels sweep the same shard-local counts — only the \
         per-token arithmetic differs)\n",
    );
    let observer = measure_observer(&Shapes::for_scale(scale));
    out.push_str(&format!(
        "observer overhead: off {:.0} tok/s, on {:.0} tok/s ({:.2}x){}\n",
        observer.off_tokens_per_sec,
        observer.on_tokens_per_sec,
        observer.relative(),
        if observer.unreliable {
            "  UNRELIABLE"
        } else {
            ""
        },
    ));
    let json = render_json(scale, &cells, &sparse_cell, &observer);
    match std::fs::write("BENCH_train.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_train.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_train.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_run_covers_both_families_and_emits_json() {
        let cells = run_cells(&Shapes::micro());
        let families: Vec<&str> = cells.iter().map(|c| c.family).collect();
        assert!(families.contains(&"srclda_fixed"));
        assert!(families.contains(&"srclda_integrated"));
        for c in &cells {
            assert!(c.serial_tokens_per_sec > 0.0);
            assert_eq!(
                c.sharded.iter().map(|s| s.shards).collect::<Vec<_>>(),
                SHARD_COUNTS.to_vec()
            );
            for s in &c.sharded {
                assert!(s.tokens_per_sec > 0.0);
            }
        }
        let sparse_cell = run_sparse_shard_cell(&Shapes::micro_high_t());
        assert_eq!(
            sparse_cell
                .rates
                .iter()
                .map(|r| r.shards)
                .collect::<Vec<_>>(),
            SHARD_COUNTS.to_vec()
        );
        for r in &sparse_cell.rates {
            assert!(r.flat_tokens_per_sec > 0.0);
            assert!(r.sparse_tokens_per_sec > 0.0);
        }
        let observer = measure_observer(&Shapes::micro());
        assert!(observer.off_tokens_per_sec > 0.0);
        assert!(observer.on_tokens_per_sec > 0.0);
        let json = render_json(Scale::Smoke, &cells, &sparse_cell, &observer);
        assert!(json.contains("\"experiment\": \"train_throughput\""));
        assert!(json.contains("\"serial_tokens_per_sec\""));
        assert!(json.contains("\"relative_to_serial\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"observer\": {\"tokens_per_sweep\""));
        assert!(json.contains("\"on_tokens_per_sec\""));
        assert!(json.contains("\"sharded_kernels\": {\"family\""));
        assert!(json.contains("\"flat_tokens_per_sec\""));
        assert!(json.contains("\"sparse_tokens_per_sec\""));
        assert!(json.contains("\"sparse_speedup\""));
    }
}
