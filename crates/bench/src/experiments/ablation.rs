//! Ablations over the design choices DESIGN.md calls out:
//!
//! * **Quadrature steps `A`** — the paper's running-time bound is
//!   `O(I·D_avg·D·T·A)`; how much accuracy does each extra step buy?
//! * **Smoothing mode** — per-topic `g_t` (Algorithm 1) vs one shared `g`
//!   vs no smoothing at all (`g = id`).
//! * **ε sensitivity** — Definition 3 only requires "a very small positive
//!   number"; how robust is inference to its magnitude?

use crate::cli::{banner, Scale};
use srclda_core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use srclda_core::{SmoothingMode, SourceLda, Variant};
use srclda_eval::{token_accuracy, Table, TopicMapping};
use srclda_knowledge::SmoothingConfig;
use srclda_synth::{SyntheticWikipedia, WikipediaConfig};
use std::time::Instant;

struct Setup {
    generated: srclda_core::generative::GeneratedCorpus,
    knowledge: srclda_knowledge::KnowledgeSource,
}

fn build(scale: Scale) -> Setup {
    let topics = scale.pick(12, 40, 80);
    let labels: Vec<String> = (0..topics).map(|i| format!("ablate-{i}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let wiki = SyntheticWikipedia::generate(
        &refs,
        &WikipediaConfig {
            core_words_per_topic: scale.pick(15, 30, 40),
            shared_vocab: scale.pick(80, 200, 300),
            article_len: scale.pick(300, 700, 1000),
            seed: 61,
            ..WikipediaConfig::default()
        },
    );
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        mu: 0.6,
        sigma: 0.5,
        lambda_mode: LambdaMode::Raw,
        num_docs: scale.pick(80, 250, 500),
        doc_len: DocLength::Fixed(scale.pick(50, 90, 120)),
        seed: 62,
        ..SourceLdaGenerator::default()
    }
    .generate(&wiki.knowledge, &wiki.vocab)
    .expect("generation succeeds");
    Setup {
        generated,
        knowledge: wiki.knowledge,
    }
}

fn fit_and_score(
    setup: &Setup,
    a: usize,
    smoothing: SmoothingMode,
    epsilon: f64,
    iterations: usize,
) -> (f64, f64) {
    let start = Instant::now();
    let fitted = SourceLda::builder()
        .knowledge_source(setup.knowledge.clone())
        .variant(Variant::Full)
        .lambda_prior(0.6, 0.5)
        .approximation_steps(a)
        .smoothing(smoothing)
        .epsilon(epsilon)
        .alpha(0.5)
        .iterations(iterations)
        .seed(63)
        .build()
        .expect("valid model")
        .fit(&setup.generated.corpus)
        .expect("fit succeeds");
    let secs = start.elapsed().as_secs_f64();
    let acc = token_accuracy(
        &setup.generated.truth.assignments,
        fitted.assignments(),
        &TopicMapping::identity(fitted.num_topics()),
    );
    (acc.percent(), secs)
}

fn smoothing_cfg(scale: Scale) -> SmoothingConfig {
    SmoothingConfig {
        grid_points: 8,
        samples_per_point: scale.pick(20, 40, 60),
    }
}

/// Run all three ablations.
pub fn run(scale: Scale) -> String {
    let mut out = banner("ABL", "design-choice ablations (A, smoothing, ε)", scale);
    let setup = build(scale);
    let iterations = scale.pick(50, 150, 300);
    out.push_str(&format!(
        "corpus: {} docs, {} tokens, {} source topics\n\n",
        setup.generated.corpus.num_docs(),
        setup.generated.corpus.num_tokens(),
        setup.knowledge.len()
    ));

    // 1. Quadrature steps A.
    let mut table = Table::new(["A (quadrature steps)", "classification %", "fit seconds"]);
    for a in [1usize, 2, 4, 8, 16] {
        let (acc, secs) = fit_and_score(
            &setup,
            a,
            SmoothingMode::Shared(smoothing_cfg(scale)),
            0.01,
            iterations,
        );
        table.push_row([format!("{a}"), format!("{acc:.1}"), format!("{secs:.2}")]);
    }
    out.push_str("ablation 1 — λ quadrature steps (cost grows linearly in A):\n");
    out.push_str(&table.render());

    // 2. Smoothing mode.
    let mut table = Table::new(["smoothing mode", "classification %", "fit seconds"]);
    for (name, mode) in [
        ("identity (g = λ)", SmoothingMode::Identity),
        ("shared g", SmoothingMode::Shared(smoothing_cfg(scale))),
        (
            "per-topic g_t",
            SmoothingMode::PerTopic(smoothing_cfg(scale)),
        ),
    ] {
        let (acc, secs) = fit_and_score(&setup, 4, mode, 0.01, iterations);
        table.push_row([name.to_string(), format!("{acc:.1}"), format!("{secs:.2}")]);
    }
    out.push_str("\nablation 2 — smoothing function estimation:\n");
    out.push_str(&table.render());

    // 3. ε sensitivity.
    let mut table = Table::new(["epsilon", "classification %"]);
    for eps in [1e-4, 1e-2, 1e-1, 1.0] {
        let (acc, _) = fit_and_score(
            &setup,
            4,
            SmoothingMode::Shared(smoothing_cfg(scale)),
            eps,
            iterations,
        );
        table.push_row([format!("{eps}"), format!("{acc:.1}")]);
    }
    out.push_str("\nablation 3 — Definition 3's ε:\n");
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_report_renders() {
        let r = run(Scale::Smoke);
        assert!(r.contains("ablation 1"));
        assert!(r.contains("ablation 2"));
        assert!(r.contains("ablation 3"));
    }

    #[test]
    fn accuracy_is_robust_to_epsilon_within_reason() {
        let setup = build(Scale::Smoke);
        let (a_small, _) = fit_and_score(&setup, 2, SmoothingMode::Identity, 1e-4, 40);
        let (a_mid, _) = fit_and_score(&setup, 2, SmoothingMode::Identity, 1e-2, 40);
        // Tiny vs small ε should not change the outcome much.
        assert!(
            (a_small - a_mid).abs() < 15.0,
            "ε sensitivity too high: {a_small:.1} vs {a_mid:.1}"
        );
    }
}
