//! End-to-end HTTP serving throughput: requests/second and tokens/second
//! through a real `srclda-served` daemon over loopback.
//!
//! `throughput_serving` measures the engine API in-process;
//! this experiment stacks the whole network path on top — TCP accept,
//! HTTP parsing, JSON encode/decode, the worker pool — using the same
//! trained artifact and the same request stream ([`super::throughput::setup`]),
//! so the two reports are directly comparable. A self-contained load
//! generator (one persistent keep-alive connection per client thread)
//! drives three cells:
//!
//! * `serial` — one server worker, one client, cache disabled;
//! * `pooled` — a worker pool with matching concurrent clients, cache
//!   disabled (the concurrency win, now including socket costs);
//! * `warm_cache` — the pooled setup re-sent against a populated LRU
//!   cache (the repetition win).
//!
//! Every response is parsed and spot-checked against the others — the
//! daemon's determinism guarantee means every cell must serve identical
//! bytes for the same document. Besides the printed report, the
//! experiment writes `BENCH_serve.json` next to `BENCH_sweep.json` so CI
//! and future PRs have a serving-perf baseline to beat.

use crate::cli::{banner, Scale};
use srclda_serve::server::json;
use srclda_serve::{
    EngineOptions, ModelRegistry, RetryClient, RetryPolicy, Server, ServerConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured cell.
struct Cell {
    name: &'static str,
    workers: usize,
    clients: usize,
    requests: usize,
    requests_per_sec: f64,
    tokens_per_sec: f64,
    latency_p50_ms: f64,
    latency_p99_ms: f64,
}

/// Boot a daemon on an ephemeral loopback port serving the artifact at
/// `path` under the name `bench`.
fn boot(
    path: &std::path::Path,
    options: EngineOptions,
    workers: usize,
) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let registry = Arc::new(ModelRegistry::new(options));
    registry.load("bench", path).expect("artifact loads");
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            batch_workers: 1,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("daemon binds");
    let handle = server.handle().expect("bound address");
    let join = std::thread::spawn(move || server.run().expect("daemon runs"));
    (handle, join)
}

/// Read one HTTP response from a buffered stream; returns (status, body).
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    srclda_serve::server::http::read_simple_response(reader).expect("response parses")
}

/// Drive `requests` through the daemon on `clients` persistent keep-alive
/// connections (contiguous shards, like the engine's batch path). Returns
/// (elapsed seconds, total folded tokens, response body of document 0).
fn generate_load(addr: SocketAddr, requests: &[String], clients: usize) -> (f64, u64, String) {
    let tokens = AtomicU64::new(0);
    let first_body = std::sync::Mutex::new(String::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        let mut rest = requests;
        let mut offset = 0usize;
        for c in 0..clients {
            let share = rest.len().div_ceil(clients - c);
            let (shard, tail) = rest.split_at(share);
            rest = tail;
            let shard_start = offset;
            offset += share;
            let tokens = &tokens;
            let first_body = &first_body;
            s.spawn(move || {
                let stream = TcpStream::connect(addr).expect("client connects");
                // One write per request and Nagle off: a multi-segment
                // write on loopback trips the delayed-ACK interaction and
                // caps a keep-alive connection at ~25 requests/sec.
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("stream clones");
                let mut reader = BufReader::new(stream);
                // Shed recovery: the fast path stays a persistent
                // keep-alive connection, but a 503 falls back to the
                // shared backoff client instead of aborting the run —
                // exactly what a production caller of a shedding daemon
                // does. Seeded per client thread, so delays stay
                // deterministic.
                let retry = RetryClient::new(RetryPolicy {
                    jitter_seed: shard_start as u64,
                    ..RetryPolicy::default()
                });
                let retry_addr = addr.to_string();
                for (i, doc) in shard.iter().enumerate() {
                    let body = json::obj(vec![("text", json::Value::from(doc.as_str()))]).render();
                    let request = format!(
                        "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    writer
                        .write_all(request.as_bytes())
                        .expect("request writes");
                    let (status, response) = read_response(&mut reader);
                    let (status, response) = if status == 503 {
                        retry
                            .request(&retry_addr, "POST", "/infer", &body)
                            .expect("retry client reaches the daemon")
                    } else {
                        (status, response)
                    };
                    assert_eq!(status, 200, "daemon refused a request: {response}");
                    let parsed = json::parse(&response).expect("response is json");
                    let doc_tokens = parsed
                        .get("tokens")
                        .and_then(json::Value::as_usize)
                        .expect("tokens field");
                    tokens.fetch_add(doc_tokens as u64, Ordering::Relaxed);
                    if shard_start + i == 0 {
                        *first_body.lock().expect("first body lock") = response;
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let first = first_body.lock().expect("first body lock").clone();
    (elapsed, tokens.load(Ordering::Relaxed), first)
}

/// Query `/metrics` and pull the two latency quantiles (ms).
fn latency_quantiles(addr: SocketAddr) -> (f64, f64) {
    let stream = TcpStream::connect(addr).expect("metrics connect");
    let mut writer = stream.try_clone().expect("stream clones");
    write!(writer, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").expect("metrics request");
    let (status, body) = read_response(&mut BufReader::new(stream));
    assert_eq!(status, 200);
    let v = json::parse(&body).expect("metrics json");
    let infer = v.get("infer").expect("infer section");
    let q = |key: &str| infer.get(key).and_then(json::Value::as_f64).unwrap_or(0.0);
    (q("latency_p50_ms"), q("latency_p99_ms"))
}

fn run_cells(scale: Scale) -> Vec<Cell> {
    let (artifact, fold_in, requests) = super::throughput::setup(scale);
    let artifact_path = std::env::temp_dir().join(format!(
        "srclda-throughput-http-{}.slda",
        std::process::id()
    ));
    artifact.save(&artifact_path).expect("artifact saves");

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = scale.pick(2, 4, 6).min(cores.max(2));
    let no_cache = EngineOptions {
        fold_in,
        cache_capacity: 0,
    };
    let cached = EngineOptions {
        fold_in,
        cache_capacity: requests.len().max(1),
    };

    let mut cells = Vec::new();
    let mut reference_body: Option<String> = None;
    let mut measure =
        |name: &'static str, options: EngineOptions, workers: usize, clients: usize, warm: bool| {
            let (handle, join) = boot(&artifact_path, options, workers);
            let addr = handle.addr();
            if warm {
                // Populate the cache outside the timed window.
                let _ = generate_load(addr, &requests, clients);
            }
            let (secs, tokens, first_body) = generate_load(addr, &requests, clients);
            let (p50, p99) = latency_quantiles(addr);
            handle.shutdown();
            join.join().expect("daemon stops cleanly");
            // Determinism across cells: same artifact + same fold-in config →
            // the exact same response bytes for document 0, cached or not.
            match &reference_body {
                None => reference_body = Some(first_body),
                Some(reference) => assert_eq!(
                    reference, &first_body,
                    "cell {name} served different bytes for the same document"
                ),
            }
            let secs = secs.max(1e-9);
            cells.push(Cell {
                name,
                workers,
                clients,
                requests: requests.len(),
                requests_per_sec: requests.len() as f64 / secs,
                tokens_per_sec: tokens as f64 / secs,
                latency_p50_ms: p50,
                latency_p99_ms: p99,
            });
        };

    measure("serial", no_cache, 1, 1, false);
    measure("pooled", no_cache, pool, pool, false);
    measure("warm_cache", cached, pool, pool, true);

    let _ = std::fs::remove_file(&artifact_path);
    cells
}

/// Render `BENCH_serve.json` (hand-rolled like `BENCH_sweep.json`: the
/// workspace vendors no JSON writer and every value is numeric or a
/// static identifier).
fn render_json(scale: Scale, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"throughput_http\",\n");
    out.push_str("  \"unit\": \"requests_per_sec\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n").to_lowercase());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"machine_cores\": {cores},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"cell\": \"{}\", \"workers\": {}, \"clients\": {}, \"requests\": {}, \
             \"requests_per_sec\": {:.1}, \"tokens_per_sec\": {:.1}, \
             \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}}}{}\n",
            c.name,
            c.workers,
            c.clients,
            c.requests,
            c.requests_per_sec,
            c.tokens_per_sec,
            c.latency_p50_ms,
            c.latency_p99_ms,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "HTTP",
        "serving throughput over loopback HTTP (srclda-served daemon)",
        scale,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("machine parallelism: {cores} cores\n"));
    let cells = run_cells(scale);
    out.push_str(&format!(
        "{:<12} {:>7} {:>7} {:>12} {:>14} {:>10} {:>10}\n",
        "cell", "workers", "clients", "reqs/sec", "tokens/sec", "p50 ms", "p99 ms"
    ));
    let serial_rate = cells
        .iter()
        .find(|c| c.name == "serial")
        .map_or(1e-9, |c| c.requests_per_sec);
    for c in &cells {
        out.push_str(&format!(
            "{:<12} {:>7} {:>7} {:>12.1} {:>14.1} {:>10.3} {:>10.3}  ({:.2}x)\n",
            c.name,
            c.workers,
            c.clients,
            c.requests_per_sec,
            c.tokens_per_sec,
            c.latency_p50_ms,
            c.latency_p99_ms,
            c.requests_per_sec / serial_rate,
        ));
    }
    out.push_str(
        "(every cell serves bit-identical response bytes — asserted on a \
         shared document)\n",
    );
    let json = render_json(scale, &cells);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_serve.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_serve.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_cover_serial_pooled_and_warm_cache() {
        let cells = run_cells(Scale::Smoke);
        let names: Vec<&str> = cells.iter().map(|c| c.name).collect();
        assert_eq!(names, ["serial", "pooled", "warm_cache"]);
        for c in &cells {
            assert!(c.requests > 0);
            assert!(c.requests_per_sec > 0.0, "{} had no throughput", c.name);
            assert!(c.tokens_per_sec > 0.0);
            assert!(c.latency_p99_ms >= c.latency_p50_ms);
        }
        let json = render_json(Scale::Smoke, &cells);
        assert!(json.contains("\"experiment\": \"throughput_http\""));
        assert!(json.contains("\"cell\": \"warm_cache\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"latency_p99_ms\""));
    }
}
