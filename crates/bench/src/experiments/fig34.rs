//! Figures 3 and 4: how the JS divergence between a source distribution and
//! `Dir(X^e)` draws responds to the exponent.
//!
//! * Fig. 3 — raw exponent `e = λ`: the divergence collapses sharply for
//!   small λ and flattens (non-linear response).
//! * Fig. 4 — smoothed exponent `e = g(λ)`: after mapping through the
//!   estimated smoothing function the response is linear in λ.

use crate::cli::{banner, Scale};
use srclda_knowledge::smoothing::sample_js_divergences;
use srclda_knowledge::{SmoothingConfig, SmoothingFunction};
use srclda_math::{rng_from_seed, BoxplotSummary};
use srclda_synth::{SyntheticWikipedia, WikipediaConfig};

fn lambda_grid() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Median JS per λ plus the rendered boxplot rows.
fn divergence_profile(smoothed: bool, scale: Scale) -> (Vec<f64>, String) {
    let wiki = SyntheticWikipedia::generate(
        &["Trade"],
        &WikipediaConfig {
            seed: 3,
            ..WikipediaConfig::default()
        },
    );
    let topic = wiki.knowledge.topic(0);
    let samples_per_point = scale.pick(60, 300, 1000);
    let mut rng = rng_from_seed(34);
    let g = if smoothed {
        let cfg = SmoothingConfig {
            grid_points: scale.pick(8, 16, 24),
            samples_per_point: scale.pick(30, 80, 200),
        };
        SmoothingFunction::estimate(topic, 0.01, &cfg, &mut rng)
    } else {
        SmoothingFunction::identity()
    };
    let mut rows = String::new();
    let mut medians = Vec::new();
    for lam in lambda_grid() {
        let exponent = g.eval(lam);
        let samples = sample_js_divergences(topic, 0.01, exponent, samples_per_point, &mut rng);
        let summary = BoxplotSummary::from_samples(&samples).expect("non-empty");
        medians.push(summary.median);
        let label = if smoothed {
            format!("g({lam:.1}) = {exponent:.3}")
        } else {
            format!("lambda = {lam:.1}")
        };
        rows.push_str(&summary.render_row(&label));
        rows.push('\n');
    }
    (medians, rows)
}

/// Maximum deviation of `ys` from the straight line joining its endpoints,
/// normalized by the endpoint drop — 0 means perfectly linear.
pub(crate) fn nonlinearity(ys: &[f64]) -> f64 {
    let n = ys.len();
    let (y0, y1) = (ys[0], ys[n - 1]);
    let range = (y0 - y1).abs().max(1e-12);
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            let line = y0 + t * (y1 - y0);
            (ys[i] - line).abs() / range
        })
        .fold(0.0, f64::max)
}

/// Figure 3 (raw λ).
pub fn run_fig3(scale: Scale) -> String {
    let mut out = banner("F3", "JS divergence vs raw λ (Fig. 3)", scale);
    let (medians, rows) = divergence_profile(false, scale);
    out.push_str(&rows);
    out.push_str(&format!(
        "\nnon-linearity of the median curve: {:.3} (high — the raw response is convex)\n",
        nonlinearity(&medians)
    ));
    out
}

/// Figure 4 (smoothed g(λ)).
pub fn run_fig4(scale: Scale) -> String {
    let mut out = banner("F4", "JS divergence vs g(λ) (Fig. 4)", scale);
    let (medians, rows) = divergence_profile(true, scale);
    out.push_str(&rows);
    out.push_str(&format!(
        "\nnon-linearity of the median curve: {:.3} (low — g linearizes the response)\n",
        nonlinearity(&medians)
    ));
    out
}

/// Both figures plus the comparison line.
pub fn run(scale: Scale) -> String {
    let mut out = run_fig3(scale);
    out.push('\n');
    out.push_str(&run_fig4(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_lambda_is_nonlinear_smoothed_is_linear() {
        let (raw, _) = divergence_profile(false, Scale::Smoke);
        let (smooth, _) = divergence_profile(true, Scale::Smoke);
        // Both decrease overall.
        assert!(raw[0] > raw[10], "raw curve should fall: {raw:?}");
        assert!(
            smooth[0] > smooth[10],
            "smoothed curve should fall: {smooth:?}"
        );
        let nl_raw = nonlinearity(&raw);
        let nl_smooth = nonlinearity(&smooth);
        assert!(
            nl_smooth < nl_raw,
            "smoothing should linearize: raw {nl_raw:.3} vs smoothed {nl_smooth:.3}"
        );
    }

    #[test]
    fn nonlinearity_metric_sane() {
        assert!(nonlinearity(&[1.0, 0.75, 0.5, 0.25, 0.0]) < 1e-12);
        assert!(nonlinearity(&[1.0, 0.1, 0.05, 0.02, 0.0]) > 0.3);
    }

    #[test]
    fn reports_render() {
        let r3 = run_fig3(Scale::Smoke);
        assert!(r3.contains("lambda = 0.5"));
        let r4 = run_fig4(Scale::Smoke);
        assert!(r4.contains("g(0.5)"));
    }
}
