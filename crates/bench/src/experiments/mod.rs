//! One module per paper artifact; each exposes `run(scale) -> String`.

pub mod ablation;
pub mod fig2;
pub mod fig34;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig8f;
pub mod sweep_throughput;
pub mod table0;
pub mod table1;
pub mod throughput;
pub mod throughput_http;
pub mod train_throughput;
