//! Training-sweep throughput: tokens/second through the serial collapsed
//! Gibbs sampler, **dense reference sweep vs. optimized kernel**, per model
//! family × topic count × vocabulary size.
//!
//! This is the repo's performance trajectory, not a paper figure: every
//! ROADMAP direction (the Fig. 8f `B = 10000` scaling run, corpus-scale
//! serving) gates on how fast one Gibbs sweep runs, so this experiment
//! times the same fit twice — once with `Backend::SerialDense` (the
//! straightforward per-(token, topic) `word_weight` loop) and once with
//! `Backend::Serial` (flat prior tables, cached reciprocals, sparse
//! document-topic bookkeeping, non-atomic counts) — and reports both in
//! tokens/second. The two backends walk bit-identical chains from the same
//! seed (asserted here on every cell), so the comparison times identical
//! statistical work.
//!
//! Besides the printed report, the experiment writes `BENCH_sweep.json`
//! into the working directory so CI and future PRs have a machine-readable
//! perf baseline to beat.

use crate::cli::{banner, Scale};
use srclda_core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use srclda_core::{Backend, Ctm, Eda, FittedModel, Lda, SmoothingMode, SourceLda, Variant};
use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;
use srclda_synth::random_source_topics;
use std::time::Instant;

/// One benchmark cell: a model family at a (T, V) shape.
struct Cell {
    family: &'static str,
    topics: usize,
    vocab: usize,
    docs: usize,
    tokens_per_sweep: usize,
    sweeps: usize,
    dense_tokens_per_sec: f64,
    kernel_tokens_per_sec: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.kernel_tokens_per_sec / self.dense_tokens_per_sec.max(1e-9)
    }
}

/// Synthetic world shared by a cell: source topics over a `v`-word
/// vocabulary and a corpus generated from them.
fn world(
    v: usize,
    topics: usize,
    support: usize,
    docs: usize,
    doc_len: usize,
    seed: u64,
) -> (KnowledgeSource, Corpus) {
    let (vocab, knowledge) = random_source_topics(v, topics, support, 200, seed);
    let active: Vec<usize> = (0..topics.min(24)).collect();
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: docs,
        doc_len: DocLength::Fixed(doc_len),
        lambda_mode: LambdaMode::None,
        seed: seed ^ 0x5eed,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&active), &vocab)
    .expect("generation succeeds");
    (knowledge, generated.corpus)
}

/// Time the sweeps of one model per backend and assert the chains are
/// identical, so both timings cover the same statistical work.
///
/// **Differential timing:** `fit(backend, iters)` includes one-off work
/// the sweep rate must not charge for — prior construction (per-table
/// `powf`/`ln Γ` caches), count initialization, and the final φ/θ
/// extraction. Each backend is therefore timed at two sweep counts
/// (`sweeps` and `sweeps/4`), best-of-two each, and the rate is computed
/// from the *difference*: the fixed setup cost cancels exactly and the
/// reported tokens/sec is sweep-only throughput.
fn time_pair<F: Fn(Backend, usize) -> FittedModel>(
    fit: F,
    tokens_per_sweep: usize,
    sweeps: usize,
) -> (f64, f64) {
    let base = (sweeps / 4).max(1);
    assert!(sweeps > base, "need two distinct sweep counts");
    let delta_tokens = (tokens_per_sweep * (sweeps - base)) as f64;
    let rate = |backend: Backend| -> (f64, FittedModel) {
        let time_of = |iters: usize| -> (f64, FittedModel) {
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..2 {
                let start = Instant::now();
                let fitted = fit(backend, iters);
                best = best.min(start.elapsed().as_secs_f64());
                last = Some(fitted);
            }
            (best, last.expect("at least one run"))
        };
        let (base_secs, _) = time_of(base);
        let (full_secs, fitted) = time_of(sweeps);
        (delta_tokens / (full_secs - base_secs).max(1e-9), fitted)
    };
    let (dense, dense_fit) = rate(Backend::SerialDense);
    let (kernel, kernel_fit) = rate(Backend::Serial);
    assert_eq!(
        dense_fit.assignments(),
        kernel_fit.assignments(),
        "kernel chain diverged from dense reference"
    );
    (dense, kernel)
}

/// Run every family cell for a scale.
fn run_cells(scale: Scale) -> Vec<Cell> {
    let topics = scale.pick(48, 128, 512);
    let v = scale.pick(1500, 3000, 4000);
    let v_sparse = scale.pick(6000, 9000, 12000);
    let docs = scale.pick(60, 150, 300);
    let doc_len = scale.pick(60, 80, 100);
    let sweeps = scale.pick(40, 40, 40);
    let support = scale.pick(12, 25, 40);
    // The paper's default quadrature depth (ModelConfig::approximation_steps).
    let steps = 8;

    let mut cells = Vec::new();
    let mut push = |family: &'static str,
                    topics: usize,
                    vocab: usize,
                    corpus: &Corpus,
                    sweeps: usize,
                    rates: (f64, f64)| {
        cells.push(Cell {
            family,
            topics,
            vocab,
            docs: corpus.num_docs(),
            tokens_per_sweep: corpus.num_tokens(),
            sweeps,
            dense_tokens_per_sec: rates.0,
            kernel_tokens_per_sec: rates.1,
        });
    };

    // Plain LDA: every topic symmetric.
    {
        let (_, corpus) = world(v, topics, support, docs, doc_len, 21);
        let rates = time_pair(
            |backend, iters| {
                Lda::builder()
                    .topics(topics)
                    .alpha(0.5)
                    .beta(0.05)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("lda", topics, v, &corpus, sweeps, rates);
    }

    // Source-LDA with fixed δ priors (mixture variant).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 22);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Mixture)
                    .unlabeled_topics(topics / 8)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push(
            "srclda_fixed",
            topics + topics / 8,
            v,
            &corpus,
            sweeps,
            rates,
        );
    }

    // The full λ-integrated model, dense integration layout (V ≤ 4096).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 23);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Full)
                    .approximation_steps(steps)
                    .smoothing(SmoothingMode::Identity)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("srclda_integrated", topics, v, &corpus, sweeps, rates);
    }

    // The full λ-integrated model, sparse integration layout (V > 4096;
    // exercises the per-word row pointer that replaced the binary search).
    {
        let (knowledge, corpus) = world(v_sparse, topics, support, docs, doc_len, 24);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Full)
                    .approximation_steps(steps)
                    .smoothing(SmoothingMode::Identity)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push(
            "srclda_integrated_sparse",
            topics,
            v_sparse,
            &corpus,
            sweeps,
            rates,
        );
    }

    // EDA (frozen topics) and CTM (concept sets).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 25);
        let rates = time_pair(
            |backend, iters| {
                Eda::builder()
                    .knowledge_source(knowledge.clone())
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("eda", topics, v, &corpus, sweeps, rates);

        let rates = time_pair(
            |backend, iters| {
                Ctm::builder()
                    .knowledge_source(knowledge.clone())
                    .beta(0.1)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("ctm", topics, v, &corpus, sweeps, rates);
    }

    cells
}

/// Render `BENCH_sweep.json` (hand-rolled: the workspace is offline and
/// vendors no JSON crate; every value is numeric or a static identifier).
fn render_json(scale: Scale, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"sweep_throughput\",\n");
    out.push_str("  \"unit\": \"tokens_per_sec\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n").to_lowercase());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"machine_cores\": {cores},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"topics\": {}, \"vocab\": {}, \"docs\": {}, \
             \"tokens_per_sweep\": {}, \"sweeps\": {}, \
             \"dense_tokens_per_sec\": {:.1}, \"kernel_tokens_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}{}\n",
            c.family,
            c.topics,
            c.vocab,
            c.docs,
            c.tokens_per_sweep,
            c.sweeps,
            c.dense_tokens_per_sec,
            c.kernel_tokens_per_sec,
            c.speedup(),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "TPS",
        "training sweep throughput (dense reference vs kernel)",
        scale,
    );
    let cells = run_cells(scale);
    out.push_str(&format!(
        "{:<26} {:>6} {:>6} {:>14} {:>14} {:>9}\n",
        "family", "T", "V", "dense tok/s", "kernel tok/s", "speedup"
    ));
    for c in &cells {
        out.push_str(&format!(
            "{:<26} {:>6} {:>6} {:>14.0} {:>14.0} {:>8.2}x\n",
            c.family,
            c.topics,
            c.vocab,
            c.dense_tokens_per_sec,
            c.kernel_tokens_per_sec,
            c.speedup()
        ));
    }
    out.push_str(
        "(both backends walk bit-identical chains; tokens/sec counts one \
         token-draw per corpus token per sweep)\n",
    );
    let json = render_json(scale, &cells);
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_sweep.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_sweep.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_covers_every_family_and_emits_json() {
        let cells = run_cells(Scale::Smoke);
        let families: Vec<&str> = cells.iter().map(|c| c.family).collect();
        for f in [
            "lda",
            "srclda_fixed",
            "srclda_integrated",
            "srclda_integrated_sparse",
            "eda",
            "ctm",
        ] {
            assert!(families.contains(&f), "missing family {f}");
        }
        for c in &cells {
            assert!(c.dense_tokens_per_sec > 0.0 && c.kernel_tokens_per_sec > 0.0);
        }
        let json = render_json(Scale::Smoke, &cells);
        assert!(json.contains("\"experiment\": \"sweep_throughput\""));
        assert!(json.contains("\"kernel_tokens_per_sec\""));
        assert!(json.contains("\"scale\": \"smoke\""));
    }
}
