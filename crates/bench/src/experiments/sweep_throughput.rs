//! Training-sweep throughput: tokens/second through the serial collapsed
//! Gibbs sampler, **dense reference sweep vs. optimized kernel**, per model
//! family × topic count × vocabulary size.
//!
//! This is the repo's performance trajectory, not a paper figure: every
//! ROADMAP direction (the Fig. 8f `B = 10000` scaling run, corpus-scale
//! serving) gates on how fast one Gibbs sweep runs, so this experiment
//! times the same fit twice — once with `Backend::SerialDense` (the
//! straightforward per-(token, topic) `word_weight` loop) and once with
//! `Backend::Serial` (flat prior tables, cached reciprocals, sparse
//! document-topic bookkeeping, non-atomic counts) — and reports both in
//! tokens/second. The two backends walk bit-identical chains from the same
//! seed (asserted here on every cell), so the comparison times identical
//! statistical work.
//!
//! On top of the per-family grid, a **high-T family** (`T ∈ {500, 2000}`,
//! λ-integrated priors) also times `Backend::SparseKernel`, the SparseLDA
//! bucket kernel whose per-token cost is O(k_d + k_w) instead of O(T).
//! The sparse kernel consumes the per-token uniform through bucket
//! thresholds, so it walks a *different* (equally valid) chain — no
//! bit-assert is possible; its distribution-level equivalence contract
//! lives in `tests/kernel_equivalence.rs` and the `sampler::sparse`
//! property tests. Here it is timed on the same corpus and sweep counts
//! as the dense kernels, and the JSON gains `sparse_tokens_per_sec` /
//! `sparse_speedup` columns for those cells.
//!
//! Besides the printed report, the experiment writes `BENCH_sweep.json`
//! into the working directory so CI and future PRs have a machine-readable
//! perf baseline to beat.

use crate::cli::{banner, Scale};
use srclda_core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use srclda_core::{Backend, Ctm, Eda, FittedModel, Lda, SmoothingMode, SourceLda, Variant};
use srclda_corpus::Corpus;
use srclda_knowledge::KnowledgeSource;
use srclda_synth::random_source_topics;
use std::time::Instant;

/// One benchmark cell: a model family at a (T, V) shape.
struct Cell {
    family: &'static str,
    topics: usize,
    vocab: usize,
    docs: usize,
    tokens_per_sweep: usize,
    sweeps: usize,
    dense_tokens_per_sec: f64,
    kernel_tokens_per_sec: f64,
    /// Sub-linear bucket-kernel throughput (`Backend::SparseKernel`), only
    /// measured on the high-T λ-integrated family where the O(T) kernels
    /// crawl; `None` for the ordinary per-family cells.
    sparse_tokens_per_sec: Option<f64>,
    /// True when either backend's differential timing never produced a
    /// positive delta (see [`differential_rate`]): the reported rates are
    /// whole-run fallbacks, not sweep-only throughput.
    unreliable: bool,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.kernel_tokens_per_sec / self.dense_tokens_per_sec.max(1e-9)
    }

    /// Sparse-kernel speedup over the O(T) optimized kernel (not over the
    /// dense reference — the interesting ratio is against the best dense
    /// competitor).
    fn sparse_speedup(&self) -> Option<f64> {
        self.sparse_tokens_per_sec
            .map(|s| s / self.kernel_tokens_per_sec.max(1e-9))
    }
}

/// Synthetic world shared by a cell: source topics over a `v`-word
/// vocabulary and a corpus generated from them.
pub(crate) fn world(
    v: usize,
    topics: usize,
    support: usize,
    docs: usize,
    doc_len: usize,
    seed: u64,
) -> (KnowledgeSource, Corpus) {
    let (vocab, knowledge) = random_source_topics(v, topics, support, 200, seed);
    let active: Vec<usize> = (0..topics.min(24)).collect();
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: docs,
        doc_len: DocLength::Fixed(doc_len),
        lambda_mode: LambdaMode::None,
        seed: seed ^ 0x5eed,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&active), &vocab)
    .expect("generation succeeds");
    (knowledge, generated.corpus)
}

/// How many times [`differential_rate`] doubles the sweep counts looking
/// for a positive timing delta before giving up.
const MAX_RETRIES: usize = 3;

/// Sweep-only tokens/sec from differential timing, with noise detection.
///
/// `time_of(iters)` returns the (best-of-several) seconds for a fit at
/// `iters` sweeps. The rate comes from timing two sweep counts (`sweeps`
/// and `sweeps/4`) and dividing the token delta by the time *difference*,
/// so fixed setup cost (prior construction, count init, φ/θ extraction)
/// cancels exactly.
///
/// On a noisy box the difference can come out non-positive — the full run
/// raced a quiet scheduler while the base run ate an interrupt. The old
/// `(full - base).max(1e-9)` clamp silently turned that into *billions*
/// of tokens/sec. Instead: retry with doubled sweep counts (the sweep
/// signal grows linearly while timer noise does not), bounded at
/// [`MAX_RETRIES`] doublings; if the delta never goes positive, fall back
/// to the whole-run rate (a real, conservative measurement that includes
/// setup) and return `unreliable = true` so the JSON entry is marked
/// rather than fabricated.
pub(crate) fn differential_rate(
    mut time_of: impl FnMut(usize) -> f64,
    tokens_per_sweep: usize,
    sweeps: usize,
) -> (f64, bool) {
    let mut sweeps_now = sweeps;
    for _ in 0..=MAX_RETRIES {
        let base = (sweeps_now / 4).max(1);
        assert!(sweeps_now > base, "need two distinct sweep counts");
        let base_secs = time_of(base);
        let full_secs = time_of(sweeps_now);
        let delta_secs = full_secs - base_secs;
        if delta_secs > 0.0 {
            let delta_tokens = (tokens_per_sweep * (sweeps_now - base)) as f64;
            return (delta_tokens / delta_secs, false);
        }
        sweeps_now *= 2;
    }
    let full_secs = time_of(sweeps_now).max(1e-9);
    ((tokens_per_sweep * sweeps_now) as f64 / full_secs, true)
}

/// Time the sweeps of one model per backend ([`differential_rate`], best
/// of two runs per sweep count) and assert the chains are identical, so
/// both timings cover the same statistical work. Returns
/// `(dense tokens/sec, kernel tokens/sec, unreliable)`.
fn time_pair<F: Fn(Backend, usize) -> FittedModel>(
    fit: F,
    tokens_per_sweep: usize,
    sweeps: usize,
) -> (f64, f64, bool) {
    // Chain equivalence is checked on dedicated fits at the nominal sweep
    // count, independent of however many sweeps the timing loop ends up
    // using — the two concerns must not share a knob.
    let dense_fit = fit(Backend::SerialDense, sweeps);
    let kernel_fit = fit(Backend::Serial, sweeps);
    assert_eq!(
        dense_fit.assignments(),
        kernel_fit.assignments(),
        "kernel chain diverged from dense reference"
    );
    let fit = &fit;
    let time_of = |backend: Backend| {
        move |iters: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let _ = fit(backend, iters);
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    let (dense, dense_unreliable) =
        differential_rate(time_of(Backend::SerialDense), tokens_per_sweep, sweeps);
    let (kernel, kernel_unreliable) =
        differential_rate(time_of(Backend::Serial), tokens_per_sweep, sweeps);
    (dense, kernel, dense_unreliable || kernel_unreliable)
}

/// Time the dense reference, the optimized kernel, *and* the sub-linear
/// bucket kernel on one model ([`differential_rate`] each). No chain
/// assert between the dense pair and `SparseKernel`: the bucket kernel
/// legitimately walks a different chain (see the module docs); its
/// equivalence contract is distribution-level and lives in the test
/// suites, not here. Returns
/// `(dense tok/s, kernel tok/s, sparse tok/s, unreliable)`.
fn time_triple<F: Fn(Backend, usize) -> FittedModel>(
    fit: F,
    tokens_per_sweep: usize,
    sweeps: usize,
) -> (f64, f64, f64, bool) {
    let fit = &fit;
    let time_of = |backend: Backend| {
        move |iters: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let _ = fit(backend, iters);
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        }
    };
    let (dense, dense_unreliable) =
        differential_rate(time_of(Backend::SerialDense), tokens_per_sweep, sweeps);
    let (kernel, kernel_unreliable) =
        differential_rate(time_of(Backend::Serial), tokens_per_sweep, sweeps);
    let (sparse, sparse_unreliable) =
        differential_rate(time_of(Backend::SparseKernel), tokens_per_sweep, sweeps);
    (
        dense,
        kernel,
        sparse,
        dense_unreliable || kernel_unreliable || sparse_unreliable,
    )
}

/// Run every family cell for a scale.
fn run_cells(scale: Scale) -> Vec<Cell> {
    let topics = scale.pick(48, 128, 512);
    let v = scale.pick(1500, 3000, 4000);
    let v_sparse = scale.pick(6000, 9000, 12000);
    let docs = scale.pick(60, 150, 300);
    let doc_len = scale.pick(60, 80, 100);
    let sweeps = scale.pick(40, 40, 40);
    let support = scale.pick(12, 25, 40);
    // The paper's default quadrature depth (ModelConfig::approximation_steps).
    let steps = 8;

    let mut cells = Vec::new();
    let mut push = |family: &'static str,
                    topics: usize,
                    vocab: usize,
                    corpus: &Corpus,
                    sweeps: usize,
                    rates: (f64, f64, bool)| {
        cells.push(Cell {
            family,
            topics,
            vocab,
            docs: corpus.num_docs(),
            tokens_per_sweep: corpus.num_tokens(),
            sweeps,
            dense_tokens_per_sec: rates.0,
            kernel_tokens_per_sec: rates.1,
            sparse_tokens_per_sec: None,
            unreliable: rates.2,
        });
    };

    // Plain LDA: every topic symmetric.
    {
        let (_, corpus) = world(v, topics, support, docs, doc_len, 21);
        let rates = time_pair(
            |backend, iters| {
                Lda::builder()
                    .topics(topics)
                    .alpha(0.5)
                    .beta(0.05)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("lda", topics, v, &corpus, sweeps, rates);
    }

    // Source-LDA with fixed δ priors (mixture variant).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 22);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Mixture)
                    .unlabeled_topics(topics / 8)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push(
            "srclda_fixed",
            topics + topics / 8,
            v,
            &corpus,
            sweeps,
            rates,
        );
    }

    // The full λ-integrated model, dense integration layout (V ≤ 4096).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 23);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Full)
                    .approximation_steps(steps)
                    .smoothing(SmoothingMode::Identity)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("srclda_integrated", topics, v, &corpus, sweeps, rates);
    }

    // The full λ-integrated model, sparse integration layout (V > 4096;
    // exercises the per-word row pointer that replaced the binary search).
    {
        let (knowledge, corpus) = world(v_sparse, topics, support, docs, doc_len, 24);
        let rates = time_pair(
            |backend, iters| {
                SourceLda::builder()
                    .knowledge_source(knowledge.clone())
                    .variant(Variant::Full)
                    .approximation_steps(steps)
                    .smoothing(SmoothingMode::Identity)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push(
            "srclda_integrated_sparse",
            topics,
            v_sparse,
            &corpus,
            sweeps,
            rates,
        );
    }

    // EDA (frozen topics) and CTM (concept sets).
    {
        let (knowledge, corpus) = world(v, topics, support, docs, doc_len, 25);
        let rates = time_pair(
            |backend, iters| {
                Eda::builder()
                    .knowledge_source(knowledge.clone())
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("eda", topics, v, &corpus, sweeps, rates);

        let rates = time_pair(
            |backend, iters| {
                Ctm::builder()
                    .knowledge_source(knowledge.clone())
                    .beta(0.1)
                    .alpha(0.5)
                    .iterations(iters)
                    .backend(backend)
                    .seed(7)
                    .build()
                    .expect("valid model")
                    .fit(&corpus)
                    .expect("fit succeeds")
            },
            corpus.num_tokens(),
            sweeps,
        );
        push("ctm", topics, v, &corpus, sweeps, rates);
    }

    // High-T λ-integrated family: T ∈ {500, 2000} at every scale, where the
    // O(T)-per-token kernels crawl and the sub-linear bucket kernel is the
    // point of the cell. Vocabulary stays above the dense-integration cutoff
    // so the tables take the memory-light sparse layout (a 2000-topic dense
    // table at these shapes would be hundreds of MB); token counts and
    // sweep counts shrink relative to the per-family grid because every
    // sweep costs O(T) per token on the dense side.
    {
        let v_t = scale.pick(6000, 9000, 12000);
        let docs_t = scale.pick(30, 80, 150);
        let doc_len_t = scale.pick(40, 60, 80);
        let sweeps_t = scale.pick(4, 12, 16);
        for (family, t_big, seed) in [
            ("srclda_integrated_t500", 500usize, 26u64),
            ("srclda_integrated_t2000", 2000, 27),
        ] {
            let (knowledge, corpus) = world(v_t, t_big, support, docs_t, doc_len_t, seed);
            let (dense, kernel, sparse, unreliable) = time_triple(
                |backend, iters| {
                    SourceLda::builder()
                        .knowledge_source(knowledge.clone())
                        .variant(Variant::Full)
                        .approximation_steps(steps)
                        .smoothing(SmoothingMode::Identity)
                        .alpha(0.5)
                        .iterations(iters)
                        .backend(backend)
                        .seed(7)
                        .build()
                        .expect("valid model")
                        .fit(&corpus)
                        .expect("fit succeeds")
                },
                corpus.num_tokens(),
                sweeps_t,
            );
            cells.push(Cell {
                family,
                topics: t_big,
                vocab: v_t,
                docs: corpus.num_docs(),
                tokens_per_sweep: corpus.num_tokens(),
                sweeps: sweeps_t,
                dense_tokens_per_sec: dense,
                kernel_tokens_per_sec: kernel,
                sparse_tokens_per_sec: Some(sparse),
                unreliable,
            });
        }
    }

    cells
}

/// Render `BENCH_sweep.json` (hand-rolled: the workspace is offline and
/// vendors no JSON crate; every value is numeric or a static identifier).
fn render_json(scale: Scale, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"sweep_throughput\",\n");
    out.push_str("  \"unit\": \"tokens_per_sec\",\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n").to_lowercase());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"machine_cores\": {cores},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sparse_cols = match (c.sparse_tokens_per_sec, c.sparse_speedup()) {
            (Some(rate), Some(speedup)) => {
                format!(", \"sparse_tokens_per_sec\": {rate:.1}, \"sparse_speedup\": {speedup:.3}")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"topics\": {}, \"vocab\": {}, \"docs\": {}, \
             \"tokens_per_sweep\": {}, \"sweeps\": {}, \
             \"dense_tokens_per_sec\": {:.1}, \"kernel_tokens_per_sec\": {:.1}, \
             \"speedup\": {:.3}{}, \"unreliable\": {}}}{}\n",
            c.family,
            c.topics,
            c.vocab,
            c.docs,
            c.tokens_per_sweep,
            c.sweeps,
            c.dense_tokens_per_sec,
            c.kernel_tokens_per_sec,
            c.speedup(),
            sparse_cols,
            c.unreliable,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "TPS",
        "training sweep throughput (dense reference vs kernel)",
        scale,
    );
    let cells = run_cells(scale);
    out.push_str(&format!(
        "{:<26} {:>6} {:>6} {:>14} {:>14} {:>9} {:>14} {:>9}\n",
        "family", "T", "V", "dense tok/s", "kernel tok/s", "speedup", "sparse tok/s", "sparse/k"
    ));
    for c in &cells {
        let (sparse_rate, sparse_speedup) = match (c.sparse_tokens_per_sec, c.sparse_speedup()) {
            (Some(rate), Some(speedup)) => (format!("{rate:.0}"), format!("{speedup:.2}x")),
            _ => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<26} {:>6} {:>6} {:>14.0} {:>14.0} {:>8.2}x {:>14} {:>9}{}\n",
            c.family,
            c.topics,
            c.vocab,
            c.dense_tokens_per_sec,
            c.kernel_tokens_per_sec,
            c.speedup(),
            sparse_rate,
            sparse_speedup,
            if c.unreliable { "  UNRELIABLE" } else { "" },
        ));
    }
    out.push_str(
        "(dense and kernel walk bit-identical chains; the sparse bucket \
         kernel walks its own chain over the same conditionals — see \
         tests/kernel_equivalence.rs; tokens/sec counts one token-draw per \
         corpus token per sweep)\n",
    );
    let json = render_json(scale, &cells);
    match std::fs::write("BENCH_sweep.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_sweep.json\n"),
        Err(e) => out.push_str(&format!("warning: could not write BENCH_sweep.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_rate_uses_the_delta_when_it_is_positive() {
        // A clean machine: time is exactly setup + per-sweep cost.
        let time_of = |iters: usize| 0.5 + iters as f64 * 0.01;
        let (rate, unreliable) = differential_rate(time_of, 1000, 40);
        assert!(!unreliable);
        // Setup cancels: (40 − 10) sweeps · 1000 tokens / 0.30 s.
        assert!((rate - 100_000.0).abs() < 1e-6, "rate = {rate}");
    }

    #[test]
    fn non_positive_delta_retries_with_doubled_sweeps() {
        // The first attempt is swamped by noise (base slower than full);
        // every later attempt is clean. The rate must come from the
        // *doubled* sweep counts and still be reliable.
        let mut calls: Vec<usize> = Vec::new();
        let mut attempt = 0usize;
        let time_of = |iters: usize| {
            calls.push(iters);
            attempt += 1;
            if attempt <= 2 {
                1.0 // base_secs == full_secs → delta 0
            } else {
                0.5 + iters as f64 * 0.01
            }
        };
        let (rate, unreliable) = differential_rate(time_of, 1000, 40);
        assert!(!unreliable);
        assert!((rate - 100_000.0).abs() < 1e-6, "rate = {rate}");
        assert_eq!(calls, [10, 40, 20, 80], "second attempt doubles the sweeps");
    }

    #[test]
    fn persistent_non_positive_delta_is_marked_unreliable_not_fabricated() {
        // Pathological timer: every measurement is the same constant, so
        // no amount of doubling produces a positive delta.
        let mut calls = 0usize;
        let (rate, unreliable) = differential_rate(
            |_| {
                calls += 1;
                2.0
            },
            1000,
            40,
        );
        assert!(unreliable, "a zero delta must be flagged");
        // Fallback is the whole-run rate at the final (maximally doubled)
        // sweep count: 40·2^(MAX_RETRIES+1) sweeps · 1000 tokens / 2 s —
        // six orders of magnitude below what the old 1e-9 clamp reported.
        let final_sweeps = 40 << (MAX_RETRIES + 1);
        let expect = (final_sweeps * 1000) as f64 / 2.0;
        assert!(
            (rate - expect).abs() < 1e-6,
            "rate = {rate}, expect {expect}"
        );
        assert!(rate < 1e9, "must not fabricate billions of tokens/sec");
        // Bounded: two timings per attempt, plus one fallback timing.
        assert_eq!(calls, 2 * (MAX_RETRIES + 1) + 1);
    }

    #[test]
    fn smoke_report_covers_every_family_and_emits_json() {
        let cells = run_cells(Scale::Smoke);
        let families: Vec<&str> = cells.iter().map(|c| c.family).collect();
        for f in [
            "lda",
            "srclda_fixed",
            "srclda_integrated",
            "srclda_integrated_sparse",
            "eda",
            "ctm",
            "srclda_integrated_t500",
            "srclda_integrated_t2000",
        ] {
            assert!(families.contains(&f), "missing family {f}");
        }
        for c in &cells {
            assert!(c.dense_tokens_per_sec > 0.0 && c.kernel_tokens_per_sec > 0.0);
            // The sparse column exists exactly on the high-T family, and is
            // a real (positive) measurement there.
            let high_t = c.family.starts_with("srclda_integrated_t");
            assert_eq!(c.sparse_tokens_per_sec.is_some(), high_t, "{}", c.family);
            if let Some(rate) = c.sparse_tokens_per_sec {
                assert!(rate > 0.0, "{}: sparse rate {rate}", c.family);
            }
        }
        let json = render_json(Scale::Smoke, &cells);
        assert!(json.contains("\"experiment\": \"sweep_throughput\""));
        assert!(json.contains("\"kernel_tokens_per_sec\""));
        assert!(json.contains("\"sparse_tokens_per_sec\""));
        assert!(json.contains("\"sparse_speedup\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"unreliable\": "));
    }
}
