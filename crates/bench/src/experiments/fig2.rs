//! Figure 2: boxplots of the JS divergence between each knowledge-source
//! distribution and 1,000 Dirichlet draws parameterized by its source
//! hyperparameters, for the 20 economic-indicator topics.
//!
//! The figure demonstrates that `Dir(X)` draws hug the source distribution
//! (median JS ≲ 0.1) with topic-dependent spread — the variability that
//! motivates the λ relaxation.

use crate::cli::{banner, Scale};
use srclda_knowledge::smoothing::sample_js_divergences;
use srclda_math::{rng_from_seed, BoxplotSummary};
use srclda_synth::{SyntheticWikipedia, WikipediaConfig, ECONOMIC_INDICATOR_TOPICS};

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "F2",
        "source-hyperparameter Dirichlet variability (Fig. 2)",
        scale,
    );
    let draws = scale.pick(100, 1000, 1000);
    let wiki = SyntheticWikipedia::generate(
        ECONOMIC_INDICATOR_TOPICS,
        &WikipediaConfig {
            seed: 2,
            ..WikipediaConfig::default()
        },
    );
    let mut rng = rng_from_seed(22);
    let mut medians = Vec::new();
    for topic in wiki.knowledge.topics() {
        let samples = sample_js_divergences(topic, 0.01, 1.0, draws, &mut rng);
        let summary = BoxplotSummary::from_samples(&samples).expect("non-empty samples");
        medians.push(summary.median);
        out.push_str(&summary.render_row(topic.label()));
        out.push('\n');
    }
    let overall = srclda_math::stats::median(&medians);
    out.push_str(&format!(
        "\nmedian-of-medians JS divergence: {overall:.4} (paper's Fig. 2 range: ~0.02–0.15)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topics_reported_with_small_divergence() {
        let report = run(Scale::Smoke);
        for label in ECONOMIC_INDICATOR_TOPICS {
            assert!(report.contains(label), "{label} missing from report");
        }
        // Shape check: draws parameterized by raw counts stay close to the
        // source distribution, as in the paper's Fig. 2.
        let median: f64 = report
            .split("median-of-medians JS divergence: ")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(median < 0.2, "median divergence too large: {median}");
        assert!(median > 0.0);
    }
}
