//! Figure 8(f): performance benchmarking of the parallel samplers (§IV.E).
//!
//! "To show the performance gains used by the parallel sampling algorithm
//! an experiment was set up to generate topics randomly from a given
//! vocabulary. The corpus was generated using the same parameters as in
//! Section 4(B) but with B ranging from 100 to 10000." The figure plots
//! average iteration time against `B` for 1, 3 and 6 threads and shows
//! linear scaling in `B`.

use crate::cli::{banner, Scale};
use srclda_core::generative::{DocLength, LambdaMode, SourceLdaGenerator};
use srclda_core::{Backend, SmoothingMode, SourceLda, Variant};
use srclda_eval::Series;
use srclda_knowledge::SmoothingConfig;
use srclda_synth::random_source_topics;
use std::time::Instant;

/// Average seconds per Gibbs iteration for one (B, backend) cell.
fn time_cell(b: usize, backend: Backend, scale: Scale, iters: usize) -> f64 {
    let vocab_size = scale.pick(400, 1500, 2000);
    let support = scale.pick(10, 25, 40);
    let (vocab, knowledge) = random_source_topics(vocab_size, b, support, 300, 42);
    // Corpus from the first 100 (or fewer) topics, as in §IV.B.
    let active: Vec<usize> = (0..b.min(100)).collect();
    let generated = SourceLdaGenerator {
        alpha: 0.5,
        num_docs: scale.pick(40, 200, 500),
        doc_len: DocLength::Fixed(scale.pick(40, 100, 100)),
        lambda_mode: LambdaMode::None,
        seed: 4242,
        ..SourceLdaGenerator::default()
    }
    .generate(&knowledge.select(&active), &vocab)
    .expect("generation succeeds");
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .lambda_prior(0.5, 1.0)
        .approximation_steps(scale.pick(2, 4, 4))
        .smoothing(SmoothingMode::Shared(SmoothingConfig {
            grid_points: 6,
            samples_per_point: 15,
        }))
        .alpha(0.5)
        .iterations(iters)
        .backend(backend)
        .seed(5)
        .build()
        .expect("valid model");
    let start = Instant::now();
    let _ = model.fit(&generated.corpus).expect("fit succeeds");
    start.elapsed().as_secs_f64() / iters as f64
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner("F8f", "parallel sampler scaling (Fig. 8 f)", scale);
    let bs: Vec<usize> = match scale {
        Scale::Smoke => vec![50, 150],
        Scale::Default => vec![100, 300, 1000, 3000],
        Scale::Full => vec![100, 300, 1000, 3000, 10000],
    };
    let iters = scale.pick(2, 3, 3);
    // The paper benchmarks 1/3/6 threads on a 6-core box. Spin-barrier
    // samplers degrade when oversubscribed, so cap at the machine's actual
    // parallelism and report what ran.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts: Vec<usize> = [1usize, 3, 6].into_iter().map(|t| t.min(cores)).collect();
    thread_counts.dedup();
    if thread_counts.len() == 1 {
        // Single-core machine: still time one (oversubscribed) parallel
        // pool so the serial-vs-parallel speedup comparison is exercised.
        thread_counts.push(2);
    }
    out.push_str(&format!(
        "machine parallelism: {cores} cores; thread counts benchmarked: {thread_counts:?}\n"
    ));
    let mut series = Series::new("B", bs.iter().map(|&b| b as f64).collect());
    let mut final_row = Vec::new();
    for &threads in &thread_counts {
        let backend = if threads == 1 {
            Backend::Serial
        } else {
            Backend::SimpleParallel { threads }
        };
        let col: Vec<f64> = bs
            .iter()
            .map(|&b| time_cell(b, backend, scale, iters))
            .collect();
        final_row.push(*col.last().expect("non-empty"));
        series.push_column(format!("{threads}-threads_sec_per_iter"), col);
    }
    out.push_str(&series.render());
    for (i, &threads) in thread_counts.iter().enumerate().skip(1) {
        out.push_str(&format!(
            "\nspeedup at B = {}: {threads} threads {:.2}x over serial",
            bs.last().expect("non-empty"),
            final_row[0] / final_row[i],
        ));
    }
    out.push_str("\n(paper: linear scaling in B; parallel backends pay off once T is large)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_grow_with_b() {
        let small = time_cell(30, Backend::Serial, Scale::Smoke, 2);
        let large = time_cell(240, Backend::Serial, Scale::Smoke, 2);
        assert!(small > 0.0);
        assert!(
            large > small,
            "iteration time should grow with B: {small} vs {large}"
        );
    }

    #[test]
    fn parallel_backend_produces_timings() {
        let t = time_cell(60, Backend::SimpleParallel { threads: 2 }, Scale::Smoke, 1);
        assert!(t.is_finite() && t > 0.0);
    }
}
