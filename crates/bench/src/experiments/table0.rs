//! §I case-study table: four post-hoc labeling techniques applied to a
//! *mixed* LDA result on the two-document corpus, contrasted with the
//! bijective Source-LDA assignment.
//!
//! The paper's point: when LDA mixes "School Supplies" and "Baseball"
//! tokens into impure topics, every post-hoc mapper assigns both topics the
//! same label, whereas integrating the prior knowledge *during* inference
//! (Source-LDA) separates them.

use crate::cli::{banner, Scale};
use srclda_core::{SourceLda, Variant};
use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};
use srclda_eval::Table;
use srclda_knowledge::{KnowledgeSource, KnowledgeSourceBuilder};
use srclda_labeling::{
    CountingLabeler, JsDivergenceLabeler, LabelingContext, PmiLabeler, TfIdfCosineLabeler,
    TopicLabeler,
};

fn case_corpus() -> Corpus {
    let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
    b.add_tokens("d1", &["pencil", "pencil", "umpire"]);
    b.add_tokens("d2", &["ruler", "ruler", "baseball"]);
    b.build()
}

/// Synthetic stand-ins for the Wikipedia articles: the Baseball article is
/// long and even mentions score-keeping pencils, the School Supplies page
/// is a short list — mirroring the real pages' shapes, which is what made
/// the paper's mappers collapse to one label.
fn case_knowledge(corpus: &Corpus) -> KnowledgeSource {
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_counts(
        "School Supplies",
        vec![("pencil".into(), 6.0), ("ruler".into(), 5.0)],
    );
    ks.add_counts(
        "Baseball",
        vec![
            ("baseball".into(), 90.0),
            ("umpire".into(), 45.0),
            ("pencil".into(), 3.0),
            ("ruler".into(), 2.0),
        ],
    );
    ks.build(corpus.vocabulary())
}

/// The mixed LDA outcome shown in §I: topic 1 = {pencil ×2, baseball},
/// topic 2 = {ruler ×2, umpire}.
fn mixed_lda_phi(corpus: &Corpus) -> Vec<Vec<f64>> {
    let v = corpus.vocab_size();
    let idx = |w: &str| corpus.vocabulary().get(w).unwrap().index();
    let mut t1 = vec![1e-9; v];
    t1[idx("pencil")] = 2.0 / 3.0;
    t1[idx("baseball")] = 1.0 / 3.0;
    let mut t2 = vec![1e-9; v];
    t2[idx("ruler")] = 2.0 / 3.0;
    t2[idx("umpire")] = 1.0 / 3.0;
    vec![t1, t2]
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner("T0", "case-study labeling table (§I)", scale);
    let corpus = case_corpus();
    let knowledge = case_knowledge(&corpus);
    let phi = mixed_lda_phi(&corpus);
    let mut ctx = LabelingContext::new(&knowledge, &corpus);
    ctx.top_n = 2;

    let mut table = Table::new(["Technique", "Topic 1", "Topic 2"]);
    let labelers: Vec<Box<dyn TopicLabeler>> = vec![
        Box::new(JsDivergenceLabeler),
        Box::new(TfIdfCosineLabeler),
        Box::new(CountingLabeler),
        Box::new(PmiLabeler::default()),
    ];
    let mut duplicate_rows = 0;
    for labeler in &labelers {
        let labels = labeler.label(&phi, &ctx);
        if labels[0].label == labels[1].label {
            duplicate_rows += 1;
        }
        table.push_row([
            labeler.name().to_string(),
            labels[0].label.clone(),
            labels[1].label.clone(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\npost-hoc mappers assigning one label to both mixed topics: {duplicate_rows}/4\n"
    ));

    // Contrast: bijective Source-LDA resolves the tokens correctly.
    let model = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(scale.pick(100, 400, 1000))
        .seed(2017)
        .build()
        .expect("valid model");
    let fitted = model.fit(&corpus).expect("fit succeeds");
    out.push_str("\nSource-LDA (bijective) token assignments:\n");
    for (d, doc) in corpus.iter() {
        let words: Vec<String> = doc
            .tokens()
            .iter()
            .zip(&fitted.assignments()[d.index()])
            .map(|(&w, &z)| {
                format!(
                    "{}→{}",
                    corpus.vocabulary().word(w),
                    fitted.label(z as usize).unwrap_or("?")
                )
            })
            .collect();
        out.push_str(&format!(
            "  {}: {}\n",
            doc.name().unwrap_or("?"),
            words.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_topics_collapse_to_duplicate_labels() {
        let report = run(Scale::Smoke);
        // The headline phenomenon of the paper's case study.
        assert!(report.contains("mixed topics: "));
        let dup: usize = report
            .split("mixed topics: ")
            .nth(1)
            .unwrap()
            .chars()
            .next()
            .unwrap()
            .to_digit(10)
            .unwrap() as usize;
        assert!(dup >= 3, "expected most mappers to duplicate, got {dup}");
    }

    #[test]
    fn source_lda_separates_the_tokens() {
        let report = run(Scale::Smoke);
        assert!(report.contains("pencil→School Supplies"));
        assert!(report.contains("umpire→Baseball"));
        assert!(report.contains("baseball→Baseball"));
    }
}
