//! Table I (§IV.C): top-10 word lists for Source-LDA, IR-LDA, and CTM on
//! the Reuters-like newswire, plus the labeled-topic discovery counts.
//!
//! Shape targets from the paper: Source-LDA's word lists are cleaner than
//! IR-LDA's (which mixes concepts) and CTM's (which over-weights
//! unimportant bag words); Source-LDA discovers far more labeled topics
//! than CTM (15 vs 6 in the paper's run).

use crate::cli::{banner, Scale};
use srclda_core::generative::DocLength;
use srclda_core::reduction::{reduce, ReductionPolicy};
use srclda_core::{Ctm, Lda, SmoothingMode, SourceLda, Variant};
use srclda_eval::Table;
use srclda_knowledge::SmoothingConfig;
use srclda_labeling::{IrLda, LabelingContext, TfIdfCosineLabeler, TopicLabeler};
use srclda_synth::wikipedia::WikipediaConfig;
use srclda_synth::{ReutersConfig, ReutersLikeDataset};

/// The three labels Table I displays.
const DISPLAY_TOPICS: &[&str] = &["Inventories", "Natural Gas", "Balance of Payments"];

fn dataset(scale: Scale) -> ReutersLikeDataset {
    ReutersLikeDataset::generate(&ReutersConfig {
        num_docs: scale.pick(120, 800, 2000),
        doc_len: DocLength::Fixed(scale.pick(40, 60, 80)),
        superset: scale.pick(20, 80, 80),
        active_topics: scale.pick(12, 49, 49),
        wikipedia: WikipediaConfig {
            core_words_per_topic: scale.pick(15, 40, 60),
            shared_vocab: scale.pick(80, 300, 400),
            article_len: scale.pick(250, 800, 1200),
            seed: 41,
            ..WikipediaConfig::default()
        },
        ..ReutersConfig::default()
    })
}

fn top_words(corpus: &srclda_corpus::Corpus, phi_row: &[f64], n: usize) -> Vec<String> {
    srclda_math::simplex::top_n_indices(phi_row, n)
        .into_iter()
        .map(|w| {
            corpus
                .vocabulary()
                .word(srclda_corpus::WordId::new(w))
                .to_string()
        })
        .collect()
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner("T1", "Reuters newswire top-word lists (Table I)", scale);
    let data = dataset(scale);
    let corpus = &data.generated.corpus;
    let t_total = scale.pick(24usize, 100, 100);
    let k_unlabeled = t_total - data.knowledge.len().min(t_total);
    let iterations = scale.pick(60, 250, 1000);
    // The paper's hyperparameters: α = 50/T, β = 200/V.
    let alpha = 50.0 / t_total as f64;
    let beta = 200.0 / corpus.vocab_size() as f64;

    // Source-LDA (full model, superset input).
    let src = SourceLda::builder()
        .knowledge_source(data.knowledge.clone())
        .variant(Variant::Full)
        .unlabeled_topics(k_unlabeled)
        .alpha(alpha)
        .beta(beta)
        .lambda_prior(0.7, 0.3)
        .approximation_steps(scale.pick(4, 6, 8))
        .smoothing(SmoothingMode::Shared(SmoothingConfig {
            grid_points: 8,
            samples_per_point: scale.pick(20, 40, 60),
        }))
        .iterations(iterations)
        .seed(3)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");

    // IR-LDA baseline.
    let ir = IrLda::new(
        Lda::builder()
            .topics(t_total)
            .alpha(alpha)
            .beta(beta)
            .iterations(iterations)
            .seed(3)
            .build()
            .expect("valid model"),
    )
    .run(corpus, &data.knowledge)
    .expect("IR-LDA succeeds");

    // CTM baseline.
    let ctm = Ctm::builder()
        .knowledge_source(data.knowledge.clone())
        .unconstrained_topics(k_unlabeled)
        .alpha(alpha)
        .beta(beta)
        .iterations(iterations)
        .seed(3)
        .build()
        .expect("valid model")
        .fit(corpus)
        .expect("fit succeeds");

    // IR-LDA score matrix: used to find, for each display label, the LDA
    // topic that *best* matches it (the forced-assignment argmax rarely
    // lands on a specific label among 80 candidates).
    let ir_phi_rows = ir.fitted.phi().to_rows();
    let ir_scores = TfIdfCosineLabeler
        .score_matrix(&ir_phi_rows, &LabelingContext::new(&data.knowledge, corpus));

    // Top-10 lists for the display topics.
    let n = 10;
    for label in DISPLAY_TOPICS {
        let source_index = match data.knowledge.find(label) {
            Some((i, _)) => i,
            None => continue, // smoke scale may truncate the superset
        };
        let mut table = Table::new(["rank", "SRC-LDA", "IR-LDA", "CTM"]);
        let src_row = src
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some(*label))
            .map(|t| top_words(corpus, src.phi_row(t), n));
        let ir_row = (0..ir_scores.len())
            .max_by(|&a, &b| {
                ir_scores[a][source_index]
                    .partial_cmp(&ir_scores[b][source_index])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|t| top_words(corpus, ir.fitted.phi_row(t), n));
        let ctm_row = ctm
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some(*label))
            .map(|t| top_words(corpus, ctm.phi_row(t), n));
        let blank = vec!["-".to_string(); n];
        let src_row = src_row.unwrap_or_else(|| blank.clone());
        let ir_row = ir_row.unwrap_or_else(|| blank.clone());
        let ctm_row = ctm_row.unwrap_or_else(|| blank.clone());
        for i in 0..n {
            table.push_row([
                format!("{}", i + 1),
                src_row.get(i).cloned().unwrap_or_default(),
                ir_row.get(i).cloned().unwrap_or_default(),
                ctm_row.get(i).cloned().unwrap_or_default(),
            ]);
        }
        out.push_str(&format!("\nTopic: {label}\n"));
        out.push_str(&table.render());
    }

    // Discovery counts via the superset reduction (§III.C.3). The bar must
    // scale with corpus size: inactive candidates always soak up a trickle
    // of background tokens, so "frequent enough" means a few percent of the
    // documents with substantial per-document use.
    let min_docs = (corpus.num_docs() / 40).max(2);
    let policy = ReductionPolicy::DocFrequency {
        min_docs,
        min_tokens: 4,
    };
    let active_labels: Vec<&str> = data
        .active
        .iter()
        .map(|&i| data.knowledge.topic(i).label())
        .collect();
    // (discovered, correctly-discovered) per model.
    let tally = |fitted: &srclda_core::FittedModel| -> (usize, usize) {
        match reduce(fitted, policy) {
            Ok(r) => {
                let discovered = r.labels.iter().flatten().count();
                let correct = r
                    .labels
                    .iter()
                    .flatten()
                    .filter(|l| active_labels.contains(&l.as_str()))
                    .count();
                (discovered, correct)
            }
            Err(_) => (0, 0),
        }
    };
    let (src_discovered, src_correct) = tally(&src);
    let (ctm_discovered, ctm_correct) = tally(&ctm);
    out.push_str(&format!(
        "\nlabeled topics discovered (doc-frequency ≥ {min_docs}): SRC-LDA {src_discovered}, CTM {ctm_discovered} \
         (ground truth: {} active; paper run: SRC 15, CTM 6)\n",
        data.active.len()
    ));
    out.push_str(&format!(
        "discovered-label precision: SRC-LDA {src_correct}/{src_discovered}, CTM {ctm_correct}/{ctm_discovered}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_tables_and_counts() {
        let report = run(Scale::Smoke);
        assert!(report.contains("Inventories") || report.contains("discovered"));
        assert!(report.contains("SRC-LDA"));
        assert!(report.contains("labeled topics discovered"));
    }

    #[test]
    fn src_discovery_is_precise_and_covers_the_truth() {
        let report = run(Scale::Smoke);
        let tail = report
            .split("discovered-label precision: ")
            .nth(1)
            .expect("precision line present");
        let parse_frac = |chunk: &str| -> (usize, usize) {
            let frac = chunk
                .split_whitespace()
                .next()
                .unwrap()
                .trim_end_matches(',');
            let mut parts = frac.split('/');
            (
                parts.next().unwrap().parse().unwrap(),
                parts.next().unwrap().parse().unwrap(),
            )
        };
        let (src_correct, src_total) = parse_frac(tail.split("SRC-LDA ").nth(1).unwrap());
        let (ctm_correct, _) = parse_frac(tail.split("CTM ").nth(1).unwrap());
        assert!(src_correct > 0, "SRC must discover something");
        assert!(
            src_correct >= ctm_correct,
            "SRC correct {src_correct} vs CTM correct {ctm_correct}"
        );
        // Discovery should be reasonably precise, not "keep everything".
        assert!(
            src_correct * 2 >= src_total,
            "SRC precision too low: {src_correct}/{src_total}"
        );
    }
}
