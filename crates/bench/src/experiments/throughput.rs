//! Serving throughput: documents/second through the `srclda_serve` online
//! inference engine, serial vs. multi-worker, cold vs. warm cache.
//!
//! This is the repo's ROADMAP workload rather than a paper figure: a model
//! is trained once, persisted to an artifact, reloaded (as a serving
//! process would), and then asked to fold in a stream of raw-text
//! documents. Reported cells:
//!
//! * `serial` — one thread, cache disabled;
//! * `workers` — the multi-worker batch path, cache disabled (the
//!   concurrency win);
//! * `warm_cache` — serial re-run of the same batch against a populated
//!   LRU cache (the repetition win).
//!
//! Every cell reports both docs/sec and tokens/sec, the latter so serving
//! and training (`sweep_throughput`) throughput share one unit.

use crate::cli::{banner, Scale};
use srclda_core::{Backend, FoldInConfig, SmoothingMode, SourceLda, Variant};
use srclda_knowledge::SmoothingConfig;
use srclda_serve::{EngineOptions, InferenceEngine, ModelArtifact};
use srclda_synth::random_source_topics;
use std::time::Instant;

/// Train once: a persisted-and-reloaded artifact, the fold-in options, and
/// a batch of raw-text request documents. Engines with different cache
/// configurations are built from the one artifact via [`make_engine`] —
/// training dominates wall-clock and must not be repeated per engine.
/// (Shared with `throughput_http`, which serves the same workload over
/// loopback HTTP so the two experiments are directly comparable.)
pub(crate) fn setup(scale: Scale) -> (ModelArtifact, FoldInConfig, Vec<String>) {
    let vocab_size = scale.pick(300, 1200, 2000);
    let topics = scale.pick(12, 60, 150);
    let support = scale.pick(12, 25, 40);
    let (vocab, knowledge) = random_source_topics(vocab_size, topics, support, 200, 77);
    // Training corpus drawn from the source articles themselves: every
    // topic has on-theme documents.
    let tokenizer = srclda_corpus::Tokenizer::permissive();
    let word_strings: Vec<String> = vocab.words().to_vec();
    let mut builder = srclda_corpus::CorpusBuilder::new()
        .tokenizer(tokenizer.clone())
        .with_vocabulary(vocab);
    let docs_per_topic = scale.pick(2, 3, 4);
    let doc_len = scale.pick(30, 60, 80);
    for (t, topic) in knowledge.topics().iter().enumerate() {
        let words: Vec<&str> = topic
            .top_words(8)
            .into_iter()
            .map(|w| word_strings[w.index()].as_str())
            .collect();
        for d in 0..docs_per_topic {
            let tokens: Vec<&str> = (0..doc_len)
                .map(|j| words[(j + d + t) % words.len()])
                .collect();
            builder.add_tokens(format!("train-{t}-{d}"), &tokens);
        }
    }
    let corpus = builder.build();
    let fitted = SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Full)
        .lambda_prior(0.5, 1.0)
        .approximation_steps(scale.pick(2, 4, 4))
        .smoothing(SmoothingMode::Shared(SmoothingConfig {
            grid_points: 6,
            samples_per_point: 15,
        }))
        .alpha(0.5)
        .iterations(scale.pick(15, 40, 60))
        .backend(Backend::Serial)
        .seed(9)
        .build()
        .expect("valid model")
        .fit(&corpus)
        .expect("fit succeeds");

    // Persist → reload: the measured engine is the *deserialized* model,
    // exactly what a serving process runs.
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer)
        .expect("artifact builds");
    let loaded = ModelArtifact::from_bytes(&artifact.to_bytes()).expect("artifact round-trips");
    let fold_in = FoldInConfig {
        iterations: scale.pick(20, 30, 30),
        seed: 1,
    };

    // Request stream: on-theme raw text reconstructed from vocabulary
    // words, distinct per document (so a cold run cannot hit the cache).
    let num_requests = scale.pick(60, 400, 1500);
    let request_len = scale.pick(25, 50, 80);
    let words = loaded.vocabulary().words();
    let requests: Vec<String> = (0..num_requests)
        .map(|i| {
            let stride = i % 7 + 1;
            let text: Vec<&str> = (0..request_len)
                .map(|j| words[(i * 131 + j * stride) % words.len()].as_str())
                .collect();
            text.join(" ")
        })
        .collect();
    (loaded, fold_in, requests)
}

fn make_engine(
    artifact: &ModelArtifact,
    fold_in: FoldInConfig,
    cache_capacity: usize,
) -> InferenceEngine {
    InferenceEngine::from_artifact(
        artifact,
        EngineOptions {
            fold_in,
            cache_capacity,
        },
    )
    .expect("engine builds")
}

fn docs_per_sec(n: usize, elapsed_secs: f64) -> f64 {
    n as f64 / elapsed_secs.max(1e-9)
}

/// Run the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = banner(
        "SRV",
        "serving throughput (artifact → fold-in engine)",
        scale,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Worker count is clamped to the machine: on one core the right worker
    // count is one, and the engine's parallel path then degenerates to the
    // serial path by construction (no threads are spawned).
    let workers = scale.pick(2, 4, 6).min(cores);
    out.push_str(&format!(
        "machine parallelism: {cores} cores; multi-worker path uses {workers} worker(s)\n"
    ));

    // Cold runs measure pure fold-in; the cache is disabled so repeated
    // timing loops cannot contaminate each other. Each cell is best-of-2 to
    // shed scheduler noise.
    let (artifact, fold_in, requests) = setup(scale);
    let engine = make_engine(&artifact, fold_in, 0);
    out.push_str(&format!(
        "model: {} topics; {} requests per batch\n",
        engine.num_topics(),
        requests.len()
    ));

    let mut serial = Vec::new();
    let mut serial_rate = 0.0f64;
    for _ in 0..2 {
        let start = Instant::now();
        serial = engine.infer_batch(&requests).expect("serial batch");
        serial_rate = serial_rate.max(docs_per_sec(requests.len(), start.elapsed().as_secs_f64()));
    }

    // The threaded path must not change results (bit-exact, content-seeded
    // fold-in) — checked with real threads regardless of the core count.
    let exact = engine
        .infer_batch_parallel(&requests, workers.max(2))
        .expect("parallel batch");
    assert_eq!(serial, exact, "parallel batch diverged from serial");

    let parallel_rate = if workers >= 2 {
        let mut rate = 0.0f64;
        for _ in 0..2 {
            let start = Instant::now();
            let parallel = engine
                .infer_batch_parallel(&requests, workers)
                .expect("parallel batch");
            rate = rate.max(docs_per_sec(requests.len(), start.elapsed().as_secs_f64()));
            assert_eq!(serial, parallel, "parallel batch diverged from serial");
        }
        rate
    } else {
        // One worker is the serial code path; its throughput is the serial
        // throughput by construction.
        serial_rate
    };

    // Warm-cache run: same batch twice against a caching engine (built
    // from the same artifact — no retraining).
    let cached_engine = make_engine(&artifact, fold_in, requests.len());
    let _ = cached_engine.infer_batch(&requests).expect("cache fill");
    let start = Instant::now();
    let _ = cached_engine.infer_batch(&requests).expect("warm batch");
    let warm_rate = docs_per_sec(requests.len(), start.elapsed().as_secs_f64());
    let stats = cached_engine.cache_stats();

    // Tokens/doc converts each docs/sec cell into tokens/sec, putting
    // serving throughput in the same unit as `sweep_throughput`'s training
    // numbers (one fold-in token-draw ≈ one training token-draw).
    let total_tokens: usize = serial.iter().map(|s| s.num_tokens()).sum();
    let tokens_per_doc = total_tokens as f64 / requests.len().max(1) as f64;
    let cell = |rate: f64| format!("{rate:>12.1}  {:>14.1}", rate * tokens_per_doc);
    out.push_str(&format!(
        "{:<24} {:>12} {:>14}\n",
        "", "docs/sec", "tokens/sec"
    ));
    out.push_str(&format!("serial                   {}\n", cell(serial_rate)));
    out.push_str(&format!(
        "workers                  {}  ({:.2}x, {workers} workers)\n",
        cell(parallel_rate),
        parallel_rate / serial_rate
    ));
    out.push_str(&format!(
        "warm_cache               {}  ({:.0}x, {} hits / {} misses)\n",
        cell(warm_rate),
        warm_rate / serial_rate,
        stats.hits,
        stats.misses
    ));
    out.push_str("(multi-worker ≥ serial is the acceptance bar; cache pays for repetition)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_contains_all_cells() {
        let report = run(Scale::Smoke);
        // Pin the exact row labels (line starts), not bare substrings that
        // other report text ("4 workers") would also satisfy.
        assert!(report.contains("\nserial "));
        assert!(report.contains("\nworkers "));
        assert!(report.contains("\nwarm_cache "));
        assert!(report.contains("docs/sec"));
        assert!(report.contains("tokens/sec"));
    }

    #[test]
    fn multi_worker_keeps_up_with_serial_on_smoke_scale() {
        // The acceptance criterion: batch throughput with workers must be
        // at least serial throughput. On a single-core machine the workers
        // only add scheduling overhead, so the invariant is asserted where
        // it is meaningful (and the report still prints the ratio).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores < 2 {
            eprintln!("skipping: single-core machine");
            return;
        }
        let (artifact, fold_in, requests) = setup(Scale::Smoke);
        let engine = make_engine(&artifact, fold_in, 0);
        // Warm-up to pay one-time costs outside the timed region.
        let _ = engine.infer_batch(&requests[..4.min(requests.len())]);
        let start = Instant::now();
        let serial = engine.infer_batch(&requests).unwrap();
        let serial_elapsed = start.elapsed().as_secs_f64();
        let workers = 2.min(cores);
        let start = Instant::now();
        let parallel = engine.infer_batch_parallel(&requests, workers).unwrap();
        let parallel_elapsed = start.elapsed().as_secs_f64();
        assert_eq!(serial, parallel);
        assert!(
            parallel_elapsed <= serial_elapsed * 1.10,
            "multi-worker batch slower than serial: {parallel_elapsed:.4}s vs {serial_elapsed:.4}s"
        );
    }

    #[test]
    fn warm_cache_serves_repeats_without_recomputing() {
        let (artifact, fold_in, requests) = setup(Scale::Smoke);
        let engine = make_engine(&artifact, fold_in, 1024);
        let first = engine.infer_batch(&requests).unwrap();
        let again = engine.infer_batch(&requests).unwrap();
        assert_eq!(first, again);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses as usize, requests.len());
        assert_eq!(stats.hits as usize, requests.len());
    }
}
