//! Experiment harness for the Source-LDA reproduction.
//!
//! Every table and figure of the paper's evaluation section has a
//! regenerating function in [`experiments`] and a matching binary in
//! `src/bin/`. Binaries accept `--smoke` (seconds, for CI), the default
//! scale (minutes, laptop-friendly shapes of the paper's setups) and
//! `--full` (the paper's exact sizes where memory allows).
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | §I case-study labeling table | [`experiments::table0`] | `table0_case_study` |
//! | Fig. 2 source-draw divergence boxplots | [`experiments::fig2`] | `fig2_source_variance` |
//! | Fig. 3 JS vs raw λ | [`experiments::fig34`] | `fig3_lambda_divergence` |
//! | Fig. 4 JS vs g(λ) | [`experiments::fig34`] | `fig4_smoothed_lambda` |
//! | Figs. 5–6 graphical experiment | [`experiments::fig6`] | `fig6_graphical` |
//! | Fig. 7 fixed vs integrated λ | [`experiments::fig7`] | `fig7_lambda_integration` |
//! | Table I Reuters top-word lists | [`experiments::table1`] | `table1_reuters` |
//! | Fig. 8 a–e Wikipedia-corpus evaluation | [`experiments::fig8`] | `fig8_wikipedia` |
//! | Fig. 8 f parallel scaling | [`experiments::fig8f`] | `fig8f_scaling` |
//! | serving throughput (ROADMAP workload) | [`experiments::throughput`] | `throughput_serving` |
//! | sharded training throughput + checkpoint/resume | [`experiments::train_throughput`] | `train_throughput` |
//! | everything | — | `all_experiments` |
//!
//! Every binary also accepts `--help` / `-h` (usage text, exit 0).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;

pub use cli::Scale;
