//! A Reuters-21578-like newswire dataset (§IV.C's substitution).
//!
//! The real experiment selects 2,000 Reuters documents, crawls one
//! Wikipedia article for each of 80 category names, and finds that 49 of
//! the 80 topics actually occur in the subset. We reproduce the *setup*:
//! the genuine Reuters-21578 category display names (public knowledge), a
//! synthetic Wikipedia over all of them, and a corpus generated from a
//! random 49-topic subset so that the superset-selection machinery faces
//! the same task.

use crate::wikipedia::{SyntheticWikipedia, WikipediaConfig};
use rand::seq::SliceRandom;
use srclda_core::generative::{DocLength, GeneratedCorpus, LambdaMode, SourceLdaGenerator};
use srclda_knowledge::KnowledgeSource;
use srclda_math::rng_from_seed;

/// The 20 economic-indicator topics shown in the paper's Figure 2.
pub const ECONOMIC_INDICATOR_TOPICS: &[&str] = &[
    "Money Supply",
    "Unemployment",
    "Balance of Payments",
    "Consumer Price Index",
    "Canadian Dollar",
    "Hong Kong Dollar",
    "Inventories",
    "Japanese Yen",
    "Australian Dollar",
    "Interest Rates",
    "Swiss Franc",
    "Singapore Dollar",
    "Wholesale Price Index",
    "New Zealand Dollar",
    "Retail Sales",
    "Capacity Utilisation",
    "Trade",
    "Industrial Production Index",
    "Housing Starts",
    "Personal Income",
];

/// Eighty Reuters-21578 category display names (the paper crawled one
/// Wikipedia article per category; "Querying Wikipedia resulted in 80
/// distinct topics"). Includes the Table-I topics (Inventories, Natural
/// Gas, Balance of Payments) and the Figure-2 indicator set.
pub const REUTERS_CATEGORIES: &[&str] = &[
    // Figure-2 economic indicators (20).
    "Money Supply",
    "Unemployment",
    "Balance of Payments",
    "Consumer Price Index",
    "Canadian Dollar",
    "Hong Kong Dollar",
    "Inventories",
    "Japanese Yen",
    "Australian Dollar",
    "Interest Rates",
    "Swiss Franc",
    "Singapore Dollar",
    "Wholesale Price Index",
    "New Zealand Dollar",
    "Retail Sales",
    "Capacity Utilisation",
    "Trade",
    "Industrial Production Index",
    "Housing Starts",
    "Personal Income",
    // Commodity / energy / finance categories (60 more).
    "Earnings",
    "Acquisitions",
    "Foreign Exchange",
    "Grain",
    "Crude Oil",
    "Natural Gas",
    "Shipping",
    "Wheat",
    "Corn",
    "Sugar",
    "Oilseed",
    "Coffee",
    "Gross National Product",
    "Gold",
    "Vegetable Oil",
    "Soybean",
    "Livestock",
    "Cocoa",
    "Reserves",
    "Carcass",
    "Copper",
    "Jobs",
    "Iron and Steel",
    "Cotton",
    "Barley",
    "Rubber",
    "Gasoline",
    "Rice",
    "Aluminium",
    "Palm Oil",
    "Sorghum",
    "Silver",
    "Petrochemicals",
    "Tin",
    "Rapeseed",
    "Strategic Metal",
    "Orange Juice",
    "Soybean Meal",
    "Heating Oil",
    "Fuel Oil",
    "Soybean Oil",
    "Sunflower Seed",
    "Housing",
    "Hogs",
    "Lead",
    "Groundnut",
    "Leading Indicators",
    "Deutsche Mark",
    "Tea",
    "Oats",
    "Coconut Oil",
    "Platinum",
    "Instalment Debt",
    "Nickel",
    "Propane",
    "Jet Fuel",
    "Cattle",
    "Potatoes",
    "Coconut",
    "Naphtha",
];

/// Generation parameters mirroring §IV.C.
#[derive(Debug, Clone)]
pub struct ReutersConfig {
    /// Number of documents (paper: 2,000).
    pub num_docs: usize,
    /// Tokens per document.
    pub doc_len: DocLength,
    /// Size of the topic superset to expose (≤ 80; paper: 80).
    pub superset: usize,
    /// Number of superset topics actually used to generate the corpus
    /// (paper: 49).
    pub active_topics: usize,
    /// Document–topic Dirichlet α for generation.
    pub alpha: f64,
    /// Article synthesis parameters.
    pub wikipedia: WikipediaConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReutersConfig {
    fn default() -> Self {
        Self {
            num_docs: 2000,
            doc_len: DocLength::Fixed(80),
            superset: 80,
            active_topics: 49,
            alpha: 0.1,
            wikipedia: WikipediaConfig::default(),
            seed: 20170419,
        }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct ReutersLikeDataset {
    /// The newswire corpus (with per-token ground truth in `generated`).
    pub generated: GeneratedCorpus,
    /// The full 80-topic knowledge source (the superset given to models).
    pub knowledge: KnowledgeSource,
    /// Indices (into `knowledge`) of the topics that actually generated the
    /// corpus.
    pub active: Vec<usize>,
}

impl ReutersLikeDataset {
    /// Generate the dataset.
    ///
    /// # Panics
    /// Panics if `superset` exceeds the category list or `active_topics >
    /// superset`.
    pub fn generate(config: &ReutersConfig) -> Self {
        assert!(config.superset <= REUTERS_CATEGORIES.len());
        assert!(config.active_topics <= config.superset);
        let labels: Vec<&str> = REUTERS_CATEGORIES[..config.superset].to_vec();
        let wiki = SyntheticWikipedia::generate_seeded(&labels, &config.wikipedia, config.seed);
        // Choose the active subset.
        let mut rng = rng_from_seed(config.seed ^ 0xabcd_ef01);
        let mut indices: Vec<usize> = (0..config.superset).collect();
        indices.shuffle(&mut rng);
        let mut active: Vec<usize> = indices[..config.active_topics].to_vec();
        active.sort_unstable();
        let active_ks = wiki.knowledge.select(&active);
        let generated = SourceLdaGenerator {
            alpha: config.alpha,
            unlabeled_topics: 0,
            lambda_mode: LambdaMode::None,
            num_docs: config.num_docs,
            doc_len: config.doc_len,
            seed: config.seed ^ 0x1357_9bdf,
            ..SourceLdaGenerator::default()
        }
        .generate(&active_ks, &wiki.vocab)
        .expect("generation parameters are valid");
        Self {
            generated,
            knowledge: wiki.knowledge,
            active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ReutersConfig {
        ReutersConfig {
            num_docs: 50,
            doc_len: DocLength::Fixed(40),
            superset: 12,
            active_topics: 7,
            wikipedia: WikipediaConfig {
                core_words_per_topic: 20,
                shared_vocab: 80,
                article_len: 300,
                ..WikipediaConfig::default()
            },
            ..ReutersConfig::default()
        }
    }

    #[test]
    fn category_lists_are_consistent() {
        assert_eq!(REUTERS_CATEGORIES.len(), 80);
        assert_eq!(ECONOMIC_INDICATOR_TOPICS.len(), 20);
        for t in ECONOMIC_INDICATOR_TOPICS {
            assert!(REUTERS_CATEGORIES.contains(t), "{t} missing from superset");
        }
        // Table-I topics present.
        for t in ["Inventories", "Natural Gas", "Balance of Payments"] {
            assert!(REUTERS_CATEGORIES.contains(&t));
        }
        // No duplicates.
        let set: std::collections::HashSet<&&str> = REUTERS_CATEGORIES.iter().collect();
        assert_eq!(set.len(), 80);
    }

    #[test]
    fn dataset_shape_matches_config() {
        let d = ReutersLikeDataset::generate(&small_config());
        assert_eq!(d.generated.corpus.num_docs(), 50);
        assert_eq!(d.knowledge.len(), 12);
        assert_eq!(d.active.len(), 7);
        assert!(d.active.iter().all(|&i| i < 12));
        // Ground-truth topics follow the active knowledge source.
        assert_eq!(d.generated.truth.num_topics(), 7);
    }

    #[test]
    fn inactive_topics_do_not_generate_tokens() {
        let d = ReutersLikeDataset::generate(&small_config());
        // All truth labels come from the active subset.
        let active_labels: Vec<&str> = d
            .active
            .iter()
            .map(|&i| d.knowledge.topic(i).label())
            .collect();
        for label in d.generated.truth.labels.iter().flatten() {
            assert!(active_labels.contains(&label.as_str()));
        }
    }

    #[test]
    fn deterministic() {
        let a = ReutersLikeDataset::generate(&small_config());
        let b = ReutersLikeDataset::generate(&small_config());
        assert_eq!(a.active, b.active);
        assert_eq!(
            a.generated.corpus.num_tokens(),
            b.generated.corpus.num_tokens()
        );
        assert_eq!(a.generated.truth.assignments, b.generated.truth.assignments);
    }
}
