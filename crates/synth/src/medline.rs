//! A deterministic list of 578 medical topic names standing in for the
//! MedlinePlus label collection of §IV.D ("578 Wikipedia articles
//! representing the collection of topic labels from MedlinePlus").
//!
//! The actual label *strings* carry no signal in the experiment — Source-LDA
//! consumes only the articles' count vectors — so plausible compound
//! medical terms generated from anatomical/condition morphemes preserve
//! everything that matters: 578 distinct labels, one synthetic article each.

/// Anatomical / physiological prefixes.
#[rustfmt::skip]
const PREFIXES: &[&str] = &[
    "Cardio", "Neuro", "Gastro", "Hepato", "Nephro", "Dermato", "Osteo", "Arthro", "Hemato",
    "Pulmono", "Broncho", "Encephalo", "Myelo", "Rhino", "Oto", "Ophthalmo", "Cysto", "Entero",
    "Colo", "Angio", "Veno", "Arterio", "Lympho", "Adeno", "Myo", "Chondro", "Spondylo",
    "Cranio", "Thoraco", "Abdomino", "Pelvi", "Utero", "Thyro", "Adreno",
];

/// Condition / procedure suffixes.
#[rustfmt::skip]
const SUFFIXES: &[&str] = &[
    "pathy", "itis", "osis", "algia", "ectomy", "oscopy", "ogram", "oplasty", "otomy",
    "osclerosis", "odynia", "omalacia", "omegaly", "orrhage", "ostenosis", "otrophy", "oma",
];

/// The `i`-th medical topic name (deterministic, distinct for `i < 578`).
pub fn medline_topic_name(i: usize) -> String {
    let p = PREFIXES[i % PREFIXES.len()];
    let s = SUFFIXES[(i / PREFIXES.len()) % SUFFIXES.len()];
    let series = i / (PREFIXES.len() * SUFFIXES.len());
    if series == 0 {
        format!("{p}{s}")
    } else {
        format!("{p}{s} Type {}", series + 1)
    }
}

/// The full 578-name collection of §IV.D.
pub fn medline_topic_names() -> Vec<String> {
    (0..578).map(medline_topic_name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_578_distinct_names() {
        let names = medline_topic_names();
        assert_eq!(names.len(), 578);
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 578, "names must be distinct");
    }

    #[test]
    fn names_look_medical() {
        let names = medline_topic_names();
        assert_eq!(names[0], "Cardiopathy");
        assert!(names.iter().all(|n| !n.is_empty()));
        // 34 prefixes × 17 suffixes = 578: the base series exactly covers
        // the MedlinePlus count; wrap-around names get a type suffix.
        assert!(!names[577].contains("Type"));
        assert!(medline_topic_name(578).contains("Type"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(medline_topic_names(), medline_topic_names());
    }
}
