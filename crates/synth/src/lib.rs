//! Synthetic data generators for the Source-LDA experiments.
//!
//! The paper evaluates on (a) a 5×5 pixel-grid toy world (§IV.A), (b)
//! corpora generated from Wikipedia-article knowledge sources (§IV.B,
//! §IV.D) and (c) the Reuters-21578 newswire with crawled Wikipedia
//! articles (§IV.C). This environment has no network or licensed datasets,
//! so — per the substitution policy in `DESIGN.md` — this crate synthesizes
//! statistically faithful stand-ins:
//!
//! * [`grid`] — the 5×5 topics and their augmentation, exactly as §IV.A;
//! * [`zipf`] / [`words`] — Zipfian samplers and a pronounceable pseudo-word
//!   generator for building vocabularies;
//! * [`wikipedia`] — Zipf-distributed encyclopedic articles per topic label
//!   (what Source-LDA actually consumes is the article's word-count vector);
//! * [`reuters`] — the real Reuters-21578 category names plus a synthetic
//!   2,000-document newswire generated from an 80-topic superset with 49
//!   topics active, mirroring §IV.C's setup;
//! * [`medline`] — a deterministic list of 578 medical topic names standing
//!   in for the MedlinePlus label collection of §IV.D.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod medline;
pub mod random;
pub mod reuters;
pub mod wikipedia;
pub mod words;
pub mod zipf;

pub use grid::{augment_topics, grid_topics, render_topic, GridWorld};
pub use medline::medline_topic_names;
pub use random::random_source_topics;
pub use reuters::{
    ReutersConfig, ReutersLikeDataset, ECONOMIC_INDICATOR_TOPICS, REUTERS_CATEGORIES,
};
pub use wikipedia::{SyntheticWikipedia, WikipediaConfig};
pub use zipf::ZipfDistribution;
