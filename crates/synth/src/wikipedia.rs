//! Synthetic Wikipedia-like articles.
//!
//! The paper crawls one Wikipedia article per candidate topic and uses only
//! its **word-count vector** (Definitions 2–3). We synthesize articles with
//! the same statistical anatomy: a topic-specific core vocabulary with
//! Zipf-distributed counts (encyclopedic articles have a heavy head of
//! topical terms) plus a shared background vocabulary that creates the
//! cross-topic word overlap real articles exhibit.

use crate::words::pseudo_vocabulary;
use crate::zipf::ZipfDistribution;
use rand::Rng;
use srclda_corpus::Vocabulary;
use srclda_knowledge::{KnowledgeSource, SourceTopic};
use srclda_math::{rng_from_seed, SldaRng};

/// Shape parameters for a synthetic Wikipedia.
#[derive(Debug, Clone)]
pub struct WikipediaConfig {
    /// Distinct topical words per article.
    pub core_words_per_topic: usize,
    /// Size of the background vocabulary shared by all articles.
    pub shared_vocab: usize,
    /// Total tokens per article.
    pub article_len: usize,
    /// Fraction of each article drawn from the shared background.
    pub background_fraction: f64,
    /// Zipf exponent for word frequencies.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WikipediaConfig {
    fn default() -> Self {
        Self {
            core_words_per_topic: 60,
            shared_vocab: 400,
            article_len: 1200,
            background_fraction: 0.25,
            zipf_exponent: 1.05,
            seed: 1234,
        }
    }
}

/// A generated knowledge base: shared vocabulary plus per-label articles.
#[derive(Debug, Clone)]
pub struct SyntheticWikipedia {
    /// Vocabulary covering all articles (background words first, then each
    /// topic's core block).
    pub vocab: Vocabulary,
    /// The knowledge source (one [`SourceTopic`] per requested label).
    pub knowledge: KnowledgeSource,
}

impl SyntheticWikipedia {
    /// Generate one article per label.
    pub fn generate(labels: &[&str], config: &WikipediaConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let n_topics = labels.len();
        let core = config.core_words_per_topic.max(1);
        let shared = config.shared_vocab;
        let total_vocab = shared + core * n_topics;
        let vocab = Vocabulary::from_words(pseudo_vocabulary(total_vocab));

        let core_zipf = ZipfDistribution::new(core, config.zipf_exponent);
        let shared_zipf = if shared > 0 {
            Some(ZipfDistribution::new(shared, config.zipf_exponent))
        } else {
            None
        };
        let bg_frac = config.background_fraction.clamp(0.0, 1.0);
        let topics: Vec<SourceTopic> = labels
            .iter()
            .enumerate()
            .map(|(t, label)| {
                let mut counts = vec![0.0; total_vocab];
                let core_base = shared + t * core;
                let core_tokens = (config.article_len as f64 * (1.0 - bg_frac)).round() as usize;
                let bg_tokens = config.article_len.saturating_sub(core_tokens);
                // Idealized Zipf counts for the head, plus sampling noise so
                // articles are not perfectly rank-ordered.
                for (rank, base) in core_zipf
                    .expected_counts(core_tokens as f64)
                    .into_iter()
                    .enumerate()
                {
                    let noise = 0.8 + 0.4 * rng.gen::<f64>();
                    let c = (base * noise).round();
                    if c > 0.0 {
                        counts[core_base + rank] = c;
                    }
                }
                if let Some(z) = &shared_zipf {
                    for _ in 0..bg_tokens {
                        counts[z.sample(&mut rng)] += 1.0;
                    }
                }
                SourceTopic::new(*label, counts)
            })
            .collect();
        Self {
            vocab,
            knowledge: KnowledgeSource::new(topics),
        }
    }

    /// Generate with per-call seed derivation (convenience for sweeps).
    pub fn generate_seeded(labels: &[&str], config: &WikipediaConfig, seed: u64) -> Self {
        let mut cfg = config.clone();
        cfg.seed = seed;
        Self::generate(labels, &cfg)
    }
}

/// Derive a child RNG for callers composing several generators.
pub fn child_rng(seed: u64, salt: u64) -> SldaRng {
    rng_from_seed(seed ^ salt.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<&'static str> {
        vec!["Money Supply", "Unemployment", "Trade"]
    }

    #[test]
    fn one_article_per_label() {
        let wiki = SyntheticWikipedia::generate(&labels(), &WikipediaConfig::default());
        assert_eq!(wiki.knowledge.len(), 3);
        assert_eq!(wiki.knowledge.labels(), labels());
        assert_eq!(
            wiki.vocab.len(),
            400 + 60 * 3,
            "background + per-topic cores"
        );
    }

    #[test]
    fn articles_have_heavy_heads() {
        let wiki = SyntheticWikipedia::generate(&labels(), &WikipediaConfig::default());
        for topic in wiki.knowledge.topics() {
            let dist = topic.distribution();
            let mut sorted: Vec<f64> = dist.iter().copied().filter(|&p| p > 0.0).collect();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let head: f64 = sorted.iter().take(10).sum();
            assert!(
                head > 0.3,
                "{}: top-10 words should carry real mass, got {head}",
                topic.label()
            );
        }
    }

    #[test]
    fn topics_overlap_only_through_background() {
        let cfg = WikipediaConfig {
            background_fraction: 0.0,
            ..WikipediaConfig::default()
        };
        let wiki = SyntheticWikipedia::generate(&labels(), &cfg);
        let a = wiki.knowledge.topic(0);
        let b = wiki.knowledge.topic(1);
        let overlap = a
            .counts()
            .iter()
            .zip(b.counts())
            .filter(|&(&x, &y)| x > 0.0 && y > 0.0)
            .count();
        assert_eq!(overlap, 0, "no background ⇒ disjoint cores");

        let wiki_bg = SyntheticWikipedia::generate(&labels(), &WikipediaConfig::default());
        let a = wiki_bg.knowledge.topic(0);
        let b = wiki_bg.knowledge.topic(1);
        let overlap = a
            .counts()
            .iter()
            .zip(b.counts())
            .filter(|&(&x, &y)| x > 0.0 && y > 0.0)
            .count();
        assert!(overlap > 0, "background should create overlap");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticWikipedia::generate(&labels(), &WikipediaConfig::default());
        let b = SyntheticWikipedia::generate(&labels(), &WikipediaConfig::default());
        for (ta, tb) in a.knowledge.topics().iter().zip(b.knowledge.topics()) {
            assert_eq!(ta.counts(), tb.counts());
        }
        let c = SyntheticWikipedia::generate_seeded(&labels(), &WikipediaConfig::default(), 999);
        let differs = a
            .knowledge
            .topic(0)
            .counts()
            .iter()
            .zip(c.knowledge.topic(0).counts())
            .any(|(x, y)| x != y);
        assert!(differs, "different seed should change article noise");
    }

    #[test]
    fn article_mass_matches_config() {
        let cfg = WikipediaConfig {
            article_len: 1000,
            ..WikipediaConfig::default()
        };
        let wiki = SyntheticWikipedia::generate(&labels(), &cfg);
        for t in wiki.knowledge.topics() {
            // Core noise is ±20%, background exact; total within 25%.
            assert!(
                (t.total() - 1000.0).abs() < 250.0,
                "{}: total {}",
                t.label(),
                t.total()
            );
        }
    }
}
