//! Randomly generated source topics over a fixed vocabulary — the setup of
//! the paper's performance benchmark (§IV.E): "an experiment was set up to
//! generate topics randomly from a given vocabulary".

use crate::zipf::ZipfDistribution;
use rand::seq::SliceRandom;
use srclda_corpus::Vocabulary;
use srclda_knowledge::{KnowledgeSource, SourceTopic};
use srclda_math::rng_from_seed;

use crate::words::pseudo_vocabulary;

/// Generate `b` source topics, each with Zipf-distributed counts over a
/// random `support_size`-word subset of a `vocab_size`-word vocabulary.
pub fn random_source_topics(
    vocab_size: usize,
    b: usize,
    support_size: usize,
    article_len: usize,
    seed: u64,
) -> (Vocabulary, KnowledgeSource) {
    let vocab = Vocabulary::from_words(pseudo_vocabulary(vocab_size));
    let support_size = support_size.clamp(1, vocab_size);
    let mut rng = rng_from_seed(seed);
    let zipf = ZipfDistribution::new(support_size, 1.0);
    let mut word_ids: Vec<usize> = (0..vocab_size).collect();
    let topics: Vec<SourceTopic> = (0..b)
        .map(|t| {
            word_ids.shuffle(&mut rng);
            let mut counts = vec![0.0; vocab_size];
            for (rank, base) in zipf
                .expected_counts(article_len as f64)
                .into_iter()
                .enumerate()
            {
                let c = base.round().max(1.0);
                counts[word_ids[rank]] = c;
            }
            SourceTopic::new(format!("random-topic-{t}"), counts)
        })
        .collect();
    (vocab, KnowledgeSource::new(topics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_support() {
        let (vocab, ks) = random_source_topics(500, 20, 30, 400, 7);
        assert_eq!(vocab.len(), 500);
        assert_eq!(ks.len(), 20);
        for t in ks.topics() {
            assert_eq!(t.support().len(), 30);
            assert!(t.total() >= 30.0);
        }
    }

    #[test]
    fn supports_differ_between_topics() {
        let (_, ks) = random_source_topics(1000, 5, 20, 200, 11);
        let a = ks.topic(0).support();
        let b = ks.topic(1).support();
        assert_ne!(a, b, "random supports should differ");
    }

    #[test]
    fn deterministic() {
        let (_, a) = random_source_topics(200, 3, 10, 100, 13);
        let (_, b) = random_source_topics(200, 3, 10, 100, 13);
        for (ta, tb) in a.topics().iter().zip(b.topics()) {
            assert_eq!(ta.counts(), tb.counts());
        }
    }

    #[test]
    fn support_clamped_to_vocab() {
        let (_, ks) = random_source_topics(10, 2, 50, 100, 17);
        assert_eq!(ks.topic(0).support().len(), 10);
    }
}
