//! Deterministic pseudo-word generation.
//!
//! Synthetic corpora need vocabularies whose words are distinct, stable
//! across runs, and human-readable in report tables. Words are built from
//! alternating consonant/vowel syllables indexed by a counter, so word `i`
//! is always the same string.

/// Consonant onsets (chosen to avoid accidental English stopwords).
const ONSETS: &[&str] = &[
    "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "kl", "pr",
    "st", "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u"];

/// The `i`-th pseudo-word (deterministic, injective).
pub fn pseudo_word(i: usize) -> String {
    // Mixed-radix expansion over syllables; always at least two syllables
    // so words look like "bama", "tezu", ...
    let mut n = i;
    let mut word = String::new();
    for round in 0..4 {
        let onset = ONSETS[n % ONSETS.len()];
        n /= ONSETS.len();
        let vowel = VOWELS[n % VOWELS.len()];
        n /= VOWELS.len();
        word.push_str(onset);
        word.push_str(vowel);
        if round >= 1 && n == 0 {
            break;
        }
    }
    // Syllable products occasionally spell real function words ("same");
    // a trailing 'q' keeps them out of the stopword list while preserving
    // injectivity (no generated word otherwise ends in 'q').
    if srclda_corpus::stopwords::is_stopword(&word) {
        word.push('q');
    }
    word
}

/// A vocabulary of `n` distinct pseudo-words.
pub fn pseudo_vocabulary(n: usize) -> Vec<String> {
    (0..n).map(pseudo_word).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(pseudo_word(17), pseudo_word(17));
        assert_eq!(pseudo_vocabulary(5), pseudo_vocabulary(5));
    }

    #[test]
    fn injective_over_large_range() {
        let words = pseudo_vocabulary(50_000);
        let distinct: HashSet<&String> = words.iter().collect();
        assert_eq!(distinct.len(), 50_000, "pseudo-words must be unique");
    }

    #[test]
    fn words_are_lowercase_alpha() {
        for w in pseudo_vocabulary(1000) {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "bad word {w}");
            assert!(w.len() >= 3);
        }
    }

    #[test]
    fn no_stopword_collisions() {
        for w in pseudo_vocabulary(10_000) {
            assert!(
                !srclda_corpus::stopwords::is_stopword(&w),
                "{w} collides with a stopword"
            );
        }
    }
}
