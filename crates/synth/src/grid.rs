//! The 5×5 graphical topic world of §IV.A.
//!
//! Vocabulary: the 25 cell coordinates of a 5×5 picture. Topics: the 5 rows
//! and 5 columns (each uniform over its 5 cells). The experiment *augments*
//! the topics — "pairing each topic with a random different topic and
//! swapping a random word (pixel) that is assigned to each topic given that
//! the swapped words do not belong to their original assignments" — hides
//! the augmented versions inside a generated corpus, and asks Source-LDA to
//! rediscover them from the original (non-augmented) knowledge source.

use rand::seq::SliceRandom;
use rand::Rng;
use srclda_corpus::Vocabulary;
use srclda_math::SldaRng;

/// Grid side length (the paper uses 5).
pub const SIDE: usize = 5;

/// The grid world: vocabulary plus labeled topic distributions.
#[derive(Debug, Clone)]
pub struct GridWorld {
    /// Vocabulary of `SIDE²` cell words ("00", "01", …, "44"; row-major).
    pub vocab: Vocabulary,
    /// Labeled topic distributions over the vocabulary.
    pub topics: Vec<(String, Vec<f64>)>,
}

/// Build the 10 original topics (5 rows then 5 columns), each uniform over
/// its 5 cells: `T_i = {xy | y = i}` for rows, `{yx | y = i}` for columns.
pub fn grid_topics() -> GridWorld {
    let vocab =
        Vocabulary::from_words((0..SIDE).flat_map(|r| (0..SIDE).map(move |c| format!("{r}{c}"))));
    let v = SIDE * SIDE;
    let mut topics = Vec::with_capacity(2 * SIDE);
    for r in 0..SIDE {
        let mut dist = vec![0.0; v];
        for c in 0..SIDE {
            dist[r * SIDE + c] = 1.0 / SIDE as f64;
        }
        topics.push((format!("row-{r}"), dist));
    }
    for c in 0..SIDE {
        let mut dist = vec![0.0; v];
        for r in 0..SIDE {
            dist[r * SIDE + c] = 1.0 / SIDE as f64;
        }
        topics.push((format!("col-{c}"), dist));
    }
    GridWorld { vocab, topics }
}

/// Augment topics per §IV.A: pair each topic with a random different topic
/// and swap one randomly chosen support word in each direction, requiring
/// that the word moved into a topic is not already in its support. Returns
/// the augmented distributions (labels preserved).
pub fn augment_topics(topics: &[(String, Vec<f64>)], rng: &mut SldaRng) -> Vec<(String, Vec<f64>)> {
    let n = topics.len();
    let mut augmented: Vec<(String, Vec<f64>)> = topics.to_vec();
    // Random pairing: a shuffled sequence consumed two at a time.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for pair in order.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        // Choose a support word of `a` absent from `b`'s support, and vice
        // versa. Retry a bounded number of times, then skip the pair.
        for _ in 0..100 {
            let wa = match random_support_word(&augmented[a].1, rng) {
                Some(w) => w,
                None => break,
            };
            let wb = match random_support_word(&augmented[b].1, rng) {
                Some(w) => w,
                None => break,
            };
            if wa == wb || augmented[b].1[wa] > 0.0 || augmented[a].1[wb] > 0.0 {
                continue;
            }
            // Swap: move wa's mass in `a` onto wb, and wb's mass in `b`
            // onto wa.
            let pa = augmented[a].1[wa];
            let pb = augmented[b].1[wb];
            augmented[a].1[wa] = 0.0;
            augmented[a].1[wb] = pa;
            augmented[b].1[wb] = 0.0;
            augmented[b].1[wa] = pb;
            break;
        }
    }
    augmented
}

fn random_support_word(dist: &[f64], rng: &mut SldaRng) -> Option<usize> {
    let support: Vec<usize> = dist
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0)
        .map(|(i, _)| i)
        .collect();
    if support.is_empty() {
        None
    } else {
        Some(support[rng.gen_range(0..support.len())])
    }
}

/// Render a topic distribution as a `SIDE`-line ASCII intensity picture,
/// mirroring the paper's Figure 5/6 visualizations. Intensity buckets map
/// probability mass to ` .:-=+*#%@`.
pub fn render_topic(dist: &[f64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = dist.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::with_capacity(SIDE * (SIDE + 1));
    for r in 0..SIDE {
        for c in 0..SIDE {
            let p = dist[r * SIDE + c] / max;
            let idx = ((p * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Render several topics side by side (one figure row of the paper).
pub fn render_topics_row(dists: &[&[f64]]) -> String {
    let rendered: Vec<Vec<String>> = dists
        .iter()
        .map(|d| render_topic(d).lines().map(String::from).collect())
        .collect();
    let mut out = String::new();
    for line in 0..SIDE {
        for (i, r) in rendered.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&r[line]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_math::rng_from_seed;

    #[test]
    fn ten_topics_over_25_words() {
        let world = grid_topics();
        assert_eq!(world.vocab.len(), 25);
        assert_eq!(world.topics.len(), 10);
        for (label, dist) in &world.topics {
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{label} not normalized");
            assert_eq!(dist.iter().filter(|&&p| p > 0.0).count(), 5);
        }
    }

    #[test]
    fn rows_and_columns_intersect_once() {
        let world = grid_topics();
        let row2 = &world.topics[2].1;
        let col3 = &world.topics[SIDE + 3].1;
        let overlap = row2
            .iter()
            .zip(col3)
            .filter(|&(&a, &b)| a > 0.0 && b > 0.0)
            .count();
        assert_eq!(overlap, 1, "a row and a column share exactly one cell");
    }

    #[test]
    fn augmentation_swaps_exactly_one_word_per_topic() {
        let world = grid_topics();
        let mut rng = rng_from_seed(31);
        let augmented = augment_topics(&world.topics, &mut rng);
        assert_eq!(augmented.len(), 10);
        let mut changed_topics = 0;
        for ((_, orig), (_, aug)) in world.topics.iter().zip(&augmented) {
            let sum: f64 = aug.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "augmented topic not normalized");
            assert_eq!(aug.iter().filter(|&&p| p > 0.0).count(), 5);
            let diff = orig
                .iter()
                .zip(aug)
                .filter(|&(&a, &b)| (a > 0.0) != (b > 0.0))
                .count();
            // Either untouched (pair skipped) or exactly one word out, one in.
            assert!(diff == 0 || diff == 2, "unexpected diff {diff}");
            if diff == 2 {
                changed_topics += 1;
            }
        }
        // The paper reports a 20% augmentation rate (1 of 5 words per
        // topic); with 5 pairs most should succeed.
        assert!(changed_topics >= 6, "only {changed_topics} topics changed");
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let world = grid_topics();
        let a = augment_topics(&world.topics, &mut rng_from_seed(5));
        let b = augment_topics(&world.topics, &mut rng_from_seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn render_shows_row_shape() {
        let world = grid_topics();
        let pic = render_topic(&world.topics[1].1); // row-1
        let lines: Vec<&str> = pic.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "@@@@@");
        assert_eq!(lines[0], "     ");
    }

    #[test]
    fn render_row_combines_pictures() {
        let world = grid_topics();
        let out = render_topics_row(&[&world.topics[0].1, &world.topics[5].1]);
        let first_line = out.lines().next().unwrap();
        // row-0 lights its top row; col-0 lights its first column.
        assert_eq!(first_line, "@@@@@  @    ");
    }
}
