//! Zipf (power-law) rank–frequency distributions — the statistical shape of
//! natural-language word frequencies, used to synthesize realistic article
//! count vectors.

use srclda_math::{AliasTable, SldaRng};

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(rank k) ∝ 1 / k^s`.
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    weights: Vec<f64>,
    table: AliasTable,
}

impl ZipfDistribution {
    /// Create over `n` ranks with exponent `s` (typically `s ≈ 1` for
    /// natural text).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let table = AliasTable::new(&weights).expect("positive Zipf weights");
        Self { weights, table }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff there are no ranks (never for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized probability of rank `k` (0-based index).
    pub fn pmf(&self, k: usize) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[k] / total
    }

    /// Draw a 0-based rank.
    pub fn sample(&self, rng: &mut SldaRng) -> usize {
        self.table.sample(rng)
    }

    /// Expected counts for a document of `total` tokens (deterministic
    /// "idealized article" shape).
    pub fn expected_counts(&self, total: f64) -> Vec<f64> {
        let sum: f64 = self.weights.iter().sum();
        self.weights.iter().map(|w| w / sum * total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_math::rng_from_seed;

    #[test]
    fn pmf_is_normalized_and_decreasing() {
        let z = ZipfDistribution::new(10, 1.0);
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..10 {
            assert!(z.pmf(k) < z.pmf(k - 1));
        }
    }

    #[test]
    fn samples_follow_rank_order() {
        let z = ZipfDistribution::new(50, 1.1);
        let mut rng = rng_from_seed(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[20]);
        // Head mass: rank 1 of Zipf(1.1, 50) holds ~22% of the mass.
        let head = counts[0] as f64 / 50_000.0;
        assert!(
            (head - z.pmf(0)).abs() < 0.02,
            "head {head} vs {}",
            z.pmf(0)
        );
    }

    #[test]
    fn expected_counts_sum_to_total() {
        let z = ZipfDistribution::new(20, 0.9);
        let counts = z.expected_counts(500.0);
        let sum: f64 = counts.iter().sum();
        assert!((sum - 500.0).abs() < 1e-9);
        assert!(counts[0] > counts[19]);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfDistribution::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfDistribution::new(0, 1.0);
    }
}
