//! Property-based tests for knowledge-source invariants.

use proptest::prelude::*;
use srclda_knowledge::{KnowledgeSourceBuilder, SmoothingConfig, SmoothingFunction, SourceTopic};
use srclda_math::rng_from_seed;

fn counts_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u32..200, 4..60).prop_map(|v| v.into_iter().map(f64::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distribution_is_normalized(counts in counts_strategy()) {
        let t = SourceTopic::new("T", counts);
        let d = t.distribution();
        let sum: f64 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn hyperparameters_exceed_counts_by_epsilon(counts in counts_strategy(), eps in 1e-6f64..0.5) {
        let t = SourceTopic::new("T", counts.clone());
        for (h, c) in t.hyperparameters(eps).iter().zip(&counts) {
            prop_assert!((h - (c + eps)).abs() < 1e-12);
        }
    }

    #[test]
    fn powered_hyperparameters_monotone_in_exponent_for_large_counts(
        counts in counts_strategy(),
        e1 in 0.0f64..1.0,
        e2 in 0.0f64..1.0,
    ) {
        // For counts + ε > 1 the power is increasing in the exponent.
        let t = SourceTopic::new("T", counts.clone());
        let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
        let p_lo = t.powered_hyperparameters(0.01, lo);
        let p_hi = t.powered_hyperparameters(0.01, hi);
        for ((l, h), c) in p_lo.iter().zip(&p_hi).zip(&counts) {
            if c + 0.01 > 1.0 {
                prop_assert!(l <= h, "non-monotone at count {c}: {l} vs {h}");
            } else {
                prop_assert!(l >= h);
            }
        }
    }

    #[test]
    fn smoothing_function_is_a_valid_monotone_map(seed in any::<u64>()) {
        let mut counts = vec![0.0; 120];
        let mut rng = rng_from_seed(seed);
        use rand::Rng;
        for c in counts.iter_mut().take(25) {
            *c = rng.gen_range(1..400) as f64;
        }
        let t = SourceTopic::new("T", counts);
        let cfg = SmoothingConfig { grid_points: 6, samples_per_point: 15 };
        let g = SmoothingFunction::estimate(&t, 0.01, &cfg, &mut rng);
        let mut prev = -1e-12;
        for i in 0..=12 {
            let x = i as f64 / 12.0;
            let y = g.eval(x);
            prop_assert!((0.0..=1.0).contains(&y), "g({x}) = {y} out of range");
            prop_assert!(y >= prev - 1e-9, "g not monotone at {x}");
            prev = y;
        }
        prop_assert!(g.eval(0.0).abs() < 1e-9 || g.eval(1.0) > g.eval(0.0));
    }

    #[test]
    fn builder_drops_oov_words(words in prop::collection::vec("[a-z]{3,6}", 1..20)) {
        let vocab = srclda_corpus::Vocabulary::from_words(["known", "words", "only"]);
        let mut b = KnowledgeSourceBuilder::new();
        b.add_counts(
            "T",
            words.iter().map(|w| (w.clone(), 1.0)).collect(),
        );
        let ks = b.build(&vocab);
        // Total mass is at most the number of in-vocabulary occurrences.
        let in_vocab = words
            .iter()
            .filter(|w| ["known", "words", "only"].contains(&w.as_str()))
            .count() as f64;
        prop_assert!((ks.topic(0).total() - in_vocab).abs() < 1e-12);
    }
}
