//! Knowledge sources for Source-LDA.
//!
//! A *knowledge source* (Definition 1 of the paper) is a collection of
//! labeled documents, each describing one concept — e.g. the Wikipedia
//! article for "Baseball". Source-LDA turns each document into
//!
//! * a **source distribution** (Definition 2): the normalized word counts of
//!   the document, restricted to the corpus vocabulary; and
//! * **source hyperparameters** (Definition 3): the raw counts plus a small
//!   ε, used directly as the parameters of a topic's Dirichlet prior.
//!
//! The full Source-LDA model additionally raises each hyperparameter to a
//! power `g(λ)` (§III.C), where [`smoothing::SmoothingFunction`] linearizes
//! the relationship between λ and the expected Jensen–Shannon divergence of
//! the resulting Dirichlet draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod smoothing;
pub mod source;

pub use builder::KnowledgeSourceBuilder;
pub use smoothing::{SmoothingConfig, SmoothingFunction};
pub use source::{KnowledgeSource, SourceTopic, DEFAULT_EPSILON};
