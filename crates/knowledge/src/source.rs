//! Source topics and knowledge sources (Definitions 1–3 of the paper).

use srclda_corpus::WordId;

/// Default ε for source hyperparameters (Definition 3's "very small positive
/// number that allows for non-zero probability draws").
pub const DEFAULT_EPSILON: f64 = 1e-2;

/// One labeled concept: a word-count vector over the corpus vocabulary.
///
/// Counts are stored densely (`counts[w]` = times word `w` of the corpus
/// vocabulary appears in the knowledge-source document). Words of the
/// article that are not in the corpus vocabulary are dropped, per
/// Definition 3 ("V is the size of the vocabulary of the corpus for which
/// we are topic modeling").
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTopic {
    label: String,
    counts: Vec<f64>,
    total: f64,
}

impl SourceTopic {
    /// Build from a label and a dense count vector.
    pub fn new(label: impl Into<String>, counts: Vec<f64>) -> Self {
        let total = counts.iter().sum();
        Self {
            label: label.into(),
            counts,
            total,
        }
    }

    /// The concept label (e.g. "Baseball").
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Dense raw counts over the corpus vocabulary.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total count mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Vocabulary size this topic is defined over.
    pub fn vocab_size(&self) -> usize {
        self.counts.len()
    }

    /// The source distribution (Definition 2): counts normalized to a PMF.
    /// A topic with no in-vocabulary words yields the uniform distribution.
    pub fn distribution(&self) -> Vec<f64> {
        if self.total > 0.0 {
            self.counts.iter().map(|&c| c / self.total).collect()
        } else if self.counts.is_empty() {
            Vec::new()
        } else {
            vec![1.0 / self.counts.len() as f64; self.counts.len()]
        }
    }

    /// Source hyperparameters (Definition 3): `Xᵢ = nᵢ + ε`.
    pub fn hyperparameters(&self, epsilon: f64) -> Vec<f64> {
        self.counts.iter().map(|&c| c + epsilon).collect()
    }

    /// Hyperparameters raised to a power (§III.C.1): `(Xᵢ)^e`.
    ///
    /// As `e → 0` every parameter approaches 1 (a flat Dirichlet); as
    /// `e → 1` the draw conforms tightly to the source distribution.
    pub fn powered_hyperparameters(&self, epsilon: f64, exponent: f64) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| (c + epsilon).powf(exponent))
            .collect()
    }

    /// Words with non-zero counts (the topic's support).
    pub fn support(&self) -> Vec<WordId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0.0)
            .map(|(i, _)| WordId::new(i))
            .collect()
    }

    /// The `n` highest-count words, descending.
    pub fn top_words(&self, n: usize) -> Vec<WordId> {
        srclda_math::simplex::top_n_indices(&self.counts, n)
            .into_iter()
            .filter(|&i| self.counts[i] > 0.0)
            .map(WordId::new)
            .collect()
    }
}

/// A knowledge source: an ordered collection of [`SourceTopic`]s sharing one
/// corpus vocabulary (Definition 1).
#[derive(Debug, Clone, Default)]
pub struct KnowledgeSource {
    topics: Vec<SourceTopic>,
    vocab_size: usize,
}

impl KnowledgeSource {
    /// Assemble from topics.
    ///
    /// # Panics
    /// Panics if topics disagree on vocabulary size.
    pub fn new(topics: Vec<SourceTopic>) -> Self {
        let vocab_size = topics.first().map_or(0, SourceTopic::vocab_size);
        assert!(
            topics.iter().all(|t| t.vocab_size() == vocab_size),
            "all source topics must share one vocabulary"
        );
        Self { topics, vocab_size }
    }

    /// Build directly from labeled probability distributions, scaling each
    /// by `pseudo_count` total mass. Used when the knowledge source is given
    /// as distributions (e.g. the pixel-grid topics of §IV.A) rather than
    /// documents.
    pub fn from_distributions<L: Into<String>>(
        labeled: Vec<(L, Vec<f64>)>,
        pseudo_count: f64,
    ) -> Self {
        let topics = labeled
            .into_iter()
            .map(|(label, dist)| {
                let counts = dist.iter().map(|&p| p * pseudo_count).collect();
                SourceTopic::new(label, counts)
            })
            .collect();
        Self::new(topics)
    }

    /// Number of source topics (the paper's `B` when used as a superset).
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True iff there are no topics.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// The shared vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Access a topic by position.
    pub fn topic(&self, i: usize) -> &SourceTopic {
        &self.topics[i]
    }

    /// All topics in order.
    pub fn topics(&self) -> &[SourceTopic] {
        &self.topics
    }

    /// All labels in order.
    pub fn labels(&self) -> Vec<&str> {
        self.topics.iter().map(|t| t.label()).collect()
    }

    /// Find a topic by its label.
    pub fn find(&self, label: &str) -> Option<(usize, &SourceTopic)> {
        self.topics
            .iter()
            .enumerate()
            .find(|(_, t)| t.label() == label)
    }

    /// Restrict to a subset of topic indices (used to build the generative
    /// ground truth from a superset).
    pub fn select(&self, indices: &[usize]) -> KnowledgeSource {
        let topics = indices.iter().map(|&i| self.topics[i].clone()).collect();
        KnowledgeSource {
            topics,
            vocab_size: self.vocab_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic() -> SourceTopic {
        // Vocabulary: [pencil, ruler, baseball, umpire]
        SourceTopic::new("School Supplies", vec![3.0, 2.0, 0.0, 0.0])
    }

    #[test]
    fn distribution_normalizes_counts() {
        let t = topic();
        assert_eq!(t.distribution(), vec![0.6, 0.4, 0.0, 0.0]);
        assert_eq!(t.total(), 5.0);
    }

    #[test]
    fn empty_topic_distribution_is_uniform() {
        let t = SourceTopic::new("Empty", vec![0.0, 0.0]);
        assert_eq!(t.distribution(), vec![0.5, 0.5]);
    }

    #[test]
    fn hyperparameters_add_epsilon() {
        let t = topic();
        let h = t.hyperparameters(0.5);
        assert_eq!(h, vec![3.5, 2.5, 0.5, 0.5]);
    }

    #[test]
    fn powered_hyperparameters_limits() {
        let t = topic();
        // Exponent 0 ⇒ all ones (flat Dirichlet).
        let flat = t.powered_hyperparameters(0.01, 0.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        // Exponent 1 ⇒ the raw hyperparameters.
        let full = t.powered_hyperparameters(0.01, 1.0);
        assert_eq!(full, t.hyperparameters(0.01));
        // Intermediate exponents interpolate monotonically for counts > 1.
        let half = t.powered_hyperparameters(0.01, 0.5);
        assert!(half[0] > 1.0 && half[0] < full[0]);
    }

    #[test]
    fn support_and_top_words() {
        let t = topic();
        assert_eq!(t.support(), vec![WordId::new(0), WordId::new(1)]);
        assert_eq!(t.top_words(1), vec![WordId::new(0)]);
        // top_words never returns zero-count words even if asked for more.
        assert_eq!(t.top_words(10).len(), 2);
    }

    #[test]
    fn knowledge_source_lookup() {
        let ks = KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![1.0, 0.0]),
            SourceTopic::new("B", vec![0.0, 1.0]),
        ]);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks.vocab_size(), 2);
        assert_eq!(ks.labels(), vec!["A", "B"]);
        let (i, t) = ks.find("B").unwrap();
        assert_eq!(i, 1);
        assert_eq!(t.label(), "B");
        assert!(ks.find("C").is_none());
    }

    #[test]
    fn select_subsets() {
        let ks = KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![1.0]),
            SourceTopic::new("B", vec![2.0]),
            SourceTopic::new("C", vec![3.0]),
        ]);
        let sub = ks.select(&[2, 0]);
        assert_eq!(sub.labels(), vec!["C", "A"]);
    }

    #[test]
    fn from_distributions_scales() {
        let ks = KnowledgeSource::from_distributions(vec![("T", vec![0.25, 0.75])], 100.0);
        assert_eq!(ks.topic(0).counts(), &[25.0, 75.0]);
    }

    #[test]
    #[should_panic(expected = "share one vocabulary")]
    fn mismatched_vocab_sizes_panic() {
        KnowledgeSource::new(vec![
            SourceTopic::new("A", vec![1.0]),
            SourceTopic::new("B", vec![1.0, 2.0]),
        ]);
    }
}
