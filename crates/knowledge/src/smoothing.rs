//! The λ smoothing function `g` (§III.C.2 of the paper).
//!
//! Raising source hyperparameters to a power λ does not change the expected
//! JS divergence of the resulting Dirichlet draws *linearly* (paper Fig. 3:
//! the divergence collapses quickly for small λ and then flattens). Because
//! λ carries a Gaussian prior, the paper maps λ through a function `g` with
//! the property that `E[JS(source, Dir(X^{g(λ)}))]` is linear in λ
//! (paper Fig. 4). `g` is "approximated ... by linear interpolation of an
//! aggregated large number of samples for each point taken in the range 0
//! to 1" — precisely what [`SmoothingFunction::estimate`] does:
//!
//! 1. sample the divergence curve `J(y) = E[JS(source, Dir(X^y))]` on a grid
//!    of exponents `y ∈ [0, 1]`;
//! 2. enforce monotonicity (the curve is decreasing up to sampling noise);
//! 3. set `g(λ) = J⁻¹( J(0) + λ·(J(1) − J(0)) )` by inverting the
//!    interpolated curve.
//!
//! ### Aggregation trick
//!
//! The naive estimator draws Dirichlets over the full corpus vocabulary
//! (`V` can be tens of thousands) even though a source topic usually touches
//! a few hundred words. We collapse all zero-count words into a single
//! aggregate atom: by the Dirichlet aggregation property the draw over
//! `(support…, rest)` with parameter `(V−s)·ε^y` for `rest` has exactly the
//! marginal law of aggregating a full draw, and because the source
//! distribution has zero mass outside its support, the JS divergence is
//! *identical* under aggregation (every outside atom contributes
//! `½·qᵢ·ln 2`, which sums to the aggregate's contribution). This makes the
//! per-topic estimate `O(grid · samples · support)` instead of
//! `O(grid · samples · V)`.

use crate::source::SourceTopic;
use srclda_math::{js_divergence, Dirichlet, PiecewiseLinear, SldaRng};

/// Estimation parameters for [`SmoothingFunction::estimate`].
#[derive(Debug, Clone)]
pub struct SmoothingConfig {
    /// Number of grid *intervals* over `[0, 1]` (knots = `grid_points + 1`).
    pub grid_points: usize,
    /// Dirichlet samples averaged per grid knot.
    pub samples_per_point: usize,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        Self {
            grid_points: 10,
            samples_per_point: 30,
        }
    }
}

/// A per-topic smoothing function `g : [0,1] → [0,1]` with its underlying
/// divergence curve.
#[derive(Debug, Clone)]
pub struct SmoothingFunction {
    /// λ ↦ exponent.
    map: PiecewiseLinear,
    /// exponent ↦ estimated E[JS].
    curve: PiecewiseLinear,
}

impl SmoothingFunction {
    /// The identity map `g(λ) = λ` (used when the divergence curve is flat
    /// or when the caller wants the paper's *unsmoothed* Figure-3 behavior).
    pub fn identity() -> Self {
        Self {
            map: PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 1.0])
                .expect("static knots are valid"),
            curve: PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 0.0])
                .expect("static knots are valid"),
        }
    }

    /// Estimate `g` for one source topic (Algorithm 1's "Calculate gₜ").
    pub fn estimate(
        topic: &SourceTopic,
        epsilon: f64,
        config: &SmoothingConfig,
        rng: &mut SldaRng,
    ) -> Self {
        let grid = config.grid_points.max(2);
        let exponents: Vec<f64> = (0..=grid).map(|i| i as f64 / grid as f64).collect();
        let js_means = sample_js_curve(topic, epsilon, &exponents, config.samples_per_point, rng);
        Self::from_curve(exponents, js_means)
    }

    /// Build from an already-sampled divergence curve (exposed for the
    /// Figure-3/4 experiments and for testing).
    pub fn from_curve(exponents: Vec<f64>, mut js_means: Vec<f64>) -> Self {
        // The true curve is non-increasing in the exponent; flatten sampling
        // noise with a running minimum, then nudge exact ties so the curve
        // is invertible.
        for i in 1..js_means.len() {
            if js_means[i] > js_means[i - 1] {
                js_means[i] = js_means[i - 1];
            }
        }
        let curve = PiecewiseLinear::new(exponents.clone(), js_means.clone())
            .expect("grid knots are strictly increasing");
        let j0 = js_means[0];
        let j1 = js_means[js_means.len() - 1];
        if (j0 - j1).abs() < 1e-9 {
            // Degenerate (flat) curve: every exponent looks the same, so the
            // identity map is as good as any.
            return Self {
                map: PiecewiseLinear::new(vec![0.0, 1.0], vec![0.0, 1.0])
                    .expect("static knots are valid"),
                curve,
            };
        }
        let inverse = curve.inverse().expect("monotone curve inverts");
        // g(λ) knots on the same λ grid: target JS linear between j0 and j1.
        let mut g_vals: Vec<f64> = exponents
            .iter()
            .map(|&lam| inverse.eval(j0 + lam * (j1 - j0)).clamp(0.0, 1.0))
            .collect();
        // Monotone non-decreasing g (inverse of a non-increasing curve is
        // non-increasing in JS, and the target decreases in λ).
        for i in 1..g_vals.len() {
            if g_vals[i] < g_vals[i - 1] {
                g_vals[i] = g_vals[i - 1];
            }
        }
        let map =
            PiecewiseLinear::new(exponents, g_vals).expect("grid knots are strictly increasing");
        Self { map, curve }
    }

    /// Evaluate `g(λ)` (input clamped to `[0, 1]`).
    pub fn eval(&self, lambda: f64) -> f64 {
        self.map.eval(lambda.clamp(0.0, 1.0))
    }

    /// The estimated divergence curve `y ↦ E[JS(source, Dir(X^y))]`.
    pub fn js_curve(&self) -> &PiecewiseLinear {
        &self.curve
    }
}

/// Draw `n` values of `JS(source, Dir(X^exponent))` — the raw samples
/// behind the paper's Figure 2 (exponent 1), Figure 3 (exponent λ) and
/// Figure 4 (exponent g(λ)) boxplots. Uses the same zero-count aggregation
/// trick as the curve estimator.
pub fn sample_js_divergences(
    topic: &SourceTopic,
    epsilon: f64,
    exponent: f64,
    n: usize,
    rng: &mut SldaRng,
) -> Vec<f64> {
    let (support_counts, outside_atoms, reduced_source) = reduce_topic(topic);
    let mut params: Vec<f64> = support_counts
        .iter()
        .map(|&c| (c + epsilon).powf(exponent))
        .collect();
    if outside_atoms > 0 {
        params.push(outside_atoms as f64 * epsilon.powf(exponent));
    }
    let dir = match Dirichlet::new(params) {
        Ok(d) => d,
        Err(_) => return vec![0.0; n],
    };
    let mut buf = vec![0.0; reduced_source.len()];
    (0..n)
        .map(|_| {
            dir.sample_into(rng, &mut buf);
            js_divergence(&reduced_source, &buf).unwrap_or(0.0)
        })
        .collect()
}

/// Estimate `E[JS(source, Dir(X^y))]` for each exponent `y`, using the
/// zero-count aggregation trick described in the module docs.
pub fn sample_js_curve(
    topic: &SourceTopic,
    epsilon: f64,
    exponents: &[f64],
    samples_per_point: usize,
    rng: &mut SldaRng,
) -> Vec<f64> {
    let samples = samples_per_point.max(1);
    let (support_counts, outside_atoms, reduced_source) = reduce_topic(topic);
    let mut out = Vec::with_capacity(exponents.len());
    let reduced_dim = support_counts.len() + usize::from(outside_atoms > 0);
    let mut buf = vec![0.0; reduced_dim];
    for &y in exponents {
        let mut params: Vec<f64> = support_counts
            .iter()
            .map(|&c| (c + epsilon).powf(y))
            .collect();
        if outside_atoms > 0 {
            params.push(outside_atoms as f64 * epsilon.powf(y));
        }
        let dir = match Dirichlet::new(params) {
            Ok(d) => d,
            Err(_) => {
                out.push(0.0);
                continue;
            }
        };
        let mut acc = 0.0;
        for _ in 0..samples {
            dir.sample_into(rng, &mut buf);
            acc += js_divergence(&reduced_source, &buf).unwrap_or(0.0);
        }
        out.push(acc / samples as f64);
    }
    out
}

/// Split a topic into (support counts, number of zero-count atoms, reduced
/// source distribution with a trailing zero atom when needed).
fn reduce_topic(topic: &SourceTopic) -> (Vec<f64>, usize, Vec<f64>) {
    let counts = topic.counts();
    let support_counts: Vec<f64> = counts.iter().copied().filter(|&c| c > 0.0).collect();
    let outside_atoms = counts.len() - support_counts.len();
    let total: f64 = support_counts.iter().sum();
    let mut reduced_source: Vec<f64> = if total > 0.0 {
        support_counts.iter().map(|&c| c / total).collect()
    } else {
        vec![]
    };
    if outside_atoms > 0 && !reduced_source.is_empty() {
        reduced_source.push(0.0);
    }
    // Degenerate: no support at all — treat as a single uniform atom.
    if reduced_source.is_empty() {
        return (vec![], counts.len(), vec![1.0]);
    }
    (support_counts, outside_atoms, reduced_source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_math::rng_from_seed;

    /// A skewed source topic over a 200-word vocabulary with 30 support
    /// words (Zipf-ish counts).
    fn skewed_topic() -> SourceTopic {
        let mut counts = vec![0.0; 200];
        for (i, c) in counts.iter_mut().take(30).enumerate() {
            *c = (200.0 / (i + 1) as f64).round();
        }
        SourceTopic::new("Skewed", counts)
    }

    #[test]
    fn identity_map() {
        let g = SmoothingFunction::identity();
        assert_eq!(g.eval(0.0), 0.0);
        assert_eq!(g.eval(0.37), 0.37);
        assert_eq!(g.eval(1.0), 1.0);
        assert_eq!(g.eval(2.0), 1.0, "inputs clamp to [0,1]");
    }

    #[test]
    fn js_curve_is_decreasing_in_exponent() {
        let mut rng = rng_from_seed(101);
        let topic = skewed_topic();
        let exps = [0.0, 0.25, 0.5, 0.75, 1.0];
        let curve = sample_js_curve(&topic, 0.01, &exps, 60, &mut rng);
        // Strong skew ⇒ big drop from exponent 0 to 1.
        assert!(
            curve[0] > curve[4] + 0.05,
            "curve should decrease: {curve:?}"
        );
        // Approximately monotone (tolerate sampling noise).
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "non-monotone: {curve:?}");
        }
    }

    #[test]
    fn g_endpoints_are_fixed() {
        let mut rng = rng_from_seed(103);
        let g = SmoothingFunction::estimate(
            &skewed_topic(),
            0.01,
            &SmoothingConfig::default(),
            &mut rng,
        );
        assert!(g.eval(0.0).abs() < 1e-9, "g(0) = {}", g.eval(0.0));
        assert!((g.eval(1.0) - 1.0).abs() < 1e-9, "g(1) = {}", g.eval(1.0));
    }

    #[test]
    fn g_is_monotone_non_decreasing() {
        let mut rng = rng_from_seed(107);
        let g = SmoothingFunction::estimate(
            &skewed_topic(),
            0.01,
            &SmoothingConfig::default(),
            &mut rng,
        );
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = g.eval(i as f64 / 20.0);
            assert!(v >= prev - 1e-12, "g not monotone at {i}");
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn g_linearizes_the_divergence() {
        // The defining property (paper Fig. 4): E[JS] at g(λ) is ~linear
        // in λ. Estimate g, then re-sample the divergence at g(λ) for
        // λ = 0, ½, 1 and check the midpoint lies near the secant midpoint.
        let mut rng = rng_from_seed(109);
        let topic = skewed_topic();
        let config = SmoothingConfig {
            grid_points: 20,
            samples_per_point: 80,
        };
        let g = SmoothingFunction::estimate(&topic, 0.01, &config, &mut rng);
        let exps = [g.eval(0.0), g.eval(0.5), g.eval(1.0)];
        let js = sample_js_curve(&topic, 0.01, &exps, 200, &mut rng);
        let secant_mid = 0.5 * (js[0] + js[2]);
        let err = (js[1] - secant_mid).abs();
        let range = (js[0] - js[2]).abs().max(1e-9);
        assert!(
            err / range < 0.15,
            "not linear: JS at g(0/.5/1) = {js:?}, relative error {}",
            err / range
        );
        // Contrast: the *identity* map is far from linear for this topic.
        let raw = sample_js_curve(&topic, 0.01, &[0.0, 0.5, 1.0], 200, &mut rng);
        let raw_err = (raw[1] - 0.5 * (raw[0] + raw[2])).abs();
        assert!(
            raw_err / range > err / range,
            "smoothing should improve linearity (raw {}, smoothed {})",
            raw_err / range,
            err / range
        );
    }

    #[test]
    fn flat_curve_falls_back_to_identity() {
        let g = SmoothingFunction::from_curve(vec![0.0, 0.5, 1.0], vec![0.3, 0.3, 0.3]);
        assert_eq!(g.eval(0.25), 0.25);
        assert_eq!(g.eval(0.75), 0.75);
    }

    #[test]
    fn from_curve_repairs_noise() {
        // A noisy, slightly non-monotone curve must still produce a valid g.
        let g = SmoothingFunction::from_curve(
            vec![0.0, 0.25, 0.5, 0.75, 1.0],
            vec![0.6, 0.35, 0.37, 0.2, 0.1],
        );
        assert!(g.eval(0.0).abs() < 1e-9);
        assert!((g.eval(1.0) - 1.0).abs() < 1e-9);
        for i in 1..=10 {
            assert!(g.eval(i as f64 / 10.0) >= g.eval((i - 1) as f64 / 10.0) - 1e-12);
        }
    }

    #[test]
    fn empty_support_topic_does_not_panic() {
        let topic = SourceTopic::new("Empty", vec![0.0; 50]);
        let mut rng = rng_from_seed(113);
        let g = SmoothingFunction::estimate(&topic, 0.01, &SmoothingConfig::default(), &mut rng);
        let v = g.eval(0.5);
        assert!((0.0..=1.0).contains(&v));
    }
}
