//! Building knowledge sources from raw articles.
//!
//! The paper crawls one Wikipedia article per candidate topic, tokenizes it,
//! and counts occurrences of corpus-vocabulary words (Definition 3). The
//! builder replicates that pipeline against any text source.

use crate::source::{KnowledgeSource, SourceTopic};
use srclda_corpus::{Tokenizer, Vocabulary};

enum Body {
    Text(String),
    Counts(Vec<(String, f64)>),
}

/// Accumulates labeled articles, then resolves them against a corpus
/// vocabulary.
pub struct KnowledgeSourceBuilder {
    tokenizer: Tokenizer,
    articles: Vec<(String, Body)>,
}

impl Default for KnowledgeSourceBuilder {
    fn default() -> Self {
        Self {
            tokenizer: Tokenizer::permissive(),
            articles: Vec::new(),
        }
    }
}

impl KnowledgeSourceBuilder {
    /// New builder with a permissive tokenizer (articles usually want the
    /// same preprocessing as the corpus; override with [`Self::tokenizer`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the tokenizer used for [`Self::add_article`].
    pub fn tokenizer(mut self, t: Tokenizer) -> Self {
        self.tokenizer = t;
        self
    }

    /// Add a labeled article as raw text.
    pub fn add_article(&mut self, label: impl Into<String>, text: impl Into<String>) -> &mut Self {
        self.articles.push((label.into(), Body::Text(text.into())));
        self
    }

    /// Add a labeled article as explicit `(word, count)` pairs.
    pub fn add_counts(
        &mut self,
        label: impl Into<String>,
        counts: Vec<(String, f64)>,
    ) -> &mut Self {
        self.articles.push((label.into(), Body::Counts(counts)));
        self
    }

    /// Number of articles added.
    pub fn len(&self) -> usize {
        self.articles.len()
    }

    /// True iff no articles were added.
    pub fn is_empty(&self) -> bool {
        self.articles.is_empty()
    }

    /// Resolve every article against `vocab`, producing dense count vectors.
    /// Article words missing from the corpus vocabulary are dropped
    /// (Definition 3 defines hyperparameters over the *corpus* vocabulary).
    pub fn build(&self, vocab: &Vocabulary) -> KnowledgeSource {
        let v = vocab.len();
        let topics = self
            .articles
            .iter()
            .map(|(label, body)| {
                let mut counts = vec![0.0; v];
                match body {
                    Body::Text(text) => {
                        for token in self.tokenizer.tokenize(text) {
                            if let Some(w) = vocab.get(&token) {
                                counts[w.index()] += 1.0;
                            }
                        }
                    }
                    Body::Counts(pairs) => {
                        for (word, c) in pairs {
                            if let Some(w) = vocab.get(word) {
                                counts[w.index()] += c;
                            }
                        }
                    }
                }
                SourceTopic::new(label.clone(), counts)
            })
            .collect();
        KnowledgeSource::new(topics)
    }

    /// Resolve articles while *extending* the vocabulary with unseen article
    /// words. Use when the model should be able to assign probability mass
    /// to knowledge-source words that never occur in the corpus.
    pub fn build_extending(&self, vocab: &mut Vocabulary) -> KnowledgeSource {
        // First pass: intern everything so count vectors share a final V.
        for (_, body) in &self.articles {
            match body {
                Body::Text(text) => {
                    for token in self.tokenizer.tokenize(text) {
                        vocab.intern(&token);
                    }
                }
                Body::Counts(pairs) => {
                    for (word, _) in pairs {
                        vocab.intern(word);
                    }
                }
            }
        }
        self.build(vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::from_words(["pencil", "ruler", "baseball", "umpire"])
    }

    #[test]
    fn text_articles_count_in_vocab_words() {
        let mut b = KnowledgeSourceBuilder::new();
        b.add_article("School Supplies", "pencil pencil ruler eraser notebook");
        b.add_article("Baseball", "baseball umpire umpire glove");
        let ks = b.build(&vocab());
        assert_eq!(ks.len(), 2);
        // "eraser"/"notebook"/"glove" are out-of-vocabulary and dropped.
        assert_eq!(ks.topic(0).counts(), &[2.0, 1.0, 0.0, 0.0]);
        assert_eq!(ks.topic(1).counts(), &[0.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn count_articles_resolve() {
        let mut b = KnowledgeSourceBuilder::new();
        b.add_counts(
            "Mixed",
            vec![
                ("ruler".into(), 5.0),
                ("unknown".into(), 9.0),
                ("ruler".into(), 1.0),
            ],
        );
        let ks = b.build(&vocab());
        assert_eq!(ks.topic(0).counts(), &[0.0, 6.0, 0.0, 0.0]);
    }

    #[test]
    fn build_extending_grows_vocabulary() {
        let mut v = vocab();
        let mut b = KnowledgeSourceBuilder::new();
        b.add_article("Baseball", "baseball pitcher pitcher");
        let ks = b.build_extending(&mut v);
        assert_eq!(v.len(), 5);
        let pitcher = v.get("pitcher").unwrap();
        assert_eq!(ks.topic(0).counts()[pitcher.index()], 2.0);
        assert_eq!(ks.vocab_size(), 5);
    }

    #[test]
    fn tokenizer_is_configurable() {
        let mut b = KnowledgeSourceBuilder::new().tokenizer(Tokenizer::default());
        b.add_article("T", "the pencil and the ruler");
        let ks = b.build(&vocab());
        // Default tokenizer strips stopwords; only content words counted.
        assert_eq!(ks.topic(0).counts(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn builder_len() {
        let mut b = KnowledgeSourceBuilder::new();
        assert!(b.is_empty());
        b.add_article("A", "x");
        assert_eq!(b.len(), 1);
    }
}
