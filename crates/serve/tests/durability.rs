//! Crash-safety of the checkpoint persistence layer, proven by
//! deterministic fault injection: killing a checkpoint write at *any*
//! byte offset, flipping bits, or truncating files must never lose more
//! than one checkpoint interval, and resuming from whatever survives
//! must continue the chain bit-identically.

use proptest::prelude::*;
use srclda_core::{Backend, GibbsModel, KernelKind, SourceLda, TrainCheckpoint, Variant};
use srclda_corpus::{Corpus, CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_serve::{CheckpointStore, FaultKind, FaultPlan, ModelArtifact};
use std::path::PathBuf;
use std::sync::OnceLock;

/// A small two-source world with genuinely stochastic tokens ("bag"
/// carries equal weight in both articles), so a broken resume cannot hide
/// behind prior-determined convergence.
fn world() -> (Corpus, Tokenizer, srclda_knowledge::KnowledgeSource) {
    let tokenizer = Tokenizer::permissive();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for i in 0..8 {
        builder.add_tokens(
            format!("school-{i}"),
            &["pencil", "pencil", "ruler", "eraser"],
        );
        builder.add_tokens(
            format!("sports-{i}"),
            &["baseball", "umpire", "baseball", "glove"],
        );
        builder.add_tokens(format!("mixed-{i}"), &["pencil", "baseball", "bag", "bag"]);
    }
    let corpus = builder.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article("School Supplies", "pencil ruler eraser bag ".repeat(10));
    ks.add_article("Baseball", "baseball umpire glove bag ".repeat(10));
    let knowledge = ks.build(corpus.vocabulary());
    (corpus, tokenizer, knowledge)
}

fn model(
    corpus: &Corpus,
    knowledge: srclda_knowledge::KnowledgeSource,
    sweeps: usize,
) -> GibbsModel {
    SourceLda::builder()
        .knowledge_source(knowledge)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(sweeps)
        .seed(11)
        .backend(Backend::ShardedDocs {
            kernel: KernelKind::Flat,
            shards: 2,
            threads: 2,
        })
        .build()
        .and_then(|m| m.assemble(corpus.vocab_size()))
        .expect("model assembles")
}

/// The uninterrupted run's outputs: encoded checkpoint generations as
/// `(sweep, bytes)`, final assignments, final φ values.
type Reference = (Vec<(u64, Vec<u8>)>, Vec<Vec<u32>>, Vec<f64>);

/// Run a full 12-sweep fit, capturing the checkpoints at sweeps 4/8/12
/// as encoded artifacts and the final model state.
fn reference_run() -> Reference {
    let (corpus, tokenizer, knowledge) = world();
    let m = model(&corpus, knowledge, 12);
    let labels = m.labels().to_vec();
    let mut generations: Vec<(u64, Vec<u8>)> = Vec::new();
    let fitted = m
        .fit_resumable(&corpus, None, Some(4), |cp| {
            let artifact =
                ModelArtifact::from_checkpoint(cp, labels.clone(), corpus.vocabulary(), &tokenizer)
                    .expect("checkpoint artifact builds");
            generations.push((cp.sweep, artifact.to_bytes()));
            Ok(())
        })
        .expect("uninterrupted fit");
    (
        generations,
        fitted.assignments().to_vec(),
        fitted.phi().as_slice().to_vec(),
    )
}

fn reference() -> &'static Reference {
    static REFERENCE: OnceLock<Reference> = OnceLock::new();
    REFERENCE.get_or_init(reference_run)
}

fn temp_store(tag: &str, keep: usize) -> (PathBuf, CheckpointStore) {
    let dir = std::env::temp_dir().join(format!("srclda-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("ck.slda"), keep);
    (dir, store)
}

/// Resume from `cp` and run to sweep 12; the final model must be
/// bit-identical to the uninterrupted reference run.
fn assert_resumed_chain_matches_reference(cp: &TrainCheckpoint) {
    let (_, ref_assignments, ref_phi) = reference();
    let (corpus, _, knowledge) = world();
    let fitted = model(&corpus, knowledge, 12)
        .fit_resumable(&corpus, Some(cp), Some(4), |_| Ok(()))
        .expect("resumed fit");
    assert_eq!(
        fitted.assignments(),
        ref_assignments.as_slice(),
        "resumed assignments diverged from the uninterrupted run"
    );
    assert_eq!(
        fitted.phi().as_slice(),
        ref_phi.as_slice(),
        "resumed phi diverged from the uninterrupted run"
    );
}

proptest! {
    // Each case writes two small files; keep the case count moderate so
    // the suite stays fast while still sweeping offsets across the whole
    // artifact, both fault flavors, and the EINTR path.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: kill the sweep-8 checkpoint write at an
    /// arbitrary byte offset (clean write failure, torn partial write, or
    /// ENOSPC). Recovery must land on the intact sweep-4 generation,
    /// bit-identical — at most one checkpoint interval is lost.
    #[test]
    fn killing_a_checkpoint_write_at_any_offset_loses_at_most_one_interval(
        raw_offset in any::<u64>(),
        kind_sel in 0usize..3,
    ) {
        let (generations, _, _) = reference();
        let gen4 = &generations[0];
        let gen8 = &generations[1];
        prop_assert_eq!(gen4.0, 4);
        let offset = raw_offset % gen8.1.len() as u64;
        let kind = [FaultKind::FailWrite, FaultKind::TornWrite, FaultKind::DiskFull][kind_sel];
        let plan = match kind {
            FaultKind::FailWrite => FaultPlan::fail_write_at(offset),
            FaultKind::TornWrite => FaultPlan::torn_write_at(offset),
            _ => FaultPlan::disk_full_at(offset),
        };

        let (dir, store) = temp_store(&format!("kill-{offset}-{kind_sel}"), 3);
        let gen4_artifact = ModelArtifact::from_bytes(&gen4.1).expect("reference bytes decode");
        store.save_generation(4, &gen4_artifact).unwrap();
        let gen8_artifact = ModelArtifact::from_bytes(&gen8.1).expect("reference bytes decode");
        let err = store
            .save_generation_with_plan(8, &gen8_artifact, &plan)
            .expect_err("the injected fault must surface");
        prop_assert!(plan.triggered() > 0, "fault never fired: {err}");

        let recovery = store.resume_auto().unwrap();
        let recovered = recovery.recovered.expect("generation 4 must survive");
        prop_assert_eq!(recovered.generation, 4);
        prop_assert!(
            recovered.artifact.to_bytes() == gen4.1,
            "recovered generation must be bit-identical to what was written"
        );
        // A torn write may leave a staging file; it must never decode as
        // a generation, only be cleaned.
        prop_assert_eq!(recovery.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Torn write, bit flip, and truncation over the newest (v2,
/// checkpoint-bearing) generation: `resume_auto` must skip every corrupt
/// file, land on the newest valid one, and the chain continued from it
/// must finish bit-identical to the uninterrupted run.
#[test]
fn corruption_falls_back_to_newest_valid_generation_and_chain_stays_bit_identical() {
    let (generations, _, _) = reference();
    let (dir, store) = temp_store("fallback", 4);
    for (sweep, bytes) in generations {
        let artifact = ModelArtifact::from_bytes(bytes).unwrap();
        store.save_generation(*sweep, &artifact).unwrap();
    }
    // Truncate generation 12 and bit-flip generation 8 inside the
    // checkpoint section (the file tail, past the φ matrix).
    let g12 = store.generation_path(12);
    let bytes = std::fs::read(&g12).unwrap();
    std::fs::write(&g12, &bytes[..bytes.len() / 3]).unwrap();
    let g8 = store.generation_path(8);
    let mut bytes = std::fs::read(&g8).unwrap();
    let at = bytes.len() - bytes.len() / 8;
    bytes[at] ^= 0x10;
    std::fs::write(&g8, &bytes).unwrap();

    let recovery = store.resume_auto().unwrap();
    assert_eq!(recovery.scanned, 3);
    assert_eq!(recovery.corrupt, 2);
    let recovered = recovery.recovered.expect("generation 4 is intact");
    assert_eq!(recovered.generation, 4);

    let cp = recovered
        .artifact
        .checkpoint()
        .expect("generation carries its checkpoint")
        .clone();
    // The digest round-trips through encode → corrupt-sibling scan →
    // decode unchanged.
    let original = ModelArtifact::from_bytes(&reference().0[0].1)
        .unwrap()
        .checkpoint()
        .unwrap()
        .digest();
    assert_eq!(cp.digest(), original);
    assert_resumed_chain_matches_reference(&cp);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash *after* the rename commits the bytes: recovery must find the
/// new generation, not fall back — and resuming from it still converges
/// to the reference bits.
#[test]
fn crash_after_rename_recovers_the_committed_generation() {
    let (generations, _, _) = reference();
    let (dir, store) = temp_store("crash-after", 3);
    let gen4 = ModelArtifact::from_bytes(&generations[0].1).unwrap();
    let gen8 = ModelArtifact::from_bytes(&generations[1].1).unwrap();
    store.save_generation(4, &gen4).unwrap();
    let plan = FaultPlan::crash_after_rename();
    store
        .save_generation_with_plan(8, &gen8, &plan)
        .expect_err("the simulated crash must surface");
    assert_eq!(plan.triggered(), 1);

    let recovery = store.resume_auto().unwrap();
    let recovered = recovery.recovered.expect("the rename committed");
    assert_eq!(recovered.generation, 8);
    assert_eq!(recovered.artifact.to_bytes(), generations[1].1);
    let cp = recovered.artifact.checkpoint().unwrap().clone();
    assert_resumed_chain_matches_reference(&cp);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stale staging files from prior crashes are swept on recovery, counted,
/// and reported through metrics as a valid Prometheus exposition.
#[test]
fn stale_staging_files_are_cleaned_and_recovery_metrics_expose() {
    let (generations, _, _) = reference();
    let (dir, store) = temp_store("stale-tmp", 3);
    let gen4 = ModelArtifact::from_bytes(&generations[0].1).unwrap();
    store.save_generation(4, &gen4).unwrap();
    std::fs::write(dir.join("ck.g000008.slda.tmp"), b"half a checkpoint").unwrap();
    std::fs::write(dir.join("ck.g000012.slda.tmp"), b"").unwrap();

    let recovery = store.resume_auto().unwrap();
    assert_eq!(recovery.cleaned_tmp, 2);
    assert_eq!(recovery.recovered.as_ref().map(|r| r.generation), Some(4));
    assert!(
        !dir.join("ck.g000008.slda.tmp").exists(),
        "stale tmp files must be removed"
    );

    let registry = srclda_obs::Registry::new();
    recovery.record_metrics(&registry);
    let text = registry.render();
    srclda_obs::validate_exposition(&text).expect("valid exposition");
    assert!(
        text.contains("srclda_persist_recovered_generation 4\n"),
        "{text}"
    );
    assert!(
        text.contains("srclda_persist_stale_tmp_cleaned_total 2\n"),
        "{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
