//! Property-based tests for the artifact codec: arbitrary models — with
//! and without the v2 training-checkpoint section — must round-trip
//! bit-exactly, and malformed bytes must fail cleanly (never panic, never
//! silently succeed). Version-1 byte streams (no checkpoint section) must
//! keep loading.

use proptest::prelude::*;
use srclda_core::persist::{RawPrior, TrainCheckpoint};
use srclda_corpus::{Tokenizer, Vocabulary};
use srclda_math::DenseMatrix;
use srclda_serve::{ModelArtifact, ServeError, FORMAT_VERSION};

/// An arbitrary valid model: T topics × V words with positive φ mass,
/// optional labels, and a mix of prior kinds, all derived from `seed`.
fn build_artifact(t: usize, v: usize, seed: u64) -> ModelArtifact {
    {
        // Derive deterministic but varied contents from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let phi_data: Vec<f64> = (0..t * v)
            .map(|_| (next() % 1000) as f64 / 1000.0 + 1e-6)
            .collect();
        let mut phi = DenseMatrix::from_vec(t, v, phi_data);
        phi.normalize_rows();
        let labels: Vec<Option<String>> = (0..t)
            .map(|i| (next() % 2 == 0).then(|| format!("topic-{i}")))
            .collect();
        let priors: Vec<RawPrior> = (0..t)
            .map(|_| match next() % 3 {
                0 => RawPrior::Symmetric {
                    beta: (next() % 100 + 1) as f64 / 100.0,
                },
                1 => RawPrior::Fixed {
                    delta: (0..v).map(|_| (next() % 500 + 1) as f64 / 100.0).collect(),
                },
                _ => RawPrior::ConceptSet {
                    support: (0..v as u32).filter(|_| next() % 2 == 0).chain([0]).fold(
                        Vec::new(),
                        |mut acc, w| {
                            if acc.last() != Some(&w) && !acc.contains(&w) {
                                acc.push(w);
                            }
                            acc
                        },
                    ),
                    beta: 0.5,
                },
            })
            .collect();
        let vocab = Vocabulary::from_words((0..v).map(|i| format!("word{i}")));
        let tokenizer = Tokenizer::from_parts(
            next() % 2 == 0,
            (next() % 4) as usize,
            next() % 2 == 0,
            next() % 2 == 0,
        );
        ModelArtifact::new(
            1.0 / 16.0 + (next() % 16) as f64,
            phi,
            labels,
            priors,
            vocab,
            tokenizer,
        )
        .expect("strategy builds valid artifacts")
    }
}

/// An arbitrary *consistent* training checkpoint for a `t × v` model:
/// random document lengths and assignments, with `nw`/`nt` derived from
/// them (the validator rejects anything else).
fn build_checkpoint(t: usize, v: usize, seed: u64, alpha: f64) -> TrainCheckpoint {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let docs = (next() % 6 + 1) as usize;
    let mut nw = vec![0u32; v * t];
    let mut nt = vec![0u32; t];
    let z: Vec<Vec<u32>> = (0..docs)
        .map(|_| {
            (0..(next() % 9) as usize)
                .map(|_| {
                    let w = (next() % v as u64) as usize;
                    let topic = (next() % t as u64) as u32;
                    nw[w * t + topic as usize] += 1;
                    nt[topic as usize] += 1;
                    topic
                })
                .collect()
        })
        .collect();
    let shards = next() % 4; // 0 = serial checkpoint
    TrainCheckpoint {
        sweep: next() % 1000,
        seed: next(),
        alpha,
        shards,
        z,
        nw,
        nt,
        main_rng: [next(), next(), next(), next()],
        shard_rngs: (0..shards)
            .map(|_| [next(), next(), next(), next()])
            .collect(),
        priors: (0..t)
            .map(|_| RawPrior::Symmetric {
                beta: (next() % 100 + 1) as f64 / 100.0,
            })
            .collect(),
    }
}

/// Patch a (checkpoint-free) v2 byte stream down to version 1 and restamp
/// the checksum — byte-identical to what a v1 writer produced, since the
/// sections and layout did not change in v2.
fn downgrade_to_v1(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    let body = bytes.len() - 8;
    let checksum = srclda_serve::codec::fnv1a64(&bytes[..body]);
    let len = bytes.len();
    bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encode_decode_is_bit_exact(t in 2usize..6, v in 2usize..24, seed in any::<u64>()) {
        let artifact = build_artifact(t, v, seed);
        let bytes = artifact.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        // φ compared by bit pattern, not float equality.
        let a_bits: Vec<u64> = artifact.phi().as_slice().iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u64> = back.phi().as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a_bits, b_bits);
        prop_assert_eq!(artifact.alpha().to_bits(), back.alpha().to_bits());
        prop_assert_eq!(artifact.labels(), back.labels());
        prop_assert_eq!(artifact.priors(), back.priors());
        prop_assert_eq!(artifact.vocabulary().words(), back.vocabulary().words());
        prop_assert_eq!(artifact.tokenizer().to_parts(), back.tokenizer().to_parts());
        // Re-encoding is deterministic and stable.
        prop_assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn checkpoint_section_round_trips_bit_exactly(
        t in 2usize..6,
        v in 2usize..24,
        seed in any::<u64>(),
    ) {
        let artifact = build_artifact(t, v, seed);
        let cp = build_checkpoint(t, v, seed ^ 0xc4ec, artifact.alpha());
        let artifact = artifact.with_checkpoint(cp.clone()).unwrap();
        let bytes = artifact.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.checkpoint(), Some(&cp));
        prop_assert_eq!(back.priors(), artifact.priors());
        prop_assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn v1_byte_streams_still_load_without_the_checkpoint_section(
        t in 2usize..6,
        v in 2usize..24,
        seed in any::<u64>(),
    ) {
        let artifact = build_artifact(t, v, seed);
        let v1_bytes = downgrade_to_v1(artifact.to_bytes());
        let back = ModelArtifact::from_bytes(&v1_bytes).unwrap();
        prop_assert!(back.checkpoint().is_none());
        prop_assert_eq!(back.labels(), artifact.labels());
        prop_assert_eq!(back.priors(), artifact.priors());
    }

    #[test]
    fn every_truncation_fails_cleanly(
        t in 2usize..6,
        v in 2usize..24,
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
        with_checkpoint in any::<bool>(),
    ) {
        let mut artifact = build_artifact(t, v, seed);
        if with_checkpoint {
            let cp = build_checkpoint(t, v, seed ^ 0x71c, artifact.alpha());
            artifact = artifact.with_checkpoint(cp).unwrap();
        }
        let bytes = artifact.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(ModelArtifact::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn every_single_byte_corruption_fails_cleanly(
        t in 2usize..6,
        v in 2usize..24,
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
        with_checkpoint in any::<bool>(),
    ) {
        // The checksum trailer covers the full payload, so flipping any one
        // bit anywhere must be caught (by checksum, magic, or version).
        let mut artifact = build_artifact(t, v, seed);
        if with_checkpoint {
            let cp = build_checkpoint(t, v, seed ^ 0xf11b, artifact.alpha());
            artifact = artifact.with_checkpoint(cp).unwrap();
        }
        let mut bytes = artifact.to_bytes();
        let idx = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(ModelArtifact::from_bytes(&bytes).is_err());
    }
}

#[test]
fn corrupted_header_reports_bad_magic() {
    let bytes = b"NOTAMODL the rest does not matter".to_vec();
    assert!(matches!(
        ModelArtifact::from_bytes(&bytes),
        Err(ServeError::BadMagic { .. })
    ));
}

#[test]
fn future_version_reports_unsupported() {
    // Build a valid artifact, then bump the version field and re-stamp the
    // checksum: a well-formed file from the future must be refused by
    // version, not by checksum.
    let artifact = tiny_artifact();
    let mut bytes = artifact.to_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let body = bytes.len() - 8;
    let checksum = srclda_serve::codec::fnv1a64(&bytes[..body]);
    let len = bytes.len();
    bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
    assert!(matches!(
        ModelArtifact::from_bytes(&bytes),
        Err(ServeError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
    ));
}

#[test]
fn wrong_checksum_is_distinguished_from_truncation() {
    let artifact = tiny_artifact();
    let mut bytes = artifact.to_bytes();
    let len = bytes.len();
    bytes[len - 1] ^= 0xff;
    assert!(matches!(
        ModelArtifact::from_bytes(&bytes),
        Err(ServeError::ChecksumMismatch { .. })
    ));
}

fn tiny_artifact() -> ModelArtifact {
    let mut phi = DenseMatrix::from_vec(2, 3, vec![3.0, 2.0, 1.0, 1.0, 2.0, 3.0]);
    phi.normalize_rows();
    ModelArtifact::new(
        0.5,
        phi,
        vec![Some("A".into()), None],
        vec![
            RawPrior::Symmetric { beta: 0.1 },
            RawPrior::Fixed {
                delta: vec![1.0, 2.0, 3.0],
            },
        ],
        Vocabulary::from_words(["a", "b", "c"]),
        Tokenizer::default(),
    )
    .unwrap()
}
