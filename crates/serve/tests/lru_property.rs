//! Property test pinning [`LruCache`]'s eviction order against a
//! transparent reference model under interleaved get/insert sequences.
//!
//! The reference is the textbook recency list (oldest → newest, O(n) per
//! op): `get` moves a present key to the newest end, `insert` of an
//! existing key updates in place and moves it to the newest end, and
//! `insert` of a new key at capacity evicts the oldest. The real cache's
//! stamp-scan implementation must be observably indistinguishable.

use proptest::prelude::*;
use srclda_serve::LruCache;

/// The reference LRU: a recency-ordered list of (key, value).
struct RefLru {
    capacity: usize,
    entries: Vec<(u32, u32)>, // index 0 = least recently used
}

impl RefLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.push(entry);
        Some(value)
    }

    fn insert(&mut self, key: u32, value: u32) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0); // evict the least recently used
        }
        self.entries.push((key, value));
    }
}

/// Decode one fuzz word into an operation over a small key space (small
/// on purpose: collisions and re-insertions are where eviction bugs live).
fn apply(
    cache: &mut LruCache<u32, u32>,
    model: &mut RefLru,
    word: u32,
) -> Result<(), TestCaseError> {
    let key = word % 11;
    let value = word / 2;
    if word.is_multiple_of(3) {
        prop_assert_eq!(cache.get(&key).copied(), model.get(key));
    } else {
        cache.insert(key, value);
        model.insert(key, value);
    }
    prop_assert_eq!(cache.len(), model.entries.len());
    prop_assert!(cache.len() <= cache.capacity());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_the_reference_model(
        capacity in 1usize..9,
        words in proptest::collection::vec(any::<u32>(), 1..250),
    ) {
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        let mut model = RefLru::new(capacity);
        for &word in &words {
            apply(&mut cache, &mut model, word)?;
        }
        // Final residency check: exactly the model's keys are present,
        // with the model's values. Probing mutates recency in both
        // structures identically (both treat a probe as a touch), so the
        // comparison stays fair while we drain it.
        let expected: Vec<(u32, u32)> = model.entries.clone();
        for (key, value) in expected {
            prop_assert_eq!(cache.get(&key).copied(), model.get(key));
            prop_assert_eq!(cache.get(&key), Some(&value));
            let _ = model.get(key);
        }
    }

    #[test]
    fn eviction_is_exactly_the_least_recently_used_key(
        capacity in 2usize..6,
        touches in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        // Fill to capacity with known keys, touch a fuzzed sequence of
        // them, then overflow with one fresh key: the evicted key must be
        // the one the reference model says is oldest.
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        let mut model = RefLru::new(capacity);
        for k in 0..capacity as u32 {
            cache.insert(k, k * 10);
            model.insert(k, k * 10);
        }
        for &t in &touches {
            let key = t % capacity as u32;
            prop_assert_eq!(cache.get(&key).copied(), model.get(key));
        }
        let oldest = model.entries[0].0;
        let fresh = capacity as u32 + 1000;
        cache.insert(fresh, 1);
        model.insert(fresh, 1);
        prop_assert_eq!(cache.get(&oldest), None);
        prop_assert_eq!(cache.get(&fresh), Some(&1));
        // Every other original key survived.
        for k in 0..capacity as u32 {
            if k != oldest {
                prop_assert!(cache.get(&k).is_some(), "key {} wrongly evicted", k);
            }
        }
    }
}
