//! Loopback integration tests for the `srclda-served` daemon: boot the
//! real server in-process on an OS-assigned port, speak actual HTTP over
//! `TcpStream`, and hold the responses to the subsystem's headline bar —
//! θ from the wire must be **bit-identical** to θ from the engine API on
//! the same artifact (same content-derived seeds), across concurrent
//! connections, batches, and hot reloads.

use srclda_core::prelude::*;
use srclda_corpus::{CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_serve::server::json;
use srclda_serve::{
    EngineOptions, InferenceEngine, ModelArtifact, ModelRegistry, RetryClient, RetryPolicy, Server,
    ServerConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn artifact(seed: u64) -> ModelArtifact {
    artifact_with_alpha(seed, 0.5)
}

fn artifact_with_alpha(seed: u64, alpha: f64) -> ModelArtifact {
    let tokenizer = Tokenizer::default().min_len(2);
    let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for _ in 0..8 {
        b.add_text("school", "pencil pencil ruler eraser notebook");
        b.add_text("sports", "baseball umpire baseball glove pitcher");
    }
    let corpus = b.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil pencil ruler ruler eraser notebook",
    );
    ks.add_article("Baseball", "baseball baseball umpire glove pitcher");
    let source = ks.build(corpus.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(source)
        .variant(Variant::Bijective)
        .alpha(alpha)
        .iterations(60)
        .seed(seed)
        .build()
        .unwrap()
        .fit(&corpus)
        .unwrap();
    ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("srclda-loopback-{}-{tag}.slda", std::process::id()))
}

/// Boot a server with one model ("m") loaded from `path`.
fn boot(path: &PathBuf, workers: usize) -> (ServerHandle, JoinHandle<()>, Arc<ModelRegistry>) {
    let registry = Arc::new(ModelRegistry::new(EngineOptions::default()));
    registry.load("m", path).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        batch_workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, registry.clone()).unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join, registry)
}

/// Read one HTTP response (status, body) from a buffered stream.
fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    srclda_serve::server::http::read_simple_response(reader).unwrap()
}

/// One-shot request on a fresh connection (`Connection: close`).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    read_response(&mut BufReader::new(stream))
}

/// Extract θ from a single-document `/infer` response as raw bits.
fn theta_bits(body: &str) -> Vec<u64> {
    let v = json::parse(body).unwrap();
    v.get("theta")
        .unwrap_or_else(|| panic!("no theta in {body}"))
        .as_arr()
        .unwrap()
        .iter()
        .map(|p| p.as_f64().unwrap().to_bits())
        .collect()
}

fn engine_theta_bits(engine: &InferenceEngine, text: &str) -> Vec<u64> {
    engine
        .infer(text)
        .unwrap()
        .theta()
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

#[test]
fn healthz_reports_loaded_models() {
    let path = temp_path("healthz");
    artifact(11).save(&path).unwrap();
    let (handle, join, _) = boot(&path, 2);
    let (status, body) = http(handle.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("models").unwrap().as_arr().unwrap().len(), 1);
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn infer_theta_is_bit_identical_to_the_engine_api() {
    let path = temp_path("bitexact");
    let artifact = artifact(11);
    artifact.save(&path).unwrap();
    // The reference engine: same artifact, same (default) options the
    // registry builds its engines with.
    let engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let (handle, join, _) = boot(&path, 2);

    for text in [
        "the umpire caught the baseball",
        "pencil ruler eraser notebook",
        "pencil baseball quasar",
        "",
    ] {
        let request = json::obj(vec![("text", json::Value::from(text))]).render();
        let (status, body) = http(handle.addr(), "POST", "/infer", &request);
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            theta_bits(&body),
            engine_theta_bits(&engine, text),
            "θ over the wire diverged for {text:?}"
        );
        let v = json::parse(&body).unwrap();
        let reference = engine.infer(text).unwrap();
        assert_eq!(
            v.get("tokens").unwrap().as_usize(),
            Some(reference.num_tokens())
        );
        assert_eq!(
            v.get("oov_tokens").unwrap().as_usize(),
            Some(reference.oov_tokens())
        );
        assert_eq!(
            v.get("perplexity").unwrap().as_f64().unwrap().to_bits(),
            reference.perplexity().to_bits()
        );
    }
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_infer_matches_engine_batch_and_labels_topics() {
    let path = temp_path("batch");
    let artifact = artifact(11);
    artifact.save(&path).unwrap();
    let engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let (handle, join, _) = boot(&path, 2);

    let docs = [
        "pencil pencil ruler",
        "baseball umpire glove",
        "notebook eraser",
    ];
    let request = json::obj(vec![
        (
            "docs",
            json::Value::Arr(docs.iter().map(|&d| d.into()).collect()),
        ),
        ("top", json::Value::from(1usize)),
    ])
    .render();
    let (status, body) = http(handle.addr(), "POST", "/infer", &request);
    assert_eq!(status, 200, "{body}");
    let v = json::parse(&body).unwrap();
    let results = v.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), docs.len());
    let reference = engine.infer_batch(&docs).unwrap();
    for (result, reference) in results.iter().zip(&reference) {
        let bits: Vec<u64> = result
            .get("theta")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| p.as_f64().unwrap().to_bits())
            .collect();
        let expect: Vec<u64> = reference.theta().iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, expect);
        // `top: 1` limits the labeled topics per document.
        assert_eq!(result.get("top").unwrap().as_arr().unwrap().len(), 1);
    }
    // The top topic of the baseball document is labeled.
    let top = &results[1].get("top").unwrap().as_arr().unwrap()[0];
    assert_eq!(top.get("label").unwrap().as_str(), Some("Baseball"));
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn concurrent_connections_all_see_identical_bits() {
    let path = temp_path("concurrent");
    let artifact = artifact(11);
    artifact.save(&path).unwrap();
    let engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let (handle, join, _) = boot(&path, 4);
    let addr = handle.addr();

    // Six texts with *distinct in-vocabulary token sequences* — the cache
    // keys on token ids, so an OOV-only difference would collapse them.
    let words = [
        "pencil", "ruler", "eraser", "notebook", "baseball", "umpire", "glove", "pitcher",
    ];
    let texts: Vec<String> = (0..6)
        .map(|i| format!("{} {} {}", words[i], words[i + 1], words[i + 2]))
        .collect();
    let expected: Vec<Vec<u64>> = texts
        .iter()
        .map(|t| engine_theta_bits(&engine, t))
        .collect();
    std::thread::scope(|s| {
        for client in 0..8 {
            let texts = &texts;
            let expected = &expected;
            s.spawn(move || {
                // Each client hammers every text on a persistent
                // keep-alive connection, out of phase with the others.
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                for round in 0..3 {
                    for i in 0..texts.len() {
                        let idx = (i + client + round) % texts.len();
                        let body =
                            json::obj(vec![("text", json::Value::from(texts[idx].as_str()))])
                                .render();
                        write!(
                            writer,
                            "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        )
                        .unwrap();
                        let (status, response) = read_response(&mut reader);
                        assert_eq!(status, 200, "{response}");
                        assert_eq!(theta_bits(&response), expected[idx], "client {client}");
                    }
                }
            });
        }
    });
    // Cache coherence across all that traffic: hits + misses == requests.
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let cache = v.get("models").unwrap().as_arr().unwrap()[0]
        .get("cache")
        .unwrap();
    let hits = cache.get("hits").unwrap().as_f64().unwrap() as u64;
    let misses = cache.get("misses").unwrap().as_f64().unwrap() as u64;
    assert_eq!(hits + misses, 8 * 3 * 6);
    // The cache has no single-flight: two clients missing the same text
    // concurrently both fold in (identical bits either way), so misses
    // can exceed the 6 distinct texts — but never the first round's
    // worst case of every client missing every text.
    assert!(
        (6..=8 * 6).contains(&misses),
        "misses = {misses}, expected between 6 and 48"
    );
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn error_paths_return_structured_json() {
    let path = temp_path("errors");
    artifact(11).save(&path).unwrap();
    let (handle, join, _) = boot(&path, 2);
    let addr = handle.addr();

    let cases = [
        ("POST", "/infer", "not json", 400),
        ("POST", "/infer", "{\"text\": 3}", 400),
        ("POST", "/infer", "{}", 400),
        ("POST", "/infer", "{\"text\": \"x\", \"docs\": []}", 400),
        ("POST", "/infer", "{\"txet\": \"typo\"}", 400),
        ("POST", "/infer", "{\"text\": \"x\", \"top\": -1}", 400),
        (
            "POST",
            "/infer",
            "{\"text\": \"x\", \"model\": \"nope\"}",
            404,
        ),
        ("POST", "/reload", "{\"model\": \"nope\"}", 404),
        // A typo'd key must not silently degrade into reload-all.
        ("POST", "/reload", "{\"modle\": \"typo\"}", 400),
        ("POST", "/reload", "[\"m\"]", 400),
        ("GET", "/nope", "", 404),
        ("POST", "/healthz", "", 405),
        ("GET", "/infer", "", 405),
    ];
    for (method, route, body, expect) in cases {
        let (status, response) = http(addr, method, route, body);
        assert_eq!(status, expect, "{method} {route} {body} → {response}");
        assert!(
            json::parse(&response).unwrap().get("error").is_some() || status < 400,
            "error responses carry an \"error\" field: {response}"
        );
    }
    // Malformed HTTP gets a 400 too (handled below request parsing).
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "BROKEN\r\n\r\n").unwrap();
    let (status, _) = read_response(&mut BufReader::new(stream));
    assert_eq!(status, 400);
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn metrics_count_requests_and_tokens() {
    let path = temp_path("metrics");
    artifact(11).save(&path).unwrap();
    let (handle, join, _) = boot(&path, 2);
    let addr = handle.addr();

    // Before any document has been served, the latency histogram is empty:
    // /metrics must report null quantiles, not a fabricated p50/p99 of 0.
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let infer = v.get("infer").unwrap();
    for field in ["latency_p50_ms", "latency_p99_ms"] {
        let value = infer.get(field).unwrap();
        assert!(
            value.as_f64().is_none(),
            "{field} must be null before the first sample, got {body}"
        );
        assert!(
            body.contains(&format!("\"{field}\":null")),
            "{field} must render as a JSON null: {body}"
        );
    }
    assert_eq!(infer.get("docs").unwrap().as_usize(), Some(0));

    for _ in 0..3 {
        let (status, _) = http(
            addr,
            "POST",
            "/infer",
            "{\"text\": \"pencil ruler baseball\"}",
        );
        assert_eq!(status, 200);
    }
    let (_, _) = http(addr, "POST", "/infer", "{\"nope\": 1}");
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    // 1 empty-histogram /metrics probe + 3 infers + 1 bad infer.
    assert_eq!(v.get("requests").unwrap().as_usize(), Some(5 + 1));
    let responses = v.get("responses").unwrap();
    // 3 infer 200s + the empty-histogram /metrics probe's 200.
    assert_eq!(responses.get("ok").unwrap().as_usize(), Some(3 + 1));
    assert_eq!(responses.get("client_error").unwrap().as_usize(), Some(1));
    let infer = v.get("infer").unwrap();
    assert_eq!(infer.get("docs").unwrap().as_usize(), Some(3));
    assert_eq!(infer.get("tokens").unwrap().as_usize(), Some(9));
    assert!(infer.get("tokens_per_sec").unwrap().as_f64().unwrap() > 0.0);
    assert!(infer.get("latency_p50_ms").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        infer.get("latency_p99_ms").unwrap().as_f64().unwrap()
            >= infer.get("latency_p50_ms").unwrap().as_f64().unwrap()
    );
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn metrics_prometheus_shape_unifies_serving_and_trainer_families() {
    use std::io::Read as _;

    let path = temp_path("prom");
    artifact(11).save(&path).unwrap();
    // Boot with a trainer registry mounted into /metrics, as a daemon
    // colocated with training would.
    let registry = Arc::new(ModelRegistry::new(EngineOptions::default()));
    registry.load("m", &path).unwrap();
    let trainer = Arc::new(srclda_obs::Registry::new());
    trainer
        .counter("srclda_train_sweeps_total", "Completed sweeps.", &[])
        .add(42);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        batch_workers: 2,
        extra_metrics: trainer,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, registry).unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    let addr = handle.addr();

    let (status, body) = http(addr, "POST", "/infer", "{\"text\": \"pencil ruler\"}");
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "{body}");

    // Accept: text/plain selects the Prometheus exposition.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain; version=0.0.4\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    assert!(
        raw.contains("Content-Type: text/plain; version=0.0.4\r\n"),
        "missing exposition content type: {raw}"
    );
    let text = raw.split("\r\n\r\n").nth(1).unwrap();
    let samples = srclda_obs::validate_exposition(text).expect("valid exposition");
    assert!(
        samples > 20,
        "expected a full exposition, got {samples} samples"
    );
    // Serving families, per-model families, registry families, and the
    // mounted trainer family all appear in one scrape.
    assert!(
        text.contains("srclda_serve_responses_total{class=\"ok\"}"),
        "{text}"
    );
    assert!(text.contains("srclda_serve_reloads_total 1\n"), "{text}");
    assert!(
        text.contains("srclda_serve_last_reload_timestamp_seconds"),
        "{text}"
    );
    assert!(
        text.contains("srclda_serve_model_requests_total{model=\"m\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("srclda_serve_model_active_requests{model=\"m\"} 0\n"),
        "{text}"
    );
    assert!(
        text.contains("srclda_serve_model_generation{model=\"m\"} 1\n"),
        "{text}"
    );
    assert!(
        text.contains("srclda_serve_infer_latency_seconds_bucket"),
        "{text}"
    );
    assert!(
        text.contains("srclda_serve_infer_latency_seconds_count 1\n"),
        "{text}"
    );
    assert!(text.contains("srclda_train_sweeps_total 42\n"), "{text}");

    // Without an Accept header the JSON shape (with the new reload and
    // connection fields) is unchanged as the default.
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).unwrap();
    let reload = v.get("reload").unwrap();
    assert_eq!(reload.get("count").unwrap().as_usize(), Some(1));
    assert!(reload.get("last_unix").unwrap().as_f64().unwrap() > 0.0);
    assert!(v.get("active_connections").is_some());
    let model = &v.get("models").unwrap().as_arr().unwrap()[0];
    assert_eq!(model.get("requests").unwrap().as_usize(), Some(1));
    assert_eq!(model.get("active_requests").unwrap().as_usize(), Some(0));
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn reload_hot_swaps_the_artifact_atomically() {
    let path = temp_path("reload");
    artifact(11).save(&path).unwrap();
    let (handle, join, registry) = boot(&path, 2);
    let addr = handle.addr();
    // An odd in-vocabulary token count: the topic counts cannot split
    // evenly, so θ = (n + α)/(N + Tα) must differ between the two α's.
    let text_request = "{\"text\": \"pencil ruler baseball umpire glove\"}";

    let (_, before) = http(addr, "POST", "/infer", text_request);
    let before_bits = theta_bits(&before);
    assert_eq!(
        json::parse(&before)
            .unwrap()
            .get("generation")
            .unwrap()
            .as_usize(),
        Some(0)
    );

    // A different model (distinct α, so θ must change) lands on the same
    // path; /reload swaps it in.
    artifact_with_alpha(97, 0.9).save(&path).unwrap();
    let (status, body) = http(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "{body}");
    let reloaded = json::parse(&body).unwrap();
    assert_eq!(reloaded.get("reloaded").unwrap().as_arr().unwrap().len(), 1);

    let (_, after) = http(addr, "POST", "/infer", text_request);
    assert_eq!(
        json::parse(&after)
            .unwrap()
            .get("generation")
            .unwrap()
            .as_usize(),
        Some(1)
    );
    assert_ne!(theta_bits(&after), before_bits, "swap must change θ");
    // And the swapped engine matches a fresh engine on the new artifact.
    let engine = InferenceEngine::from_artifact(
        &ModelArtifact::load(&path).unwrap(),
        EngineOptions::default(),
    )
    .unwrap();
    assert_eq!(
        theta_bits(&after),
        engine_theta_bits(&engine, "pencil ruler baseball umpire glove")
    );
    assert_eq!(registry.get("m").unwrap().generation, 1);
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

/// Boot a server with one model ("m") and an explicit config (the shed
/// knobs default off in [`boot`]).
fn boot_with(
    path: &PathBuf,
    config: ServerConfig,
) -> (ServerHandle, JoinHandle<()>, Arc<ModelRegistry>) {
    let registry = Arc::new(ModelRegistry::new(EngineOptions::default()));
    registry.load("m", path).unwrap();
    let server = Server::bind(config, registry.clone()).unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());
    (handle, join, registry)
}

#[test]
fn overloaded_daemon_sheds_with_503_retry_after_and_counts_it() {
    let path = temp_path("shed");
    artifact(11).save(&path).unwrap();
    // `--max-inflight 0`: every /infer sheds — the deterministic way to
    // observe the overload path without racing real concurrency.
    let (handle, join, _) = boot_with(
        &path,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch_workers: 2,
            max_inflight: Some(0),
            retry_after_secs: 7,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let body = "{\"text\": \"pencil ruler\"}";
    write!(
        writer,
        "POST /infer HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, headers, response) =
        srclda_serve::server::http::read_response_with_headers(&mut BufReader::new(stream))
            .unwrap();
    assert_eq!(status, 503, "{response}");
    let retry_after = headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .map(|(_, value)| value.as_str());
    assert_eq!(retry_after, Some("7"), "headers: {headers:?}");
    let v = json::parse(&response).unwrap();
    assert!(
        v.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("overloaded"),
        "{response}"
    );

    // Sheds are visible in both metric shapes; /healthz stays unshedded.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (_, body) = http(addr, "GET", "/metrics", "");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("shed_total").unwrap().as_usize(), Some(1));
    assert_eq!(
        v.get("infer").unwrap().get("inflight").unwrap().as_usize(),
        Some(0)
    );
    use std::io::Read as _;
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).unwrap();
    let text = raw.split("\r\n\r\n").nth(1).unwrap();
    srclda_obs::validate_exposition(text).expect("valid exposition");
    assert!(text.contains("srclda_serve_shed_total 1\n"), "{text}");
    assert!(text.contains("srclda_serve_infer_inflight 0\n"), "{text}");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn retry_client_backs_off_through_sheds_and_succeeds_under_a_tight_cap() {
    let path = temp_path("retryclient");
    let reference = artifact(11);
    reference.save(&path).unwrap();
    let engine = InferenceEngine::from_artifact(&reference, EngineOptions::default()).unwrap();
    // One admitted /infer at a time: concurrent clients *will* be shed,
    // and each must recover through backoff rather than erroring out.
    let (handle, join, _) = boot_with(
        &path,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            batch_workers: 2,
            max_inflight: Some(1),
            retry_after_secs: 0,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let expected = engine_theta_bits(&engine, "pencil ruler baseball");
    std::thread::scope(|s| {
        for client in 0..6u64 {
            let addr = &addr;
            let expected = &expected;
            s.spawn(move || {
                let client = RetryClient::new(RetryPolicy {
                    max_attempts: 60,
                    base_delay: Duration::from_millis(2),
                    max_delay: Duration::from_millis(40),
                    jitter_seed: client,
                });
                for _ in 0..3 {
                    let (status, body) = client
                        .request(
                            addr,
                            "POST",
                            "/infer",
                            "{\"text\": \"pencil ruler baseball\"}",
                        )
                        .expect("the daemon is reachable");
                    assert_eq!(status, 200, "retry budget exhausted while shed: {body}");
                    assert_eq!(&theta_bits(&body), expected);
                }
            });
        }
    });

    // Against a shed-everything daemon the client gives up *politely*:
    // the final 503 is returned, not a socket error.
    let registry = srclda_obs::Registry::new();
    let give_up = RetryClient::with_registry(
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 9,
        },
        &registry,
    );
    handle.shutdown();
    join.join().unwrap();
    let (handle, join, _) = boot_with(
        &path,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch_workers: 2,
            max_inflight: Some(0),
            retry_after_secs: 0,
            ..ServerConfig::default()
        },
    );
    let (status, body) = give_up
        .request(
            &handle.addr().to_string(),
            "POST",
            "/infer",
            "{\"text\": \"pencil\"}",
        )
        .expect("a shed is a response, not an error");
    assert_eq!(status, 503, "{body}");
    let text = registry.render();
    assert!(text.contains("srclda_client_attempts_total 3\n"), "{text}");
    assert!(
        text.contains("srclda_client_retries_total{reason=\"shed\"} 2\n"),
        "{text}"
    );
    assert!(text.contains("srclda_client_giveups_total 1\n"), "{text}");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn failed_reload_keeps_the_old_model_serving_and_counts_the_failure() {
    let path = temp_path("reloadfail");
    artifact(11).save(&path).unwrap();
    let (handle, join, registry) = boot(&path, 2);
    let addr = handle.addr();
    let request = "{\"text\": \"pencil ruler baseball\"}";

    let (status, before) = http(addr, "POST", "/infer", request);
    assert_eq!(status, 200, "{before}");
    let before_bits = theta_bits(&before);

    // The artifact on disk is replaced by garbage — a crashed writer, a
    // partial copy. /reload must fail loudly and keep serving the old
    // model (no half-swapped registry entry, generation unchanged).
    std::fs::write(&path, b"not an artifact").unwrap();
    let (status, body) = http(addr, "POST", "/reload", "");
    assert_eq!(status, 500, "{body}");
    assert!(json::parse(&body).unwrap().get("error").is_some());

    let (status, after) = http(addr, "POST", "/infer", request);
    assert_eq!(status, 200, "old model must keep serving: {after}");
    assert_eq!(theta_bits(&after), before_bits);
    assert_eq!(registry.get("m").unwrap().generation, 0);

    let (_, body) = http(addr, "GET", "/metrics", "");
    let v = json::parse(&body).unwrap();
    let reload = v.get("reload").unwrap();
    assert_eq!(reload.get("count").unwrap().as_usize(), Some(0));
    assert_eq!(reload.get("failures").unwrap().as_usize(), Some(1));
    use std::io::Read as _;
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).unwrap();
    let text = raw.split("\r\n\r\n").nth(1).unwrap();
    assert!(
        text.contains("srclda_serve_reload_failures_total 1\n"),
        "{text}"
    );
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn graceful_shutdown_drains_and_releases_the_port() {
    let path = temp_path("shutdown");
    artifact(11).save(&path).unwrap();
    let (handle, join, _) = boot(&path, 3);
    let addr = handle.addr();
    let (status, _) = http(addr, "POST", "/infer", "{\"text\": \"pencil\"}");
    assert_eq!(status, 200);

    handle.shutdown();
    assert!(handle.is_shutdown());
    join.join().expect("workers exit cleanly");

    // Every listener clone is dropped once the workers exit, so the OS
    // refuses new connections (retry briefly: TIME_WAIT etc.).
    let mut refused = false;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(refused, "port should be released after shutdown");
    let _ = std::fs::remove_file(path);
}
