//! Concurrency stress tests for [`InferenceEngine`]: many threads
//! hammering duplicate documents through the shared LRU cache. The
//! invariants under contention are exactly the ones a daemon depends on —
//! `hits + misses == requests`, resident entries never exceed capacity,
//! and every response for a given text is bit-identical no matter which
//! thread computed or cached it.

use srclda_core::prelude::*;
use srclda_corpus::{CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_serve::{DocumentScore, EngineOptions, InferenceEngine, ModelArtifact};
use std::sync::Arc;

fn engine(cache_capacity: usize) -> InferenceEngine {
    let tokenizer = Tokenizer::default().min_len(2);
    let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for _ in 0..8 {
        b.add_text("school", "pencil pencil ruler eraser notebook");
        b.add_text("sports", "baseball umpire baseball glove pitcher");
    }
    let corpus = b.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil pencil ruler ruler eraser notebook",
    );
    ks.add_article("Baseball", "baseball baseball umpire glove pitcher");
    let source = ks.build(corpus.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(source)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(60)
        .seed(11)
        .build()
        .unwrap()
        .fit(&corpus)
        .unwrap();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    InferenceEngine::from_artifact(
        &artifact,
        EngineOptions {
            cache_capacity,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

/// Distinct in-vocabulary documents (the cache keys on token ids, so the
/// texts must differ in ids, not just raw bytes).
fn documents(n: usize) -> Vec<String> {
    let words = [
        "pencil", "ruler", "eraser", "notebook", "baseball", "umpire", "glove", "pitcher",
    ];
    (0..n)
        .map(|i| {
            let a = words[i % words.len()];
            let b = words[(i + 1) % words.len()];
            let c = words[(i * 3 + 2) % words.len()];
            format!("{a} {b} {c} {a}")
        })
        .collect()
}

fn hammer(
    engine: &InferenceEngine,
    docs: &[String],
    threads: usize,
    rounds: usize,
) -> Vec<Vec<Arc<DocumentScore>>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut scored = Vec::with_capacity(rounds * docs.len());
                    for round in 0..rounds {
                        for i in 0..docs.len() {
                            // Offset per thread so threads collide on the
                            // same documents at different times.
                            let doc = &docs[(i + t + round) % docs.len()];
                            scored.push(engine.infer(doc).expect("inference succeeds"));
                        }
                    }
                    scored
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn stress_cache_counters_balance_and_results_are_bit_identical() {
    let docs = documents(6);
    let engine = engine(64); // roomy: nothing is ever evicted
    let reference: Vec<Arc<DocumentScore>> =
        docs.iter().map(|d| engine.infer(d).unwrap()).collect();

    let threads = 8;
    let rounds = 20;
    let _ = hammer(&engine, &docs, threads, rounds);

    let stats = engine.cache_stats();
    let requests = (threads * rounds * docs.len() + docs.len()) as u64; // + the reference pass
    assert_eq!(
        stats.hits + stats.misses,
        requests,
        "every request is exactly one hit or one miss"
    );
    // With no eviction, each distinct document folds in exactly once.
    assert_eq!(stats.misses as usize, docs.len());
    assert_eq!(stats.entries, docs.len());
    assert!(stats.entries <= 64);

    // Whatever thread answered, the bits are the engine's bits.
    for (i, doc) in docs.iter().enumerate() {
        let again = engine.infer(doc).unwrap();
        assert_eq!(*again, *reference[i], "doc {i} diverged under contention");
    }
}

#[test]
fn stress_under_eviction_pressure_keeps_every_invariant() {
    let docs = documents(12);
    let engine = engine(4); // far fewer slots than distinct documents
    let reference: Vec<Arc<DocumentScore>> =
        docs.iter().map(|d| engine.infer(d).unwrap()).collect();
    let before = engine.cache_stats();

    let threads = 8;
    let rounds = 10;
    let results = hammer(&engine, &docs, threads, rounds);

    let stats = engine.cache_stats();
    let requests = before.hits + before.misses + (threads * rounds * docs.len()) as u64;
    assert_eq!(stats.hits + stats.misses, requests);
    assert!(
        stats.entries <= 4,
        "entries {} exceeded capacity 4",
        stats.entries
    );
    // Eviction forces recomputation, never divergence: every result from
    // every thread carries the reference bits for its document.
    for (t, scored) in results.iter().enumerate() {
        for (j, score) in scored.iter().enumerate() {
            let round = j / docs.len();
            let i = j % docs.len();
            let doc_index = (i + t + round) % docs.len();
            assert_eq!(
                **score, *reference[doc_index],
                "thread {t} request {j} diverged"
            );
        }
    }
    assert!(
        stats.misses > docs.len() as u64,
        "capacity pressure must force recomputation (misses = {})",
        stats.misses
    );
}

#[test]
fn stress_mixed_with_batch_paths_and_disabled_cache() {
    // The uncached engine under the same hammering: counters stay zeroed
    // except misses, and results still match (content-derived seeds).
    let docs = documents(5);
    let engine = engine(0);
    let reference: Vec<Arc<DocumentScore>> =
        docs.iter().map(|d| engine.infer(d).unwrap()).collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let docs = &docs;
            let engine = &engine;
            let reference = &reference;
            s.spawn(move || {
                let batch = engine.infer_batch_parallel(docs, 3).unwrap();
                for (b, r) in batch.iter().zip(reference) {
                    assert_eq!(**b, **r);
                }
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.misses, (docs.len() * 5) as u64); // reference + 4 batches
}
