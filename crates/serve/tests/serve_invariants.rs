//! The subsystem's headline invariant: persisting a model and serving it
//! from the artifact is *observably identical* to serving the in-memory
//! `FittedModel` — same θ bits, same assignments, same perplexity.

use srclda_core::prelude::*;
use srclda_corpus::{CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_serve::{EngineOptions, InferenceEngine, ModelArtifact};

fn train() -> (srclda_corpus::Corpus, FittedModel, Tokenizer) {
    let tokenizer = Tokenizer::default();
    let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for i in 0..12 {
        b.add_text(
            format!("school-{i}"),
            "pencil ruler eraser notebook pencil crayon ruler",
        );
        b.add_text(
            format!("sports-{i}"),
            "baseball umpire glove pitcher inning baseball",
        );
        b.add_text(
            format!("finance-{i}"),
            "stock bond dividend market stock broker",
        );
    }
    let corpus = b.build();
    let mut ks = KnowledgeSourceBuilder::new();
    ks.add_article(
        "School Supplies",
        "pencil ruler eraser notebook crayon ".repeat(25),
    );
    ks.add_article(
        "Baseball",
        "baseball umpire glove pitcher inning ".repeat(25),
    );
    ks.add_article("Finance", "stock bond dividend market broker ".repeat(25));
    let source = ks.build(corpus.vocabulary());
    let fitted = SourceLda::builder()
        .knowledge_source(source)
        .variant(Variant::Bijective)
        .alpha(0.5)
        .iterations(120)
        .seed(23)
        .build()
        .unwrap()
        .fit(&corpus)
        .unwrap();
    (corpus, fitted, tokenizer)
}

#[test]
fn save_load_infer_matches_in_memory_fold_in_bit_exactly() {
    let (corpus, fitted, tokenizer) = train();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();

    // Round-trip through bytes, as a real deployment would through a file.
    let loaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();

    let held_out = "the umpire dropped a pencil near the pitcher before the inning";
    let tokens: Vec<u32> = tokenizer
        .tokenize(held_out)
        .into_iter()
        .filter_map(|t| corpus.vocabulary().get(&t))
        .map(|id| id.0)
        .collect();
    assert!(
        tokens.len() >= 4,
        "held-out doc must overlap the vocabulary"
    );

    let cfg = FoldInConfig {
        iterations: 40,
        seed: 97,
    };
    let in_memory = Inference::from_fitted(&fitted)
        .fold_in(&tokens, &cfg)
        .unwrap();
    let from_disk = loaded.inference().unwrap().fold_in(&tokens, &cfg).unwrap();

    let mem_bits: Vec<u64> = in_memory.theta().iter().map(|x| x.to_bits()).collect();
    let disk_bits: Vec<u64> = from_disk.theta().iter().map(|x| x.to_bits()).collect();
    assert_eq!(mem_bits, disk_bits, "θ must round-trip bit-exactly");
    assert_eq!(in_memory.assignments(), from_disk.assignments());
    assert_eq!(
        in_memory.log_likelihood().to_bits(),
        from_disk.log_likelihood().to_bits()
    );
    assert_eq!(
        in_memory.perplexity().to_bits(),
        from_disk.perplexity().to_bits()
    );
}

#[test]
fn engine_from_disk_matches_engine_from_memory() {
    let (corpus, fitted, tokenizer) = train();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    let loaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();

    let mem_engine = InferenceEngine::from_artifact(&artifact, EngineOptions::default()).unwrap();
    let disk_engine = InferenceEngine::from_artifact(&loaded, EngineOptions::default()).unwrap();

    let docs = [
        "umpire umpire baseball glove",
        "pencil and ruler on the market",
        "dividend dividend stock bond broker",
        "totally unrelated quasar text",
    ];
    let a = mem_engine.infer_batch(&docs).unwrap();
    let b = disk_engine.infer_batch_parallel(&docs, 3).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
}

#[test]
fn labels_survive_the_round_trip_into_responses() {
    let (corpus, fitted, tokenizer) = train();
    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
    let loaded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    let engine = InferenceEngine::from_artifact(&loaded, EngineOptions::default()).unwrap();
    let score = engine.infer("stock broker sells bond dividend").unwrap();
    assert_eq!(engine.label(score.top_topics(1)[0]), Some("Finance"));
}
