//! CLI contract tests for `srclda-infer` and `srclda-served`: both flag
//! forms (`--flag value` and `--flag=value`) parse identically, unknown
//! flags exit 2 instead of silently running with defaults, and the daemon
//! binary boots, serves, and shuts down gracefully on SIGTERM.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

const INFER_BIN: &str = env!("CARGO_BIN_EXE_srclda-infer");
const SERVED_BIN: &str = env!("CARGO_BIN_EXE_srclda-served");
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/model_v1.slda"
);

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("binary launches");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn infer_accepts_space_and_equals_forms_identically() {
    let space = run(
        INFER_BIN,
        &[
            "infer",
            FIXTURE,
            "--text",
            "pencil ruler pencil",
            "--iterations",
            "7",
            "--seed",
            "3",
            "--top",
            "2",
        ],
    );
    let equals = run(
        INFER_BIN,
        &[
            "infer",
            FIXTURE,
            "--text=pencil ruler pencil",
            "--iterations=7",
            "--seed=3",
            "--top=2",
        ],
    );
    assert_eq!(space.0, Some(0), "stderr: {}", space.2);
    assert_eq!(equals.0, Some(0), "stderr: {}", equals.2);
    assert_eq!(
        space.1, equals.1,
        "the two flag forms must score identically"
    );
    assert!(space.1.contains("tokens=3"), "stdout: {}", space.1);
}

#[test]
fn inspect_accepts_both_top_forms() {
    let space = run(INFER_BIN, &["inspect", FIXTURE, "--top", "2"]);
    let equals = run(INFER_BIN, &["inspect", FIXTURE, "--top=2"]);
    assert_eq!(space.0, Some(0), "stderr: {}", space.2);
    assert_eq!(space.1, equals.1);
}

#[test]
fn infer_rejects_unknown_flags_with_exit_2() {
    for args in [
        vec!["infer", FIXTURE, "--text", "pencil", "--bogus", "x"],
        vec!["infer", FIXTURE, "--text", "pencil", "--bogus=x"],
        vec!["infer", FIXTURE, "--text", "pencil", "--iteratoins", "7"],
        vec!["inspect", FIXTURE, "--workers", "2"], // known globally, not for inspect
        vec![
            "save", "--docs", "d", "--source", "s", "--out", "o", "--text", "x",
        ],
        vec!["infer", FIXTURE, "extra-positional", "--text", "pencil"],
        vec!["infer", FIXTURE, "--text"], // missing value
    ] {
        let (code, _, stderr) = run(INFER_BIN, &args);
        assert_eq!(
            code,
            Some(2),
            "args {args:?} should exit 2; stderr: {stderr}"
        );
        assert!(stderr.contains("error:"), "stderr should explain: {stderr}");
    }
}

#[test]
fn infer_text_value_may_look_like_a_flag() {
    // `--text "-h"` scores the literal string "-h"; it is not help.
    let (code, stdout, stderr) = run(INFER_BIN, &["infer", FIXTURE, "--text", "-h"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("tokens=0"), "stdout: {stdout}");
}

#[test]
fn served_rejects_unknown_flags_and_missing_models_with_exit_2() {
    for args in [
        vec!["--bogus"],
        vec!["--bogus=1"],
        vec!["--model", FIXTURE, "--wrokers", "2"],
        vec!["--model", FIXTURE, "stray-positional"],
        vec!["--model"], // missing value
        vec![],          // no model at all
        // Same file stem twice would silently hot-swap at startup.
        vec!["--model", FIXTURE, "--model", FIXTURE],
    ] {
        let (code, _, stderr) = run(SERVED_BIN, &args);
        assert_eq!(
            code,
            Some(2),
            "args {args:?} should exit 2; stderr: {stderr}"
        );
        assert!(stderr.contains("error:"), "stderr should explain: {stderr}");
    }
}

#[test]
fn served_help_documents_the_endpoints() {
    let (code, stdout, _) = run(SERVED_BIN, &["--help"]);
    assert_eq!(code, Some(0));
    for needle in [
        "/healthz",
        "/metrics",
        "/infer",
        "/reload",
        "--model",
        "--workers",
    ] {
        assert!(stdout.contains(needle), "help is missing {needle}");
    }
    let (code, _, stderr) = run(SERVED_BIN, &["--model", "/nonexistent.slda"]);
    assert_eq!(code, Some(1), "bad artifact is a runtime error, not usage");
    assert!(stderr.contains("cannot load"));
    // "--help" as a flag *value* is a bad value, not a help request —
    // parity with srclda-infer's wants_help.
    let (code, stdout, stderr) = run(SERVED_BIN, &["--model", FIXTURE, "--addr", "--help"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(!stdout.contains("usage:"), "must not print help: {stdout}");
    assert!(stderr.contains("cannot bind"), "stderr: {stderr}");
}

/// Full daemon lifecycle: boot on an OS-assigned port (equals-form flags),
/// answer a health check and an inference over real HTTP, then exit 0 on
/// SIGTERM with the graceful-shutdown message.
#[test]
fn served_boots_serves_and_shuts_down_on_sigterm() {
    let mut child = Command::new(SERVED_BIN)
        .args([
            &format!("--model=fixture={FIXTURE}"),
            "--addr=127.0.0.1:0",
            "--workers=2",
            "--iterations=10",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("daemon launches");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    // The daemon prints its resolved address once it is listening.
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "daemon exited before listening"
        );
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    let request = |method: &str, path: &str, body: &str| -> (u16, String) {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        srclda_serve::server::http::read_simple_response(&mut BufReader::new(stream)).unwrap()
    };

    let (status, body) = request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"fixture\""), "{body}");
    let (status, body) = request("POST", "/infer", "{\"text\": \"pencil ruler pencil\"}");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"theta\""), "{body}");
    assert!(body.contains("\"tokens\":3"), "{body}");

    // SIGTERM → graceful drain → exit code 0.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let exit = child.wait().expect("daemon exits");
    assert!(exit.success(), "graceful shutdown should exit 0: {exit:?}");
    let mut drained = String::new();
    stderr.read_to_string(&mut drained).unwrap();
    assert!(
        drained.contains("shutdown signal received"),
        "stderr: {drained}"
    );
    assert!(drained.contains("stopped"), "stderr: {drained}");
}
