//! Retry with exponential backoff and deterministic jitter.
//!
//! A daemon that sheds load with 503 + `Retry-After` only degrades
//! gracefully if its *clients* back off instead of hammering the socket
//! in a tight loop. [`RetryPolicy`] computes capped exponential delays
//! with seeded (splitmix64) jitter — deterministic given the seed, so
//! tests never flake on timing randomness — and [`RetryClient`] applies
//! the policy to the daemon's HTTP wire format: it retries connect and
//! socket errors, honors `Retry-After` on a 503 (capped at the policy's
//! `max_delay` so test suites stay fast), and counts every attempt into
//! an optional [`srclda_obs::Registry`]. The loopback suite and the
//! `throughput_http` load generator share this one implementation.

use crate::server::http::read_response_with_headers;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Backoff schedule: exponential in the attempt number, capped, with
/// deterministic seeded jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means "no retries").
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay — including a server-requested
    /// `Retry-After`, so a hostile or miscalibrated header cannot stall
    /// a client for minutes.
    pub max_delay: Duration,
    /// Jitter seed: the same seed yields the same delays, keeping the
    /// determinism contract that the rest of the workspace tests under.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay to sleep before retry number `attempt` (0-based: the
    /// delay after the first failure is `delay_for(0)`). Exponential
    /// `base * 2^attempt` capped at `max_delay`, then scaled by a
    /// seeded jitter factor in `[0.5, 1.0]` ("equal jitter") so a fleet
    /// of clients sharing a schedule does not retry in lockstep.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let jitter_bits = crate::durable::splitmix64(self.jitter_seed ^ u64::from(attempt));
        let factor = 0.5 + 0.5 * (jitter_bits as f64 / u64::MAX as f64);
        exp.mul_f64(factor)
    }
}

/// Counters the client registers when built with
/// [`RetryClient::with_registry`].
#[derive(Debug)]
struct ClientCounters {
    attempts: Arc<srclda_obs::Counter>,
    shed_retries: Arc<srclda_obs::Counter>,
    io_retries: Arc<srclda_obs::Counter>,
    giveups: Arc<srclda_obs::Counter>,
}

/// An HTTP client wrapper applying a [`RetryPolicy`] to the daemon's
/// wire format. One TCP connection per attempt (`Connection: close`) —
/// simple, and exactly what a freshly shed client would do.
#[derive(Debug)]
pub struct RetryClient {
    policy: RetryPolicy,
    counters: Option<ClientCounters>,
}

impl RetryClient {
    /// A client with the given policy and no telemetry.
    pub fn new(policy: RetryPolicy) -> Self {
        Self {
            policy,
            counters: None,
        }
    }

    /// A client whose attempts/retries/give-ups are counted into
    /// `registry` as the `srclda_client_*` families.
    pub fn with_registry(policy: RetryPolicy, registry: &srclda_obs::Registry) -> Self {
        let counters = ClientCounters {
            attempts: registry.counter(
                "srclda_client_attempts_total",
                "HTTP attempts issued by the retry client (first tries and retries).",
                &[],
            ),
            shed_retries: registry.counter(
                "srclda_client_retries_total",
                "Retries by cause.",
                &[("reason", "shed")],
            ),
            io_retries: registry.counter(
                "srclda_client_retries_total",
                "Retries by cause.",
                &[("reason", "io")],
            ),
            giveups: registry.counter(
                "srclda_client_giveups_total",
                "Requests abandoned after exhausting the retry budget.",
                &[],
            ),
        };
        Self {
            policy,
            counters: Some(counters),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn count(&self, pick: impl Fn(&ClientCounters) -> &Arc<srclda_obs::Counter>) {
        if let Some(c) = &self.counters {
            pick(c).inc();
        }
    }

    /// Issue `method path` with `body` against `addr`, retrying connect
    /// and socket failures and 503 responses per the policy. A 503 with
    /// a parseable `Retry-After: <seconds>` header sleeps that long
    /// (capped at `max_delay`) instead of the backoff schedule.
    ///
    /// Returns the final response — which is still `Ok((503, body))`
    /// when every attempt was shed, so callers can distinguish "server
    /// said no politely" from a dead socket.
    ///
    /// # Errors
    /// The last socket error once the attempt budget is exhausted.
    pub fn request(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String)> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        let mut last_shed: Option<(u16, String)> = None;
        for attempt in 0..attempts {
            self.count(|c| &c.attempts);
            match self.attempt_once(addr, method, path, body) {
                Ok((503, headers, resp_body)) => {
                    last_shed = Some((503, resp_body));
                    if attempt + 1 == attempts {
                        break;
                    }
                    self.count(|c| &c.shed_retries);
                    std::thread::sleep(self.shed_delay(attempt, &headers));
                }
                Ok((status, _, resp_body)) => return Ok((status, resp_body)),
                Err(e) => {
                    last_err = Some(e);
                    if attempt + 1 == attempts {
                        break;
                    }
                    self.count(|c| &c.io_retries);
                    std::thread::sleep(self.policy.delay_for(attempt));
                }
            }
        }
        self.count(|c| &c.giveups);
        match (last_shed, last_err) {
            // A shed on the final attempt is the freshest signal; an
            // earlier shed still beats surfacing a stale socket error.
            (Some(shed), _) => Ok(shed),
            (None, Some(e)) => Err(e),
            (None, None) => unreachable!("at least one attempt always runs"),
        }
    }

    /// The sleep after a shed: the `Retry-After` header when present and
    /// parseable (capped at `max_delay`), the backoff schedule otherwise.
    fn shed_delay(&self, attempt: u32, headers: &[(String, String)]) -> Duration {
        headers
            .iter()
            .find(|(name, _)| name == "retry-after")
            .and_then(|(_, value)| value.parse::<u64>().ok())
            .map(|secs| Duration::from_secs(secs).min(self.policy.max_delay))
            .unwrap_or_else(|| self.policy.delay_for(attempt))
    }

    fn attempt_once(
        &self,
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<crate::server::http::ParsedResponse> {
        let mut stream = TcpStream::connect(addr)?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        stream.flush()?;
        read_response_with_headers(&mut BufReader::new(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{FaultKind, FaultPlan, FaultStream};
    use std::io::Read;

    #[test]
    fn delays_are_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter_seed: 42,
        };
        let a: Vec<Duration> = (0..6).map(|i| policy.delay_for(i)).collect();
        let b: Vec<Duration> = (0..6).map(|i| policy.delay_for(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10 << i).min(Duration::from_millis(100));
            assert!(*d >= exp / 2, "attempt {i}: {d:?} below half of {exp:?}");
            assert!(*d <= exp, "attempt {i}: {d:?} above cap {exp:?}");
        }
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(
            (0..6).map(|i| other.delay_for(i)).collect::<Vec<_>>(),
            a,
            "different seeds decorrelate the schedule"
        );
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow_the_shift() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delay_for(40).max(policy.max_delay), policy.max_delay);
    }

    #[test]
    fn connect_errors_are_retried_and_counted() {
        let registry = srclda_obs::Registry::new();
        let client = RetryClient::with_registry(
            RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                jitter_seed: 7,
            },
            &registry,
        );
        // A port nothing listens on: every attempt fails at connect.
        let err = client
            .request("127.0.0.1:1", "GET", "/healthz", "")
            .unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::InvalidData);
        let text = registry.render();
        srclda_obs::validate_exposition(&text).expect("valid exposition");
        assert!(text.contains("srclda_client_attempts_total 3\n"), "{text}");
        assert!(
            text.contains("srclda_client_retries_total{reason=\"io\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("srclda_client_giveups_total 1\n"), "{text}");
    }

    #[test]
    fn fault_stream_interruptions_surface_as_retryable_io_errors() {
        // The loopback socket shim: an EINTR budget of 1 makes the first
        // read fail Interrupted and the second succeed — the retry
        // client's `request` treats any io::Error as retryable, so this
        // pins the FaultStream error kind the client will actually see.
        let plan = FaultPlan::eintr(1);
        let mut stream = FaultStream::new(std::io::Cursor::new(b"hello".to_vec()), plan.clone());
        let mut buf = [0u8; 5];
        let first = stream.read(&mut buf).unwrap_err();
        assert_eq!(first.kind(), io::ErrorKind::Interrupted);
        assert_eq!(stream.read(&mut buf).unwrap(), 5);
        assert_eq!(plan.triggered(), 1);
        assert!(matches!(
            FaultPlan::seeded(FaultKind::TornWrite, 9).resolved_offset(100),
            Some(n) if n < 100
        ));
    }
}
