//! Error type for the persistence and serving layer.

use std::fmt;

/// Errors surfaced by the artifact codec and the inference engine.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure while reading or writing an artifact.
    Io(std::io::Error),
    /// The buffer does not start with the artifact magic.
    BadMagic {
        /// The first bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version recorded in the artifact header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The payload checksum does not match the trailer.
    ChecksumMismatch {
        /// Checksum recomputed over the payload.
        computed: u64,
        /// Checksum stored in the artifact trailer.
        stored: u64,
    },
    /// The byte stream ended or a section overran its bounds.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// Structurally invalid content (bad section table, lengths, tags…).
    Corrupt(String),
    /// A required section is missing from the section table.
    MissingSection {
        /// Human-readable section name.
        name: &'static str,
    },
    /// A registry operation referenced a model name that is not loaded.
    /// A dedicated variant (not `Corrupt`) so the HTTP layer can map
    /// not-found to 404 by type instead of by matching message text.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
    /// The decoded model failed semantic validation in `srclda_core`.
    Core(srclda_core::CoreError),
    /// An internal invariant failed at runtime (for example a worker
    /// thread panicked mid-inference). The daemon maps this to HTTP 500.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::BadMagic { found } => {
                write!(f, "not a source-lda model artifact (magic {found:02x?})")
            }
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads versions 1 through {supported})"
            ),
            ServeError::ChecksumMismatch { computed, stored } => write!(
                f,
                "artifact checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            ServeError::Truncated { context } => {
                write!(f, "artifact truncated while decoding {context}")
            }
            ServeError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            ServeError::MissingSection { name } => {
                write!(f, "artifact is missing required section `{name}`")
            }
            ServeError::UnknownModel { name } => {
                write!(f, "no model named {name:?} is loaded")
            }
            ServeError::Core(e) => write!(f, "decoded model failed validation: {e}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<srclda_core::CoreError> for ServeError {
    fn from(e: srclda_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('1'));
        let e = ServeError::ChecksumMismatch {
            computed: 1,
            stored: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = ServeError::MissingSection { name: "phi" };
        assert!(e.to_string().contains("phi"));
        let e = ServeError::UnknownModel {
            name: "wiki".into(),
        };
        assert!(e.to_string().contains("wiki"));
        let e = ServeError::Truncated { context: "labels" };
        assert!(e.to_string().contains("labels"));
    }

    #[test]
    fn sources_chain() {
        let e = ServeError::from(srclda_core::CoreError::NoTopics);
        assert!(std::error::Error::source(&e).is_some());
        let e = ServeError::from(std::io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::Corrupt("x".into())).is_none());
    }
}
