//! The online inference engine: raw text in, labeled topic mixtures out.
//!
//! [`InferenceEngine`] owns everything a request needs — the fold-in scorer,
//! the training vocabulary, and the training tokenizer configuration — so a
//! request is a pure function of the engine and the input text:
//!
//! 1. tokenize with the *training* tokenizer (identical preprocessing),
//! 2. map tokens to word ids, counting and dropping out-of-vocabulary terms
//!    (a served model cannot grow its vocabulary per request),
//! 3. run fixed-φ Gibbs fold-in ([`srclda_core::inference`]) with a seed
//!    derived from the token content, and
//! 4. report θ, top labeled topics, and per-token perplexity.
//!
//! Deriving the per-document seed from the token content (XOR of the base
//! seed with an FNV-1a hash of the ids) makes results independent of
//! request order, batch position, and worker assignment — which is what
//! makes both the LRU cache and the multi-worker batch path transparent:
//! serial and parallel execution return bit-identical responses.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use crate::lru::LruCache;
use srclda_core::{FoldInConfig, Inference};
use srclda_corpus::{Tokenizer, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Fold-in sweeps and base seed (per-document seeds are derived from
    /// this XOR a content hash).
    pub fold_in: FoldInConfig,
    /// LRU entries for repeated documents; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            fold_in: FoldInConfig::default(),
            cache_capacity: 1024,
        }
    }
}

/// One scored document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentScore {
    theta: Vec<f64>,
    log_likelihood: f64,
    tokens: usize,
    oov_tokens: usize,
}

impl DocumentScore {
    /// The inferred document–topic distribution θ̃.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Total log-likelihood of the in-vocabulary tokens.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// In-vocabulary tokens that were folded in.
    pub fn num_tokens(&self) -> usize {
        self.tokens
    }

    /// Tokens dropped because the training vocabulary does not contain them.
    pub fn oov_tokens(&self) -> usize {
        self.oov_tokens
    }

    /// Per-token perplexity (1.0 for a document with no known tokens).
    pub fn perplexity(&self) -> f64 {
        if self.tokens == 0 {
            1.0
        } else {
            (-self.log_likelihood / self.tokens as f64).exp()
        }
    }

    /// Indices of the `n` most probable topics, descending (ties broken by
    /// lowest index).
    pub fn top_topics(&self, n: usize) -> Vec<usize> {
        srclda_math::simplex::top_n_indices(&self.theta, n)
    }
}

/// Cache performance counters (monotonic since engine construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that ran fold-in.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A loaded model ready to serve inference requests. Shared-reference
/// (`&self`) methods are safe to call from many threads at once.
#[derive(Debug)]
pub struct InferenceEngine {
    inference: Inference,
    vocab: Vocabulary,
    tokenizer: Tokenizer,
    options: EngineOptions,
    cache: Option<Mutex<LruCache<Vec<u32>, Arc<DocumentScore>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InferenceEngine {
    /// Build from a loaded artifact.
    ///
    /// # Errors
    /// Propagates artifact validation failures.
    pub fn from_artifact(
        artifact: &ModelArtifact,
        options: EngineOptions,
    ) -> Result<Self, ServeError> {
        Ok(Self {
            inference: artifact.inference()?,
            vocab: artifact.vocabulary().clone(),
            tokenizer: artifact.tokenizer().clone(),
            options,
            cache: (options.cache_capacity > 0)
                .then(|| Mutex::new(LruCache::new(options.cache_capacity))),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The underlying fold-in scorer.
    pub fn inference(&self) -> &Inference {
        &self.inference
    }

    /// Label of topic `t` (`None` for unlabeled topics).
    pub fn label(&self, t: usize) -> Option<&str> {
        self.inference.label(t)
    }

    /// Topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.inference.num_topics()
    }

    /// Tokenize raw text with the training configuration and map it into
    /// the training vocabulary. Returns `(word ids, dropped OOV count)`.
    pub fn tokenize(&self, text: &str) -> (Vec<u32>, usize) {
        let mut ids = Vec::new();
        let mut oov = 0usize;
        for token in self.tokenizer.tokenize(text) {
            match self.vocab.get(&token) {
                Some(id) => ids.push(id.0),
                None => oov += 1,
            }
        }
        (ids, oov)
    }

    /// Score one raw-text document.
    ///
    /// # Errors
    /// Propagates fold-in failures (cannot occur for ids produced by
    /// [`InferenceEngine::tokenize`], but the contract is kept honest).
    pub fn infer(&self, text: &str) -> Result<Arc<DocumentScore>, ServeError> {
        let (ids, oov) = self.tokenize(text);
        self.infer_ids(ids, oov)
    }

    fn infer_ids(&self, ids: Vec<u32>, oov: usize) -> Result<Arc<DocumentScore>, ServeError> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = lock_cache(cache).get(&ids) {
                // OOV counts are a property of the raw text, not the token
                // ids; two texts with the same ids may differ in OOV. Clone
                // the scored result and patch the count so the cache stays
                // keyed on what actually determines θ.
                let hit = hit.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                if hit.oov_tokens == oov {
                    return Ok(hit);
                }
                return Ok(Arc::new(DocumentScore {
                    oov_tokens: oov,
                    ..(*hit).clone()
                }));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let config = FoldInConfig {
            iterations: self.options.fold_in.iterations,
            seed: self.options.fold_in.seed ^ content_hash(&ids),
        };
        let doc = self.inference.fold_in(&ids, &config)?;
        let score = Arc::new(DocumentScore {
            theta: doc.theta().to_vec(),
            log_likelihood: doc.log_likelihood(),
            tokens: doc.num_tokens(),
            oov_tokens: oov,
        });
        if let Some(cache) = &self.cache {
            lock_cache(cache).insert(ids, score.clone());
        }
        Ok(score)
    }

    /// Score a batch serially, preserving input order.
    ///
    /// # Errors
    /// Fails on the first document that fails (all-or-nothing).
    pub fn infer_batch<S: AsRef<str>>(
        &self,
        docs: &[S],
    ) -> Result<Vec<Arc<DocumentScore>>, ServeError> {
        docs.iter().map(|d| self.infer(d.as_ref())).collect()
    }

    /// Score a batch on `workers` threads, preserving input order and
    /// returning bit-identical results to [`InferenceEngine::infer_batch`]
    /// (per-document seeds depend only on content). Documents are split
    /// into contiguous shards of near-equal count, one per worker.
    ///
    /// # Errors
    /// Fails if any document fails (all-or-nothing).
    pub fn infer_batch_parallel<S: AsRef<str> + Sync>(
        &self,
        docs: &[S],
        workers: usize,
    ) -> Result<Vec<Arc<DocumentScore>>, ServeError> {
        let workers = workers.max(1).min(docs.len().max(1));
        if workers <= 1 {
            return self.infer_batch(docs);
        }
        let mut slots: Vec<Option<Result<Arc<DocumentScore>, ServeError>>> =
            (0..docs.len()).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            // Walk `slots` and `docs` in lock-step so each worker gets a
            // matched (shard, doc_shard) pair and no position arithmetic
            // can go out of bounds.
            let mut rest: &mut [Option<Result<Arc<DocumentScore>, ServeError>>] = &mut slots;
            let mut docs_rest: &[S] = docs;
            for w in 0..workers {
                // Contiguous shards: docs.len()/workers ± 1 each.
                let share = docs_rest.len().div_ceil(workers - w);
                let (shard, tail) = rest.split_at_mut(share);
                rest = tail;
                let (doc_shard, doc_tail) = docs_rest.split_at(share);
                docs_rest = doc_tail;
                s.spawn(move |_| {
                    for (slot, doc) in shard.iter_mut().zip(doc_shard) {
                        *slot = Some(self.infer(doc.as_ref()));
                    }
                });
            }
        })
        .map_err(|_| ServeError::Internal("inference worker panicked".to_string()))?;
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    // Unreachable with the lock-step sharding above; kept as
                    // a typed error so a future sharding bug cannot panic
                    // the daemon's request path.
                    Err(ServeError::Internal(
                        "inference slot left unfilled".to_string(),
                    ))
                })
            })
            .collect()
    }

    /// Cache counters (all zeros when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.as_ref().map_or(0, |c| lock_cache(c).len()),
        }
    }
}

/// Acquire the cache lock, recovering from poisoning. A poisoned mutex
/// only means some thread panicked *while holding the guard*; every value
/// in the cache is a completed `Arc<DocumentScore>` inserted whole, and
/// the `LruCache` itself never holds partially-applied state across a
/// panic point (its mutations are single map operations). In a daemon,
/// propagating the poison would turn one panicked worker into a permanent
/// crash loop for every later request — recovery is both safe and the
/// only acceptable behavior.
fn lock_cache<'a, K: Eq + std::hash::Hash + Clone, V>(
    cache: &'a Mutex<LruCache<K, V>>,
) -> MutexGuard<'a, LruCache<K, V>> {
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64 over the little-endian token ids — the content hash mixed into
/// per-document fold-in seeds and (implicitly) the cache key. Reuses the
/// artifact codec's checksum function; the one transient buffer is noise
/// next to the fold-in it seeds.
fn content_hash(ids: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(ids.len() * 4);
    for &id in ids {
        bytes.extend_from_slice(&id.to_le_bytes());
    }
    crate::codec::fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_core::prelude::*;
    use srclda_corpus::CorpusBuilder;
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn engine(options: EngineOptions) -> InferenceEngine {
        let tokenizer = Tokenizer::default().min_len(2);
        let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
        for _ in 0..8 {
            b.add_text("school", "pencil pencil ruler eraser notebook");
            b.add_text("sports", "baseball umpire baseball glove pitcher");
        }
        let corpus = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article(
            "School Supplies",
            "pencil pencil ruler ruler eraser notebook",
        );
        ks.add_article("Baseball", "baseball baseball umpire glove pitcher");
        let source = ks.build(corpus.vocabulary());
        let fitted = SourceLda::builder()
            .knowledge_source(source)
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(80)
            .seed(11)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap();
        let artifact =
            ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
        InferenceEngine::from_artifact(&artifact, options).unwrap()
    }

    #[test]
    fn raw_text_is_labeled_correctly() {
        let e = engine(EngineOptions::default());
        let score = e.infer("The umpire caught the baseball!").unwrap();
        let top = score.top_topics(1)[0];
        assert_eq!(e.label(top), Some("Baseball"));
        assert!(score.num_tokens() >= 2);
        assert!(score.perplexity() > 1.0);
    }

    #[test]
    fn oov_terms_are_counted_and_dropped() {
        let e = engine(EngineOptions::default());
        let score = e.infer("pencil quasar zeitgeist").unwrap();
        assert_eq!(score.num_tokens(), 1);
        assert_eq!(score.oov_tokens(), 2);
        // All-OOV text degrades to the prior.
        let blank = e.infer("quasar zeitgeist").unwrap();
        assert_eq!(blank.num_tokens(), 0);
        assert_eq!(blank.perplexity(), 1.0);
        let t = e.num_topics();
        assert!(blank
            .theta()
            .iter()
            .all(|&p| (p - 1.0 / t as f64).abs() < 1e-12));
    }

    #[test]
    fn identical_text_hits_the_cache_with_identical_results() {
        let e = engine(EngineOptions::default());
        let a = e.infer("pencil ruler eraser").unwrap();
        let b = e.infer("pencil ruler eraser").unwrap();
        assert_eq!(a, b);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_can_be_disabled() {
        let e = engine(EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        });
        let a = e.infer("pencil ruler").unwrap();
        let b = e.infer("pencil ruler").unwrap();
        // Still deterministic (content-derived seed), just recomputed.
        assert_eq!(a, b);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn cached_entry_patches_oov_for_differing_raw_text() {
        let e = engine(EngineOptions::default());
        // Same in-vocabulary ids, different OOV payload.
        let a = e.infer("pencil ruler").unwrap();
        let b = e.infer("pencil xylophone ruler").unwrap();
        assert_eq!(a.theta(), b.theta());
        assert_eq!(a.oov_tokens(), 0);
        assert_eq!(b.oov_tokens(), 1);
        assert_eq!(e.cache_stats().hits, 1);
    }

    #[test]
    fn inference_survives_a_poisoned_cache_lock() {
        let e = engine(EngineOptions::default());
        let before = e.infer("pencil ruler eraser").unwrap();
        let cache = e.cache.as_ref().expect("cache is enabled by default");
        // Simulate a worker panicking while holding the cache lock — the
        // daemon failure mode that must not become a crash loop.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.lock().unwrap();
            panic!("worker dies while holding the cache lock");
        }));
        assert!(panicked.is_err());
        assert!(cache.lock().is_err(), "the lock should now be poisoned");
        // Cache hits, new inserts, and stats must all still work.
        let hit = e.infer("pencil ruler eraser").unwrap();
        assert_eq!(before, hit);
        let fresh = e.infer("baseball umpire glove").unwrap();
        assert!(fresh.num_tokens() >= 2);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn parallel_batch_matches_serial_bit_exactly() {
        let e = engine(EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        });
        let docs: Vec<String> = (0..23)
            .map(|i| {
                if i % 2 == 0 {
                    format!("pencil ruler eraser notebook pencil {i}")
                } else {
                    format!("baseball umpire glove pitcher {i}")
                }
            })
            .collect();
        let serial = e.infer_batch(&docs).unwrap();
        for workers in [2, 3, 8, 64] {
            let parallel = e.infer_batch_parallel(&docs, workers).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s, p, "workers={workers}");
            }
        }
    }

    #[test]
    fn batch_order_is_preserved() {
        let e = engine(EngineOptions::default());
        let docs = ["pencil pencil pencil", "baseball baseball umpire"];
        let out = e.infer_batch_parallel(&docs, 2).unwrap();
        assert_eq!(e.label(out[0].top_topics(1)[0]), Some("School Supplies"));
        assert_eq!(e.label(out[1].top_topics(1)[0]), Some("Baseball"));
    }

    #[test]
    fn results_are_independent_of_batch_position() {
        let e = engine(EngineOptions {
            cache_capacity: 0,
            ..EngineOptions::default()
        });
        let alone = e.infer("pencil ruler baseball").unwrap();
        let batch = e
            .infer_batch(&["umpire glove", "pencil ruler baseball", "eraser"])
            .unwrap();
        assert_eq!(*alone, *batch[1]);
    }

    #[test]
    fn empty_batch_and_zero_workers_are_fine() {
        let e = engine(EngineOptions::default());
        assert!(e.infer_batch_parallel::<&str>(&[], 4).unwrap().is_empty());
        let one = e.infer_batch_parallel(&["pencil"], 0).unwrap();
        assert_eq!(one.len(), 1);
    }
}
