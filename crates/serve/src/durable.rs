//! Crash-safe file writes and deterministic fault injection.
//!
//! A checkpoint that dies mid-`write(2)` must never destroy the previous
//! good copy — the storage layer under the ROADMAP's distributed-trainer
//! and online-ingest items assumes saves are *atomic* and *durable*.
//! [`DurableFile::write_atomic`] provides exactly that on POSIX
//! semantics: write a sibling temp file, `fsync` it, `rename(2)` it over
//! the target (atomic replace), then `fsync` the parent directory so the
//! rename itself survives a power cut. Readers observe either the old
//! bytes or the new bytes, never a torn mixture.
//!
//! The same module carries the [`FaultPlan`] shim: a deterministic,
//! optionally seed-derived schedule of injected I/O faults (fail at byte
//! N, torn write, `ENOSPC`, `EINTR`, crash after the rename commit
//! point) threaded through the save path and the [`FaultStream`] socket
//! wrapper. Faults are simulated in safe Rust by returning the same
//! `io::Error`s the kernel would — so "kill the trainer at every write
//! offset and prove recovery" is an ordinary proptest, not a flaky
//! integration harness.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Suffix of the sibling temp file [`DurableFile::write_atomic`] stages
/// into. Stale files with this suffix are crash leftovers; see
/// [`DurableFile::cleanup_stale_tmp`].
pub const TMP_SUFFIX: &str = ".tmp";

/// Bytes written per chunk. Small enough that a fail-at-byte-N fault
/// lands within one chunk of its target; large enough that the syscall
/// count stays negligible for multi-megabyte artifacts.
const CHUNK: usize = 4096;

/// The kinds of I/O fault a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails with a generic I/O error once `at` bytes have
    /// reached the temp file (the temp file is left torn at `at`).
    FailWrite,
    /// The process "dies" mid-write: `at` bytes reach the temp file and
    /// the save returns a `WriteZero` error without any cleanup,
    /// modeling `kill -9` between two `write(2)` calls.
    TornWrite,
    /// `ENOSPC` (errno 28) once `at` bytes have been written.
    DiskFull,
    /// The first `count` chunk writes each fail once with `EINTR`
    /// (errno 4). A correct writer retries these transparently, so the
    /// save still succeeds; [`FaultPlan::triggered`] counts the retries.
    Eintr,
    /// The save "dies" immediately after `rename(2)` succeeds: the new
    /// bytes are committed and recoverable, but the caller sees an
    /// error and the parent-directory fsync never happens — the honest
    /// model of a crash at the commit point.
    CrashAfterRename,
}

#[derive(Debug)]
struct PlanInner {
    kind: FaultKind,
    /// Byte offset (FailWrite/TornWrite/DiskFull) or EINTR budget.
    /// For seeded plans this is `u64::MAX` until resolved against the
    /// total write length.
    at: AtomicU64,
    /// Seed the offset is derived from when `seeded` is set.
    seed: u64,
    seeded: bool,
    /// How many times a fault actually fired (EINTR counts each retry).
    triggered: AtomicU64,
}

/// A deterministic schedule of injected I/O faults.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and costs one
/// `Option` check per chunk. A plan is one-shot: after its fault fires
/// (`EINTR` excepted, which fires `count` times) it goes quiet, so a
/// single plan instance can be handed to a retry loop without faulting
/// forever. Plans are `Clone + Send + Sync` (shared state behind an
/// `Arc`), so the same instance can be observed after the faulted call
/// returns.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

/// SplitMix64: the offset-derivation hash for seeded plans (also the
/// retry client's jitter source). Matches the constants of the reference
/// implementation; deterministic everywhere.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The no-fault plan (what every production caller passes).
    pub fn none() -> Self {
        Self::default()
    }

    fn with(kind: FaultKind, at: u64, seed: u64, seeded: bool) -> Self {
        Self {
            inner: Some(Arc::new(PlanInner {
                kind,
                at: AtomicU64::new(at),
                seed,
                seeded,
                triggered: AtomicU64::new(0),
            })),
        }
    }

    /// Fail the write with a generic I/O error at byte `at`.
    pub fn fail_write_at(at: u64) -> Self {
        Self::with(FaultKind::FailWrite, at, 0, false)
    }

    /// Tear the write at byte `at` (simulated kill mid-write).
    pub fn torn_write_at(at: u64) -> Self {
        Self::with(FaultKind::TornWrite, at, 0, false)
    }

    /// Report `ENOSPC` at byte `at`.
    pub fn disk_full_at(at: u64) -> Self {
        Self::with(FaultKind::DiskFull, at, 0, false)
    }

    /// Fail the first `count` chunk writes once each with `EINTR`.
    pub fn eintr(count: u64) -> Self {
        Self::with(FaultKind::Eintr, count, 0, false)
    }

    /// Crash immediately after the rename commit point.
    pub fn crash_after_rename() -> Self {
        Self::with(FaultKind::CrashAfterRename, 0, 0, false)
    }

    /// A write fault whose byte offset is derived from `seed` at write
    /// time (`splitmix64(seed) % len`), so a CI job can pick a
    /// reproducible "random" kill point without knowing the artifact
    /// size up front.
    pub fn seeded(kind: FaultKind, seed: u64) -> Self {
        Self::with(kind, u64::MAX, seed, true)
    }

    /// True when this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.inner.is_none()
    }

    /// How many faults have fired so far.
    pub fn triggered(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |p| p.triggered.load(Ordering::Relaxed))
    }

    /// Resolve (and return) the fault's byte offset for a write of
    /// `total_len` bytes. Seeded plans pin their offset on the first
    /// call; explicit plans return the configured offset. `None` for
    /// plans without a byte offset (none, `EINTR`, crash-after-rename).
    pub fn resolved_offset(&self, total_len: u64) -> Option<u64> {
        let plan = self.inner.as_ref()?;
        match plan.kind {
            FaultKind::FailWrite | FaultKind::TornWrite | FaultKind::DiskFull => {
                if plan.seeded && plan.at.load(Ordering::Relaxed) == u64::MAX {
                    let at = if total_len == 0 {
                        0
                    } else {
                        splitmix64(plan.seed) % total_len
                    };
                    plan.at.store(at, Ordering::Relaxed);
                }
                Some(plan.at.load(Ordering::Relaxed))
            }
            _ => None,
        }
    }

    /// Consulted by the chunked write loop before each chunk starting at
    /// `written` of `total_len` bytes. `Err` means the fault fires now.
    fn before_chunk(&self, written: u64, total_len: u64, chunk_len: usize) -> io::Result<()> {
        let Some(plan) = self.inner.as_ref() else {
            return Ok(());
        };
        match plan.kind {
            FaultKind::Eintr => {
                // Budget in `at`: decrement once per injected EINTR.
                let left = plan.at.load(Ordering::Relaxed);
                if left > 0 {
                    plan.at.store(left - 1, Ordering::Relaxed);
                    plan.triggered.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::from_raw_os_error(4)); // EINTR
                }
                Ok(())
            }
            FaultKind::FailWrite | FaultKind::TornWrite | FaultKind::DiskFull => {
                let at = self.resolved_offset(total_len).expect("offset kind");
                if plan.triggered.load(Ordering::Relaxed) > 0 {
                    return Ok(()); // one-shot
                }
                if written + chunk_len as u64 > at {
                    plan.triggered.fetch_add(1, Ordering::Relaxed);
                    return Err(match plan.kind {
                        FaultKind::FailWrite => {
                            io::Error::other(format!("injected write failure at byte {at}"))
                        }
                        FaultKind::TornWrite => io::Error::new(
                            io::ErrorKind::WriteZero,
                            format!("injected torn write at byte {at}"),
                        ),
                        _ => io::Error::from_raw_os_error(28), // ENOSPC
                    });
                }
                Ok(())
            }
            FaultKind::CrashAfterRename => Ok(()),
        }
    }

    /// Consulted right after the rename commit point.
    fn after_rename(&self) -> io::Result<()> {
        let Some(plan) = self.inner.as_ref() else {
            return Ok(());
        };
        if plan.kind == FaultKind::CrashAfterRename && plan.triggered.load(Ordering::Relaxed) == 0 {
            plan.triggered.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(
                "injected crash after rename (bytes are committed)",
            ));
        }
        Ok(())
    }

    /// For [`FaultStream`]: how many bytes the stream may pass through
    /// before faulting, or `None` for pass-everything.
    fn stream_fault(&self, transferred: u64) -> io::Result<()> {
        self.before_chunk(transferred, u64::MAX, 1)
    }
}

/// Atomic, durable file replacement.
///
/// This is a namespace, not a handle: the whole write happens inside one
/// call so there is no window where a half-written file is observable
/// under the target name. The staging name is `<target><TMP_SUFFIX>` —
/// a *sibling*, so the rename never crosses a filesystem boundary.
/// Single-writer per target path is assumed (the trainer's checkpoint
/// sink and the CLI both are).
#[derive(Debug)]
pub struct DurableFile;

impl DurableFile {
    /// The staging path used for `target`.
    pub fn tmp_path(target: &Path) -> PathBuf {
        let mut name = target.file_name().unwrap_or_default().to_os_string();
        name.push(TMP_SUFFIX);
        target.with_file_name(name)
    }

    /// Write `bytes` to `target` atomically and durably: temp sibling →
    /// `fsync` → `rename` → parent-directory `fsync`. On any error
    /// before the rename, the previous contents of `target` (if any)
    /// are untouched.
    ///
    /// # Errors
    /// Propagates filesystem failures. Genuine (non-injected) failures
    /// remove the temp file best-effort before returning.
    pub fn write_atomic(target: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
        Self::write_atomic_with_plan(target.as_ref(), bytes, &FaultPlan::none())
    }

    /// [`DurableFile::write_atomic`] with an injected [`FaultPlan`] —
    /// the fault-injection seam. Injected faults simulate the process
    /// dying, so they leave the temp file (or the committed rename)
    /// exactly as a real crash would; only genuine errors clean up.
    ///
    /// # Errors
    /// Filesystem failures, plus whatever the plan injects.
    pub fn write_atomic_with_plan(target: &Path, bytes: &[u8], plan: &FaultPlan) -> io::Result<()> {
        let tmp = Self::tmp_path(target);
        let result = Self::stage_and_commit(target, &tmp, bytes, plan);
        if let Err(e) = &result {
            // An *injected* fault models a crash: leave the scene as the
            // crash would. A genuine error is an orderly failure: don't
            // leak the staging file.
            let injected = plan.triggered() > 0;
            if !injected && e.kind() != io::ErrorKind::NotFound {
                let _ = fs::remove_file(&tmp);
            }
        }
        result
    }

    fn stage_and_commit(
        target: &Path,
        tmp: &Path,
        bytes: &[u8],
        plan: &FaultPlan,
    ) -> io::Result<()> {
        let total = bytes.len() as u64;
        let mut file = File::create(tmp)?;
        let mut written = 0usize;
        while written < bytes.len() {
            let end = (written + CHUNK).min(bytes.len());
            match plan.before_chunk(written as u64, total, end - written) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue, // retry, as write loops must
                Err(e) => {
                    // Flush what a real kill would have left behind, so
                    // the torn prefix is observable on disk.
                    let _ = file.flush();
                    return Err(e);
                }
            }
            file.write_all(&bytes[written..end])?;
            written = end;
        }
        file.sync_all()?;
        drop(file);
        fs::rename(tmp, target)?;
        plan.after_rename()?;
        // Durability of the *rename*: fsync the directory entry. Without
        // this, a power cut can roll the directory back to the old name
        // even though the data blocks were synced.
        let parent = match target.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        File::open(&parent)?.sync_all()?;
        Ok(())
    }

    /// Remove stale `*.tmp` staging files in `dir` — crash leftovers
    /// from interrupted [`DurableFile::write_atomic`] calls. Call once
    /// at startup before scanning for checkpoints. Returns how many
    /// files were removed.
    ///
    /// # Errors
    /// Propagates the directory read failure; per-file removal errors
    /// are ignored (another process may have raced the cleanup).
    pub fn cleanup_stale_tmp(dir: &Path) -> io::Result<usize> {
        let mut removed = 0usize;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(TMP_SUFFIX)
                && entry.path().is_file()
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// A `Read + Write` wrapper injecting the plan's faults into a stream —
/// the socket-side counterpart of the save-path shim. Reads and writes
/// count transferred bytes against the plan, so `EINTR` storms and
/// fail-at-byte-N cuts are reproducible against a loopback connection
/// without any kernel cooperation.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    plan: FaultPlan,
    transferred: u64,
}

impl<S> FaultStream<S> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            transferred: 0,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Total bytes moved through the wrapper (reads plus writes).
    pub fn transferred(&self) -> u64 {
        self.transferred
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.plan.stream_fault(self.transferred)?;
        let n = self.inner.read(buf)?;
        self.transferred += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.plan.stream_fault(self.transferred)?;
        let n = self.inner.write(buf)?;
        self.transferred += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srclda-durable-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_replaces() {
        let dir = temp_dir("roundtrip");
        let target = dir.join("a.bin");
        DurableFile::write_atomic(&target, b"first").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"first");
        DurableFile::write_atomic(&target, b"second, longer").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second, longer");
        // No staging file survives a successful write.
        assert!(!DurableFile::tmp_path(&target).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_faults_leave_the_old_bytes_intact() {
        let dir = temp_dir("faults");
        let target = dir.join("a.bin");
        DurableFile::write_atomic(&target, b"old generation").unwrap();
        let payload = vec![7u8; 3 * CHUNK + 100];
        for plan in [
            FaultPlan::fail_write_at(0),
            FaultPlan::fail_write_at(CHUNK as u64 + 3),
            FaultPlan::torn_write_at(2 * CHUNK as u64),
            FaultPlan::disk_full_at(10),
        ] {
            let err = DurableFile::write_atomic_with_plan(&target, &payload, &plan).unwrap_err();
            assert_eq!(plan.triggered(), 1, "{err}");
            // Old bytes untouched; the torn staging file is the crash
            // leftover (startup cleanup's job, not the writer's).
            assert_eq!(fs::read(&target).unwrap(), b"old generation");
            let tmp = DurableFile::tmp_path(&target);
            assert!(tmp.exists(), "injected faults model a crash");
            let torn = fs::metadata(&tmp).unwrap().len();
            assert!(torn < payload.len() as u64, "temp must be torn, not full");
        }
        assert_eq!(DurableFile::cleanup_stale_tmp(&dir).unwrap(), 1);
        assert!(!DurableFile::tmp_path(&target).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_surfaces_the_real_errno() {
        let dir = temp_dir("enospc");
        let plan = FaultPlan::disk_full_at(0);
        let err = DurableFile::write_atomic_with_plan(&dir.join("x"), b"data", &plan).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eintr_is_retried_and_the_write_succeeds() {
        let dir = temp_dir("eintr");
        let target = dir.join("a.bin");
        let plan = FaultPlan::eintr(3);
        let payload = vec![1u8; 2 * CHUNK];
        DurableFile::write_atomic_with_plan(&target, &payload, &plan).unwrap();
        assert_eq!(plan.triggered(), 3);
        assert_eq!(fs::read(&target).unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_after_rename_commits_the_new_bytes() {
        let dir = temp_dir("crashrename");
        let target = dir.join("a.bin");
        DurableFile::write_atomic(&target, b"old").unwrap();
        let plan = FaultPlan::crash_after_rename();
        let err = DurableFile::write_atomic_with_plan(&target, b"new", &plan).unwrap_err();
        assert!(err.to_string().contains("after rename"), "{err}");
        // The commit point is the rename: the new bytes are what a
        // recovery scan must find.
        assert_eq!(fs::read(&target).unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_offsets_are_deterministic_and_in_range() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let a = FaultPlan::seeded(FaultKind::TornWrite, seed);
            let b = FaultPlan::seeded(FaultKind::TornWrite, seed);
            let off_a = a.resolved_offset(10_000).unwrap();
            let off_b = b.resolved_offset(10_000).unwrap();
            assert_eq!(off_a, off_b, "seed {seed} must resolve identically");
            assert!(off_a < 10_000);
            // Pinned after first resolution, even against a new length.
            assert_eq!(a.resolved_offset(5).unwrap(), off_a);
        }
        assert_eq!(
            FaultPlan::seeded(FaultKind::FailWrite, 3).resolved_offset(0),
            Some(0)
        );
    }

    #[test]
    fn fault_stream_injects_into_reads_and_writes() {
        // Write side: fail once mid-stream.
        let mut out = FaultStream::new(Vec::new(), FaultPlan::fail_write_at(4));
        out.write_all(b"abcd").unwrap();
        assert!(out.write_all(b"efgh").is_err());
        assert_eq!(out.get_ref(), b"abcd");
        // One-shot: after the fault fires the stream passes bytes again
        // (a reconnect/retry layer sees a healthy stream).
        out.write_all(b"efgh").unwrap();
        assert_eq!(out.transferred(), 8);

        // Read side: EINTR is visible to the caller (sockets do not
        // auto-retry), then the stream recovers.
        let mut input = FaultStream::new(io::Cursor::new(b"hello".to_vec()), FaultPlan::eintr(1));
        let mut buf = [0u8; 5];
        let first = input.read(&mut buf);
        assert_eq!(first.unwrap_err().kind(), io::ErrorKind::Interrupted);
        input.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cleanup_only_touches_tmp_files() {
        let dir = temp_dir("cleanup");
        fs::write(dir.join("keep.slda"), b"x").unwrap();
        fs::write(dir.join("a.slda.tmp"), b"torn").unwrap();
        fs::write(dir.join("b.tmp"), b"torn").unwrap();
        assert_eq!(DurableFile::cleanup_stale_tmp(&dir).unwrap(), 2);
        assert!(dir.join("keep.slda").exists());
        assert!(!dir.join("a.slda.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
