//! A minimal JSON value codec for the serving daemon.
//!
//! The workspace is offline and vendors no serialization crate, so the
//! daemon speaks JSON through this hand-rolled parser/printer. It supports
//! the full JSON grammar the endpoints need — objects, arrays, strings
//! (with escapes), numbers, booleans, null — and nothing exotic (no
//! comments, no trailing commas, no duplicate-key semantics beyond
//! last-wins).
//!
//! Float round-tripping is load-bearing: `Value::Num` prints through
//! `f64`'s `Display`, which emits the shortest decimal string that parses
//! back to the identical bits. That is what lets the loopback integration
//! test assert θ from an HTTP response is *bit-identical* to the engine
//! API — the wire format loses nothing.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            // lint:allow(float-eq): fract()==0.0 is an exact integer-valuedness test, not a tolerance check
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_f64(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

/// Shorthand for building an object value.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `f64` → shortest round-trip decimal (JSON has no NaN/∞; map them to
/// `null` rather than emit invalid JSON).
fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // Display for f64 is shortest-round-trip since Rust 1.0; integral
        // values print without a decimal point, which JSON permits.
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed (offset + message; offsets are byte positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

/// Nesting guard: request bodies are attacker-controlled, and a few KB of
/// `[[[[…` must not overflow the worker's stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Unconsumed input (empty once `pos` runs past the end).
    fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.rest().starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                if self.rest().starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(first) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid by construction).
                    let rest = self.rest();
                    let len = utf8_len(first).min(rest.len());
                    let s = std::str::from_utf8(rest.get(..len).unwrap_or(&[]))
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or(&[]))
            .map_err(|_| self.err("non-ascii bytes in number"))?;
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("3.25").unwrap(), Value::Num(3.25));
        assert_eq!(parse("-4e2").unwrap(), Value::Num(-400.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#" {"a": [1, 2, {"b": "c"}], "d": null} "#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{a: 1}", "1 2", "nul", "\"\\q\"", "\"", "01x", "--1", "1.",
            "+1", "[1]]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t quote\" slash\\ newline\n unicode\u{1F600}\u{7}";
        let rendered = Value::Str(original.into()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(original));
        // Escaped-form input parses too.
        assert_eq!(
            parse(r#""\u0041\ud83d\ude00\/""#).unwrap().as_str(),
            Some("A\u{1F600}/")
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // The property the loopback θ diff-check relies on.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (seed >> 11) as f64 / (1u64 << 53) as f64; // [0, 1) like θ
            let rendered = Value::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {rendered}");
        }
        for x in [0.0, 1.0, -1.5, f64::MIN_POSITIVE, f64::MAX, -12345.678e-9] {
            let back = parse(&Value::Num(x).render()).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits());
        }
        // Non-finite values degrade to null instead of invalid JSON.
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn as_usize_accepts_only_exact_non_negative_integers() {
        assert_eq!(Value::Num(3.0).as_usize(), Some(3));
        assert_eq!(Value::Num(0.0).as_usize(), Some(0));
        assert_eq!(Value::Num(3.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Str("3".into()).as_usize(), None);
    }

    #[test]
    fn object_helpers() {
        let v = obj(vec![("x", Value::from(1usize)), ("y", Value::from("z"))]);
        assert_eq!(v.get("x").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("y").unwrap().as_str(), Some("z"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
        assert_eq!(v.render(), r#"{"x":1,"y":"z"}"#);
    }
}
