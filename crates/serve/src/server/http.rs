//! A deliberately small HTTP/1.1 implementation for the serving daemon.
//!
//! The workspace vendors no HTTP stack, and the daemon's needs are narrow:
//! parse a request line + headers + `Content-Length` body from a
//! `TcpStream`, and write a response with a JSON payload. This module
//! implements exactly that — persistent connections (HTTP/1.1 keep-alive
//! semantics, honoring `Connection: close`), bounded header and body sizes
//! so a hostile peer cannot balloon a worker's memory, and nothing else
//! (no chunked encoding, no TLS, no compression; the daemon rejects
//! requests that need them).

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target with any `?query` suffix stripped.
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the peer asked for the connection to close after this
    /// exchange (`Connection: close` or an HTTP/1.0 request).
    pub wants_close: bool,
    /// Raw `Accept` header value, if the peer sent one. Routing uses it
    /// to pick between the JSON and Prometheus shapes of `/metrics`.
    pub accept: Option<String>,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// Socket-level failure.
    Io(io::Error),
    /// The bytes were not parseable HTTP; the enclosed message is safe to
    /// send back in a 400 response.
    Malformed(&'static str),
    /// The request exceeded [`MAX_HEAD_BYTES`] or [`MAX_BODY_BYTES`].
    TooLarge(&'static str),
    /// The request did not arrive in full before its wall-clock deadline —
    /// size limits bound a worker's *memory*, this bounds its *time*: a
    /// peer dripping one byte per socket-timeout tick would otherwise pin
    /// a fixed-pool worker for hours without ever tripping a limit.
    DeadlineExceeded,
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one request from a buffered stream, giving up at `deadline`.
///
/// The underlying socket is expected to carry a short read timeout; each
/// timed-out read re-checks the deadline, so the total time a worker can
/// spend receiving one request is bounded by `deadline` regardless of how
/// slowly the peer drips bytes.
///
/// # Errors
/// [`ReadError::Closed`] on clean EOF before any request byte; the other
/// variants as described on [`ReadError`].
pub fn read_request<R: BufRead>(reader: &mut R, deadline: Instant) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    // Request line, tolerating a few leading empty lines (RFC 7230 §3.5:
    // clients may send a stray CRLF after a body; servers should skip it
    // rather than drop the keep-alive session). Bounded so a pure-CRLF
    // stream cannot loop forever inside one "request".
    let mut skipped_blanks = 0usize;
    let request_line = loop {
        match read_line(reader, &mut head, deadline)? {
            None => return Err(ReadError::Closed),
            Some(line) if line.is_empty() => {
                skipped_blanks += 1;
                if skipped_blanks > 4 {
                    return Err(ReadError::Malformed("too many blank lines before request"));
                }
            }
            Some(line) => break line,
        }
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("request line has no target"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("request line has no version"))?;
    if parts.next().is_some() {
        return Err(ReadError::Malformed("request line has trailing tokens"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut wants_close = version == "HTTP/1.0";
    let mut accept = None;
    loop {
        let Some(line) = read_line(reader, &mut head, deadline)? else {
            return Err(ReadError::Malformed(
                "connection closed before headers ended",
            ));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("header line has no colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed("unparseable content-length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(ReadError::TooLarge("body exceeds the size limit"));
                }
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "transfer-encoding is not supported; send content-length",
                ));
            }
            "connection" => {
                // Token list; any mention of close wins, HTTP/1.0
                // keep-alive is honored.
                let lower = value.to_ascii_lowercase();
                if lower.split(',').any(|t| t.trim() == "close") {
                    wants_close = true;
                } else if lower.split(',').any(|t| t.trim() == "keep-alive") {
                    wants_close = false;
                }
            }
            "accept" => {
                accept = Some(value.to_string());
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < body.len() {
        let unfilled = body.get_mut(filled..).unwrap_or_default();
        match read_with_deadline(reader, unfilled, deadline)? {
            0 => return Err(ReadError::Malformed("connection closed mid-body")),
            n => filled += n,
        }
    }
    Ok(Request {
        method,
        path,
        body,
        wants_close,
        accept,
    })
}

/// One `read` that retries socket-timeout errors until `deadline` — the
/// primitive that turns the socket's short poll timeout into a total
/// per-request time budget. Returns the byte count (0 = EOF).
fn read_with_deadline<R: BufRead>(
    reader: &mut R,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, ReadError> {
    loop {
        match io::Read::read(reader, buf) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return Err(ReadError::DeadlineExceeded);
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, enforcing the cumulative
/// head budget via `consumed`. `Ok(None)` is a clean EOF at a line
/// boundary — distinct from an empty line, so callers can tell a closed
/// connection from a stray CRLF.
fn read_line<R: BufRead>(
    reader: &mut R,
    consumed: &mut Vec<u8>,
    deadline: Instant,
) -> Result<Option<String>, ReadError> {
    let start = consumed.len();
    loop {
        let mut byte = [0u8; 1];
        match read_with_deadline(reader, &mut byte, deadline)? {
            0 => {
                if consumed.len() == start {
                    return Ok(None); // clean EOF at a line boundary
                }
                return Err(ReadError::Malformed("connection closed mid-line"));
            }
            _ => {
                let [b] = byte;
                if b == b'\n' {
                    break;
                }
                consumed.push(b);
                if consumed.len() > MAX_HEAD_BYTES {
                    return Err(ReadError::TooLarge("request head exceeds the size limit"));
                }
            }
        }
    }
    let mut line = consumed.get(start..).unwrap_or(&[]);
    if let Some(stripped) = line.strip_suffix(b"\r") {
        line = stripped;
    }
    std::str::from_utf8(line)
        .map(|l| Some(l.to_string()))
        .map_err(|_| ReadError::Malformed("header bytes are not utf-8"))
}

/// The reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a JSON response.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_typed(writer, status, "application/json", body, close)
}

/// Write a response with an explicit `Content-Type` — the general form
/// behind [`write_response`], used by `/metrics` to serve Prometheus
/// text exposition next to the default JSON shape.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response_typed<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_with(writer, status, content_type, body, close, &[])
}

/// The fully general response writer: [`write_response_typed`] plus
/// caller-supplied extra headers (`(name, value)` pairs emitted verbatim
/// after the fixed ones). The load-shedding path uses it to attach
/// `Retry-After` to a 503 so well-behaved clients back off instead of
/// hammering an overloaded daemon.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        connection,
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

/// Parse one HTTP response — `(status, body)` — from a buffered stream:
/// the client-side complement of [`write_response`], walking the status
/// line, a `Content-Length` header, and the body. Shared by the loopback
/// tests, the CLI lifecycle test, and the `throughput_http` load
/// generator so the response walk lives in exactly one place.
///
/// # Errors
/// `InvalidData` on an unparseable status line or length; socket errors
/// otherwise.
pub fn read_simple_response<R: BufRead>(reader: &mut R) -> io::Result<(u16, String)> {
    read_response_with_headers(reader).map(|(status, _, body)| (status, body))
}

/// A fully parsed response: status code, lowercase-name `(name, value)`
/// header pairs, and body.
pub type ParsedResponse = (u16, Vec<(String, String)>, String);

/// [`read_simple_response`] that also returns the response headers as
/// lowercase-name `(name, value)` pairs, so callers (the retry client,
/// the overload tests) can inspect `Retry-After` and friends.
///
/// # Errors
/// `InvalidData` on an unparseable status line or length; socket errors
/// otherwise.
pub fn read_response_with_headers<R: BufRead>(reader: &mut R) -> io::Result<ParsedResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed before response headers ended"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("unparseable length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    String::from_utf8(body)
        .map(|body| (status, headers, body))
        .map_err(|_| bad("response body is not utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::time::Duration;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(10)
    }

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(raw.as_bytes()), far_deadline())
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
        assert!(!r.wants_close);
    }

    #[test]
    fn parses_post_with_body_and_query_stripping() {
        let r = parse("POST /infer?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/infer");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let r = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/");
    }

    #[test]
    fn connection_close_and_http10_are_detected() {
        assert!(
            parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .wants_close
        );
        assert!(parse("GET / HTTP/1.0\r\n\r\n").unwrap().wants_close);
        assert!(
            !parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .wants_close
        );
    }

    #[test]
    fn accept_header_is_captured_verbatim() {
        let r =
            parse("GET /metrics HTTP/1.1\r\nAccept: text/plain; version=0.0.4\r\n\r\n").unwrap();
        assert_eq!(r.accept.as_deref(), Some("text/plain; version=0.0.4"));
        assert_eq!(parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap().accept, None);
    }

    #[test]
    fn typed_response_carries_its_content_type() {
        let mut out = Vec::new();
        write_response_typed(
            &mut out,
            200,
            "text/plain; version=0.0.4",
            "x_total 1\n",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("\r\n\r\nx_total 1\n"));
    }

    #[test]
    fn clean_eof_reports_closed() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn leading_crlf_before_the_request_line_is_skipped() {
        // RFC 7230 §3.5: a stray CRLF after a previous body must not be
        // parsed as the next request line (and must not drop the session).
        for raw in [
            "\r\nGET /a HTTP/1.1\r\n\r\n",
            "\r\n\r\nGET /a HTTP/1.1\r\n\r\n",
            "\nGET /a HTTP/1.1\r\n\r\n",
        ] {
            let r = parse(raw).unwrap();
            assert_eq!(r.path, "/a", "failed on {raw:?}");
        }
        // EOF after only blank lines is still a clean close, and a
        // pure-CRLF stream is bounded, not looped on.
        assert!(matches!(parse("\r\n\r\n"), Err(ReadError::Closed)));
        assert!(matches!(
            parse(&"\r\n".repeat(10)),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn simple_response_round_trips_write_response() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "{\"error\":\"x\"}", true).unwrap();
        let (status, body) = read_simple_response(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{\"error\":\"x\"}");
        assert!(read_simple_response(&mut Cursor::new(b"garbage\r\n\r\n")).is_err());
    }

    #[test]
    fn extra_headers_round_trip_through_the_header_reader() {
        let mut wire = Vec::new();
        write_response_with(
            &mut wire,
            503,
            "application/json",
            "{\"error\":\"overloaded\"}",
            false,
            &[("Retry-After", "2")],
        )
        .unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        let (status, headers, body) = read_response_with_headers(&mut Cursor::new(&wire)).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "{\"error\":\"overloaded\"}");
        let retry_after = headers
            .iter()
            .find(|(name, _)| name == "retry-after")
            .map(|(_, value)| value.as_str());
        assert_eq!(retry_after, Some("2"));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "GET / HTTP/1.1\r\nHost: x", // closed mid-head
        ] {
            assert!(
                matches!(parse(raw), Err(ReadError::Malformed(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let huge_header = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_header), Err(ReadError::TooLarge(_))));
        let huge_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge_body), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn truncated_body_is_malformed() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_has_length_and_connection_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn keep_alive_stream_yields_successive_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.as_bytes());
        let a = read_request(&mut cursor, far_deadline()).unwrap();
        let b = read_request(&mut cursor, far_deadline()).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert!(matches!(
            read_request(&mut cursor, far_deadline()),
            Err(ReadError::Closed)
        ));
    }

    /// A peer that delivers a prefix of a request and then stalls forever
    /// (every further read times out, as a short socket timeout would).
    struct DrippingPeer {
        data: Vec<u8>,
        pos: usize,
    }

    impl io::Read for DrippingPeer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.data.len() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
        }
    }

    #[test]
    fn stalled_peer_hits_the_deadline_instead_of_pinning_the_worker() {
        // Mid-head stall and mid-body stall both abort once the deadline
        // passes, no matter how many reads already succeeded.
        for prefix in [
            "POST /infer HTTP/1.1\r\nContent-Le",
            "POST /infer HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        ] {
            let mut reader = std::io::BufReader::new(DrippingPeer {
                data: prefix.as_bytes().to_vec(),
                pos: 0,
            });
            let deadline = Instant::now(); // already expired
            assert!(
                matches!(
                    read_request(&mut reader, deadline),
                    Err(ReadError::DeadlineExceeded)
                ),
                "prefix {prefix:?} should abort on deadline"
            );
        }
    }
}
