//! The multi-model registry: named engines with atomic hot-swap reload.
//!
//! A daemon serves several models at once (A/B variants, per-tenant
//! sources, staged rollouts), each loaded from an `.slda` artifact and
//! addressed by name. Entries are `Arc<ModelEntry>`s behind one `RwLock`d
//! map: a request clones the `Arc` under a momentary read lock and then
//! works lock-free, so a concurrent [`ModelRegistry::reload`] — which
//! builds the *new* engine entirely outside the lock and swaps the map
//! slot in O(1) — never stalls traffic and never yanks a model out from
//! under an in-flight request. The old engine is dropped when its last
//! in-flight request finishes.

use crate::engine::{EngineOptions, InferenceEngine};
use crate::error::ServeError;
use crate::ModelArtifact;
use srclda_math::FxHashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One named, loaded model.
#[derive(Debug)]
pub struct ModelEntry {
    /// The registered name.
    pub name: String,
    /// The artifact path the entry was loaded from (reload re-reads it).
    pub path: PathBuf,
    /// The ready-to-serve engine.
    pub engine: InferenceEngine,
    /// Reload generation: 0 for the initial load, +1 per hot-swap.
    pub generation: u64,
}

/// Named engines with hot-swap reload. All methods take `&self`; the
/// registry is shared across workers as an `Arc<ModelRegistry>`.
#[derive(Debug)]
pub struct ModelRegistry {
    models: RwLock<FxHashMap<String, Arc<ModelEntry>>>,
    /// Name of the first model registered; `/infer` without an explicit
    /// `"model"` field routes here.
    default: RwLock<Option<String>>,
    options: EngineOptions,
}

impl ModelRegistry {
    /// An empty registry whose engines will use `options`.
    pub fn new(options: EngineOptions) -> Self {
        Self {
            models: RwLock::new(FxHashMap::default()),
            default: RwLock::new(None),
            options,
        }
    }

    fn read_models(&self) -> RwLockReadGuard<'_, FxHashMap<String, Arc<ModelEntry>>> {
        self.models.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_models(&self) -> RwLockWriteGuard<'_, FxHashMap<String, Arc<ModelEntry>>> {
        self.models.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Load the artifact at `path` and register it as `name`. Registering
    /// an existing name hot-swaps it (and bumps its generation).
    ///
    /// # Errors
    /// Artifact read/decode/validation failures; the registry is left
    /// unchanged on error.
    pub fn load(&self, name: &str, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref().to_path_buf();
        // Build the new engine before taking any lock: artifact decode and
        // prior reconstruction are the expensive part and must not block
        // concurrent requests.
        let artifact = ModelArtifact::load(&path)?;
        let engine = InferenceEngine::from_artifact(&artifact, self.options)?;
        let mut models = self.write_models();
        let generation = models.get(name).map_or(0, |e| e.generation + 1);
        models.insert(
            name.to_string(),
            Arc::new(ModelEntry {
                name: name.to_string(),
                path,
                engine,
                generation,
            }),
        );
        drop(models);
        let mut default = self.default.write().unwrap_or_else(|e| e.into_inner());
        if default.is_none() {
            *default = Some(name.to_string());
        }
        Ok(())
    }

    /// Re-read a registered model's artifact from disk and atomically swap
    /// the entry. In-flight requests holding the old `Arc` are unaffected.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when `name` is not registered;
    /// artifact failures otherwise (the old entry stays live on failure).
    pub fn reload(&self, name: &str) -> Result<(), ServeError> {
        let path = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_string(),
            })?
            .path
            .clone();
        self.load(name, path)
    }

    /// Look up a model by name, or the default model for `None`.
    pub fn resolve(&self, name: Option<&str>) -> Option<Arc<ModelEntry>> {
        match name {
            Some(name) => self.get(name),
            None => {
                let default = self.default.read().unwrap_or_else(|e| e.into_inner());
                default.as_deref().and_then(|name| self.get(name))
            }
        }
    }

    /// Look up a model by exact name.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.read_models().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_models().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.read_models().len()
    }

    /// True when no model is registered.
    pub fn is_empty(&self) -> bool {
        self.read_models().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_core::prelude::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn artifact(seed: u64) -> ModelArtifact {
        let tokenizer = Tokenizer::default().min_len(2);
        let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
        for _ in 0..6 {
            b.add_text("school", "pencil ruler eraser notebook");
            b.add_text("sports", "baseball umpire glove pitcher");
        }
        let corpus = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article("School Supplies", "pencil ruler eraser notebook");
        ks.add_article("Baseball", "baseball umpire glove pitcher");
        let source = ks.build(corpus.vocabulary());
        let fitted = SourceLda::builder()
            .knowledge_source(source)
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(40)
            .seed(seed)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap();
        ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("srclda-registry-{}-{tag}.slda", std::process::id()))
    }

    #[test]
    fn load_get_and_default_resolution() {
        let a = temp_path("a");
        let b = temp_path("b");
        artifact(1).save(&a).unwrap();
        artifact(2).save(&b).unwrap();
        let reg = ModelRegistry::new(EngineOptions::default());
        assert!(reg.is_empty());
        assert!(reg.resolve(None).is_none());
        reg.load("first", &a).unwrap();
        reg.load("second", &b).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), ["first", "second"]);
        assert_eq!(reg.resolve(None).unwrap().name, "first");
        assert_eq!(reg.resolve(Some("second")).unwrap().name, "second");
        assert!(reg.resolve(Some("missing")).is_none());
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn reload_swaps_the_entry_without_disturbing_held_arcs() {
        let path = temp_path("swap");
        artifact(1).save(&path).unwrap();
        let reg = ModelRegistry::new(EngineOptions::default());
        reg.load("m", &path).unwrap();
        let held = reg.get("m").unwrap();
        assert_eq!(held.generation, 0);
        let before = held.engine.infer("pencil ruler").unwrap();

        // A new artifact (different training seed → different φ) lands on
        // the same path; reload swaps it in.
        artifact(99).save(&path).unwrap();
        reg.reload("m").unwrap();
        let swapped = reg.get("m").unwrap();
        assert_eq!(swapped.generation, 1);
        assert!(!Arc::ptr_eq(&held, &swapped));

        // The held entry still answers with the old model's θ.
        let again = held.engine.infer("pencil ruler").unwrap();
        assert_eq!(before, again);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reload_failure_keeps_the_old_entry_live() {
        let path = temp_path("fail");
        artifact(1).save(&path).unwrap();
        let reg = ModelRegistry::new(EngineOptions::default());
        reg.load("m", &path).unwrap();
        // Corrupt the file; reload must fail and leave generation 0 live.
        std::fs::write(&path, b"not an artifact").unwrap();
        assert!(reg.reload("m").is_err());
        let entry = reg.get("m").unwrap();
        assert_eq!(entry.generation, 0);
        assert!(entry.engine.infer("pencil").is_ok());
        assert!(reg.reload("missing").is_err());
        let _ = std::fs::remove_file(path);
    }
}
