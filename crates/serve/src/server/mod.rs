//! The `srclda-served` network daemon: a long-lived process that holds
//! models resident and answers inference over HTTP/1.1 on a TCP socket.
//!
//! The ROADMAP workload is fold-in at serving time — exactly the shape
//! that belongs behind a daemon with caching and batching rather than a
//! one-shot CLI. The server is hand-rolled on `std::net::TcpListener`
//! (the workspace vendors no async runtime or HTTP stack) and kept
//! deliberately boring:
//!
//! * a **fixed worker pool**: `workers` OS threads, each accepting
//!   connections from the shared listener and running a keep-alive
//!   connection loop ([`http`]);
//! * **routing** to four endpoints — `POST /infer` (single doc or batch,
//!   JSON in/out), `GET /healthz`, `GET /metrics`, and `POST /reload`
//!   (hot-swap artifacts via the [`registry`]);
//! * **determinism end to end**: `/infer` calls the same
//!   [`InferenceEngine`](crate::InferenceEngine) batch path as
//!   `srclda-infer`, and θ is rendered with shortest-round-trip float
//!   formatting ([`json`]), so a response body carries *bit-identical*
//!   θ to the engine API on the same artifact;
//! * **graceful shutdown**: flip the [`ServerHandle`] (wired to
//!   SIGTERM/ctrl-c by the binary), workers finish their in-flight
//!   request, answer with `Connection: close`, and exit.

pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;

use crate::engine::DocumentScore;
use crate::error::ServeError;
use http::{read_request, write_response, ReadError, Request};
use json::{obj, Value};
use metrics::Metrics;
use registry::{ModelEntry, ModelRegistry};
use srclda_obs::PromText;
use std::io::{self, BufRead, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Connection worker threads (clamped to at least 1).
    pub workers: usize,
    /// Threads used per batch `/infer` request
    /// ([`InferenceEngine::infer_batch_parallel`](crate::InferenceEngine::infer_batch_parallel)).
    pub batch_workers: usize,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Poll granularity for accept and idle-read loops; bounds how long
    /// shutdown can lag behind the handle flip.
    pub poll_interval: Duration,
    /// Additional metric families appended to the Prometheus shape of
    /// `GET /metrics` after the serving families — the mount point for a
    /// trainer's [`srclda_obs::RegistryObserver`] registry, so one scrape
    /// covers training and serving. Empty (and skipped) by default.
    pub extra_metrics: Arc<srclda_obs::Registry>,
    /// Admission cap on concurrent `/infer` handlers: `None` is
    /// unlimited, `Some(n)` sheds request n+1 with 503 + `Retry-After`
    /// (`Some(0)` sheds every `/infer` — useful to pin the shed path in
    /// tests). The connection pool itself bounds *connections* at
    /// `workers`; this bounds the expensive inference work inside them.
    pub max_inflight: Option<usize>,
    /// Shed `/infer` when the p99 of the latency histogram exceeds this.
    /// The histogram is cumulative over the process lifetime, so after a
    /// genuine overload ends the p99 decays only as fast as new fast
    /// requests dilute the slow ones — a deliberate bias toward shedding
    /// too long rather than flapping. `None` disables the check.
    pub shed_p99: Option<Duration>,
    /// The `Retry-After` value (whole seconds) attached to shed
    /// responses.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            batch_workers: 1,
            idle_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            extra_metrics: Arc::new(srclda_obs::Registry::new()),
            max_inflight: None,
            shed_p99: None,
            retry_after_secs: 1,
        }
    }
}

/// A remote control for a running server: flip it to begin graceful
/// shutdown, and read the shared metrics. Cloneable and thread-safe.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begin graceful shutdown: workers stop accepting, finish their
    /// in-flight request, and exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The server's shared metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The bound socket address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Everything a worker thread needs, shared by `Arc`.
struct WorkerCtx {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listen socket.
    ///
    /// # Errors
    /// Address parse/bind failures.
    pub fn bind(config: ServerConfig, registry: Arc<ModelRegistry>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());
        Ok(Self {
            listener,
            registry,
            metrics,
            shutdown,
            config,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for shutdown and metrics, usable from any thread.
    ///
    /// # Errors
    /// Propagates the socket address query failure.
    pub fn handle(&self) -> Result<ServerHandle, ServeError> {
        Ok(ServerHandle {
            shutdown: self.shutdown.clone(),
            metrics: self.metrics.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Run the worker pool until shutdown is requested. Blocks the calling
    /// thread; spawn it on a thread (tests) or call from `main` (daemon).
    ///
    /// # Errors
    /// Listener clone failures at startup; per-connection I/O errors are
    /// contained to their connection.
    pub fn run(self) -> Result<(), ServeError> {
        let workers = self.config.workers.max(1);
        let ctx = Arc::new(WorkerCtx {
            registry: self.registry,
            metrics: self.metrics,
            shutdown: self.shutdown,
            config: self.config,
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let listener = self.listener.try_clone()?;
            let ctx = ctx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("srclda-served-{w}"))
                    .spawn(move || accept_loop(&listener, &ctx))?,
            );
        }
        drop(self.listener);
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One worker: accept connections until shutdown, handling each to
/// completion (fixed pool — a worker serves one connection at a time).
fn accept_loop(listener: &TcpListener, ctx: &WorkerCtx) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connection-level failures (peer reset, timeout) are that
                // connection's problem, never the worker's.
                let _ = handle_connection(stream, ctx);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ctx.config.poll_interval);
            }
            Err(_) => std::thread::sleep(ctx.config.poll_interval),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serve one keep-alive connection until the peer closes, an error, idle
/// timeout, or graceful shutdown.
fn handle_connection(stream: TcpStream, ctx: &WorkerCtx) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Responses are written as one flush from a BufWriter, but disable
    // Nagle anyway: a coalescing delay on loopback costs more than it
    // saves, and tail latency is a served metric.
    stream.set_nodelay(true)?;
    // The socket carries one short read timeout throughout: while
    // *waiting* for the next request it lets a parked keep-alive
    // connection notice shutdown and idle-timeout promptly, and while
    // *parsing* one, `read_request` retries timed-out reads against a
    // per-request wall-clock deadline — so a client descheduled mid-write
    // on a loaded box is not 408'd after one poll tick, while a
    // byte-dripping peer cannot pin a fixed-pool worker past the deadline.
    let poll_timeout = ctx.config.poll_interval.max(Duration::from_millis(10));
    let request_budget = ctx.config.idle_timeout.max(poll_timeout);
    stream.set_read_timeout(Some(poll_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut idle_since = Instant::now();
    let _active = ctx.metrics.connection_guard();
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if ctx.shutdown.load(Ordering::SeqCst)
                    || idle_since.elapsed() >= ctx.config.idle_timeout
                {
                    return Ok(());
                }
                continue;
            }
            Err(_) => return Ok(()),
        }
        // Unparseable requests still count as requests — `/metrics` must
        // keep `requests ≥ every response counter` or error rates computed
        // from them exceed 100%.
        let deadline = Instant::now() + request_budget;
        match read_request(&mut reader, deadline) {
            Ok(request) => {
                ctx.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let response = route(&request, ctx);
                ctx.metrics.record_status(response.status);
                let close = request.wants_close || ctx.shutdown.load(Ordering::SeqCst);
                let retry_after = response.retry_after.map(|secs| secs.to_string());
                let extra: Vec<(&str, &str)> = retry_after
                    .as_deref()
                    .map(|v| ("Retry-After", v))
                    .into_iter()
                    .collect();
                http::write_response_with(
                    &mut writer,
                    response.status,
                    response.content_type,
                    &response.body,
                    close,
                    &extra,
                )?;
                if close {
                    return Ok(());
                }
                idle_since = Instant::now();
            }
            Err(ReadError::Closed) => return Ok(()),
            Err(ReadError::Malformed(msg)) => {
                ctx.metrics.requests.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.record_status(400);
                return write_response(&mut writer, 400, &error_body(msg), true);
            }
            Err(ReadError::TooLarge(msg)) => {
                ctx.metrics.requests.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.record_status(413);
                return write_response(&mut writer, 413, &error_body(msg), true);
            }
            Err(ReadError::DeadlineExceeded) => {
                ctx.metrics.requests.fetch_add(1, Ordering::Relaxed);
                ctx.metrics.record_status(408);
                return write_response(&mut writer, 408, &error_body("request timed out"), true);
            }
            Err(ReadError::Io(_)) => return Ok(()),
        }
    }
}

fn error_body(message: &str) -> String {
    obj(vec![("error", Value::from(message))]).render()
}

/// Content type of every endpoint except the Prometheus `/metrics` shape.
const JSON_TYPE: &str = "application/json";

/// A routed response: status, content type, body, and an optional
/// `Retry-After` value (whole seconds) for shed requests.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
}

impl Response {
    fn json((status, body): (u16, String)) -> Self {
        Self {
            status,
            content_type: JSON_TYPE,
            body,
            retry_after: None,
        }
    }
}

/// Dispatch one request to its endpoint handler.
fn route(request: &Request, ctx: &WorkerCtx) -> Response {
    let json = Response::json;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => json(handle_healthz(ctx)),
        ("GET", "/metrics") => {
            let (status, content_type, body) = handle_metrics(request, ctx);
            Response {
                status,
                content_type,
                body,
                retry_after: None,
            }
        }
        // Admission control happens here, before the request body is even
        // parsed: a shed must cost the daemon as close to nothing as
        // possible, or shedding itself becomes the overload.
        ("POST", "/infer") => match admit_infer(ctx) {
            Ok(_guard) => json(handle_infer(request, ctx)),
            Err(retry_after) => {
                ctx.metrics.record_shed();
                Response {
                    status: 503,
                    content_type: JSON_TYPE,
                    body: error_body(&format!("overloaded, retry after {retry_after}s")),
                    retry_after: Some(retry_after),
                }
            }
        },
        ("POST", "/reload") => json(handle_reload(request, ctx)),
        (_, "/healthz" | "/metrics") => json((405, error_body("use GET for this endpoint"))),
        (_, "/infer" | "/reload") => json((405, error_body("use POST for this endpoint"))),
        _ => json((404, error_body("no such endpoint"))),
    }
}

/// Decide whether an `/infer` request is admitted. `Ok` carries the RAII
/// guard holding the in-flight gauge up for the handler's duration; `Err`
/// carries the `Retry-After` seconds for the shed response. Two checks,
/// cheapest last-resort first: the configured p99 threshold against the
/// served latency histogram, then the CAS-bounded in-flight cap.
fn admit_infer(ctx: &WorkerCtx) -> Result<metrics::InflightGuard<'_>, u64> {
    if let Some(threshold) = ctx.config.shed_p99 {
        if let Some(p99_secs) = ctx.metrics.infer_latency.quantile(0.99) {
            if p99_secs > threshold.as_secs_f64() {
                return Err(ctx.config.retry_after_secs);
            }
        }
    }
    ctx.metrics
        .try_begin_infer(ctx.config.max_inflight)
        .ok_or(ctx.config.retry_after_secs)
}

/// True when the `Accept` header asks for the Prometheus text shape.
///
/// The default stays JSON for compatibility with existing consumers: no
/// header, `*/*` (curl's default), and `application/json` all keep the
/// JSON body. Any listed `text/plain` — with or without the `version`
/// parameter Prometheus sends — selects the exposition format.
fn wants_prometheus(accept: Option<&str>) -> bool {
    let Some(accept) = accept else { return false };
    accept.split(',').any(|part| {
        let mime = part.split(';').next().unwrap_or("").trim();
        mime.eq_ignore_ascii_case("text/plain")
    })
}

fn handle_healthz(ctx: &WorkerCtx) -> (u16, String) {
    let models: Vec<Value> = ctx.registry.names().into_iter().map(Value::from).collect();
    let (status, state) = if models.is_empty() {
        (503, "no models loaded")
    } else {
        (200, "ok")
    };
    (
        status,
        obj(vec![
            ("status", Value::from(state)),
            ("models", Value::Arr(models)),
        ])
        .render(),
    )
}

fn handle_metrics(request: &Request, ctx: &WorkerCtx) -> (u16, &'static str, String) {
    if wants_prometheus(request.accept.as_deref()) {
        return (
            200,
            srclda_obs::prom::CONTENT_TYPE,
            render_prometheus_metrics(ctx),
        );
    }
    (200, JSON_TYPE, render_json_metrics(ctx))
}

/// The Prometheus shape of `/metrics`: serving counter families, the
/// model-registry families, then any mounted trainer registry — one
/// scrape covering the whole process.
fn render_prometheus_metrics(ctx: &WorkerCtx) -> String {
    let mut out = String::new();
    ctx.metrics.render_prometheus(&mut out);
    let entries: Vec<Arc<ModelEntry>> = ctx
        .registry
        .names()
        .iter()
        .filter_map(|name| ctx.registry.get(name))
        .collect();
    if !entries.is_empty() {
        let mut text = PromText::wrap(&mut out);
        text.header(
            "srclda_serve_model_generation",
            "Reload generation of the live artifact, by model.",
            "gauge",
        );
        for entry in &entries {
            text.sample(
                "srclda_serve_model_generation",
                &[("model", &entry.name)],
                entry.generation as f64,
            );
        }
        text.header(
            "srclda_serve_model_topics",
            "Topic count of the live artifact, by model.",
            "gauge",
        );
        for entry in &entries {
            text.sample(
                "srclda_serve_model_topics",
                &[("model", &entry.name)],
                entry.engine.num_topics() as f64,
            );
        }
        text.header(
            "srclda_serve_model_cache_hits_total",
            "Fold-in cache hits, by model.",
            "counter",
        );
        for entry in &entries {
            text.sample(
                "srclda_serve_model_cache_hits_total",
                &[("model", &entry.name)],
                entry.engine.cache_stats().hits as f64,
            );
        }
        text.header(
            "srclda_serve_model_cache_misses_total",
            "Fold-in cache misses, by model.",
            "counter",
        );
        for entry in &entries {
            text.sample(
                "srclda_serve_model_cache_misses_total",
                &[("model", &entry.name)],
                entry.engine.cache_stats().misses as f64,
            );
        }
        text.header(
            "srclda_serve_model_cache_entries",
            "Resident fold-in cache entries, by model.",
            "gauge",
        );
        for entry in &entries {
            text.sample(
                "srclda_serve_model_cache_entries",
                &[("model", &entry.name)],
                entry.engine.cache_stats().entries as f64,
            );
        }
    }
    ctx.config.extra_metrics.render_into(&mut out);
    out
}

/// The JSON shape of `/metrics` (the daemon's original format, kept as
/// the default for existing consumers).
fn render_json_metrics(ctx: &WorkerCtx) -> String {
    let m = &ctx.metrics;
    let quantile_ms = |q: f64| {
        m.infer_latency
            .quantile(q)
            .map_or(Value::Null, |secs| Value::Num(secs * 1e3))
    };
    let per_model = m.model_snapshot();
    let models: Vec<Value> = ctx
        .registry
        .names()
        .iter()
        .filter_map(|name| ctx.registry.get(name))
        .map(|entry| {
            let cache = entry.engine.cache_stats();
            let stats = per_model
                .iter()
                .find(|(name, _)| *name == entry.name)
                .map(|(_, stats)| stats.clone());
            let stat = |f: fn(&metrics::ModelStats) -> u64| {
                Value::from(stats.as_ref().map_or(0, |s| f(s)))
            };
            obj(vec![
                ("name", Value::from(entry.name.clone())),
                ("generation", Value::from(entry.generation)),
                ("topics", Value::from(entry.engine.num_topics())),
                ("requests", stat(|s| s.requests.load(Ordering::Relaxed))),
                (
                    "active_requests",
                    stat(|s| s.active.load(Ordering::Relaxed)),
                ),
                (
                    "cache",
                    obj(vec![
                        ("hits", Value::from(cache.hits)),
                        ("misses", Value::from(cache.misses)),
                        ("entries", Value::from(cache.entries)),
                    ]),
                ),
            ])
        })
        .collect();
    let body = obj(vec![
        ("requests", Value::from(m.requests.load(Ordering::Relaxed))),
        (
            "active_connections",
            Value::from(m.active_connections.load(Ordering::Relaxed)),
        ),
        (
            "responses",
            obj(vec![
                ("ok", Value::from(m.responses_ok.load(Ordering::Relaxed))),
                (
                    "client_error",
                    Value::from(m.responses_client_error.load(Ordering::Relaxed)),
                ),
                (
                    "server_error",
                    Value::from(m.responses_server_error.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "shed_total",
            Value::from(m.shed_total.load(Ordering::Relaxed)),
        ),
        (
            "reload",
            obj(vec![
                ("count", Value::from(m.reloads.load(Ordering::Relaxed))),
                (
                    "failures",
                    Value::from(m.reload_failures.load(Ordering::Relaxed)),
                ),
                (
                    "last_unix",
                    Value::from(m.last_reload_unix.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "infer",
            obj(vec![
                ("docs", Value::from(m.infer_docs.load(Ordering::Relaxed))),
                (
                    "tokens",
                    Value::from(m.infer_tokens.load(Ordering::Relaxed)),
                ),
                (
                    "inflight",
                    Value::from(m.infer_inflight.load(Ordering::Relaxed)),
                ),
                ("tokens_per_sec", Value::Num(m.tokens_per_sec())),
                ("latency_p50_ms", quantile_ms(0.50)),
                ("latency_p99_ms", quantile_ms(0.99)),
            ]),
        ),
        ("models", Value::Arr(models)),
    ]);
    body.render()
}

/// Fields `/infer` accepts; anything else is a client error (silent
/// tolerance would hide typos like `"txet"` forever).
const INFER_FIELDS: &[&str] = &["model", "text", "docs", "top"];

fn handle_infer(request: &Request, ctx: &WorkerCtx) -> (u16, String) {
    let started = Instant::now();
    let Ok(body_text) = std::str::from_utf8(&request.body) else {
        return (400, error_body("request body is not utf-8"));
    };
    let body = match json::parse(body_text) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let Value::Obj(members) = &body else {
        return (400, error_body("request body must be a json object"));
    };
    if let Some((unknown, _)) = members
        .iter()
        .find(|(k, _)| !INFER_FIELDS.contains(&k.as_str()))
    {
        return (400, error_body(&format!("unknown field {unknown:?}")));
    }

    let model_name = match body.get("model") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s),
            None => return (400, error_body("\"model\" must be a string")),
        },
    };
    let Some(entry) = ctx.registry.resolve(model_name) else {
        let message = match model_name {
            Some(name) => format!("no model named {name:?}"),
            None => "no models loaded".to_string(),
        };
        return (404, error_body(&message));
    };
    // Counts the request and holds the model's active gauge up for the
    // rest of the handler, including every error return below.
    let _active = ctx.metrics.begin_model_request(&entry.name);

    let top = match body.get("top") {
        None => 3,
        Some(v) => match v.as_usize() {
            Some(n) => n,
            None => return (400, error_body("\"top\" must be a non-negative integer")),
        },
    };

    let (texts, single): (Vec<&str>, bool) = match (body.get("text"), body.get("docs")) {
        (Some(_), Some(_)) => {
            return (
                400,
                error_body("send either \"text\" or \"docs\", not both"),
            )
        }
        (Some(text), None) => match text.as_str() {
            Some(s) => (vec![s], true),
            None => return (400, error_body("\"text\" must be a string")),
        },
        (None, Some(docs)) => match docs.as_arr() {
            Some(items) => {
                let mut texts = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(s) => texts.push(s),
                        None => return (400, error_body("\"docs\" must be an array of strings")),
                    }
                }
                (texts, false)
            }
            None => return (400, error_body("\"docs\" must be an array of strings")),
        },
        (None, None) => return (400, error_body("request needs \"text\" or \"docs\"")),
    };

    let scores = match entry
        .engine
        .infer_batch_parallel(&texts, ctx.config.batch_workers)
    {
        Ok(scores) => scores,
        Err(e) => return (500, error_body(&e.to_string())),
    };
    let tokens: u64 = scores.iter().map(|s| s.num_tokens() as u64).sum();
    let elapsed = started.elapsed();
    ctx.metrics
        .record_infer(scores.len() as u64, tokens, elapsed);
    ctx.metrics.record_model_infer(&entry.name, elapsed);

    let mut members: Vec<(String, Value)> = vec![
        ("model".to_string(), Value::from(entry.name.clone())),
        ("generation".to_string(), Value::from(entry.generation)),
    ];
    if single {
        // Single-document responses flatten the score fields into the top
        // level ({"model": …, "theta": …}), batch responses nest them.
        // `scores` has exactly one entry here (one input document), but go
        // through `first()` so the request path stays panic-free.
        if let Some(first) = scores.first() {
            if let Value::Obj(score_members) = score_value(&entry, first, top) {
                members.extend(score_members);
            }
        }
    } else {
        members.push((
            "results".to_string(),
            Value::Arr(
                scores
                    .iter()
                    .map(|score| score_value(&entry, score, top))
                    .collect(),
            ),
        ));
    }
    (200, Value::Obj(members).render())
}

/// Render one scored document. θ is emitted in full — shortest-round-trip
/// floats, so the client can reconstruct the engine's exact bits.
fn score_value(entry: &ModelEntry, score: &DocumentScore, top: usize) -> Value {
    let top_topics: Vec<Value> = score
        .top_topics(top)
        .into_iter()
        .map(|t| {
            obj(vec![
                ("topic", Value::from(t)),
                (
                    "label",
                    entry
                        .engine
                        .label(t)
                        .map_or(Value::Null, |l| Value::from(l.to_string())),
                ),
                (
                    "weight",
                    Value::Num(score.theta().get(t).copied().unwrap_or(0.0)),
                ),
            ])
        })
        .collect();
    obj(vec![
        (
            "theta",
            Value::Arr(score.theta().iter().map(|&p| Value::Num(p)).collect()),
        ),
        ("top", Value::Arr(top_topics)),
        ("tokens", Value::from(score.num_tokens())),
        ("oov_tokens", Value::from(score.oov_tokens())),
        ("log_likelihood", Value::Num(score.log_likelihood())),
        ("perplexity", Value::Num(score.perplexity())),
    ])
}

fn handle_reload(request: &Request, ctx: &WorkerCtx) -> (u16, String) {
    // Strict like /infer: a typo'd key must not silently degrade into a
    // reload of *every* model. Reload-all is requested by an empty body
    // or an empty object, nothing else.
    let names: Vec<String> = if request.body.is_empty() {
        ctx.registry.names()
    } else {
        let Ok(body_text) = std::str::from_utf8(&request.body) else {
            return (400, error_body("request body is not utf-8"));
        };
        let body = match json::parse(body_text) {
            Ok(v) => v,
            Err(e) => return (400, error_body(&e.to_string())),
        };
        let Value::Obj(members) = &body else {
            return (400, error_body("request body must be a json object"));
        };
        if let Some((unknown, _)) = members.iter().find(|(k, _)| k != "model") {
            return (400, error_body(&format!("unknown field {unknown:?}")));
        }
        match body.get("model") {
            Some(m) => match m.as_str() {
                Some(name) => vec![name.to_string()],
                None => return (400, error_body("\"model\" must be a string")),
            },
            None => ctx.registry.names(),
        }
    };
    if names.is_empty() {
        return (404, error_body("no models loaded"));
    }
    let mut reloaded = Vec::new();
    for name in &names {
        match ctx.registry.reload(name) {
            Ok(()) => reloaded.push(Value::from(name.clone())),
            Err(e @ ServeError::UnknownModel { .. }) => {
                return (404, error_body(&e.to_string()));
            }
            Err(e) => {
                // Old entry is still live (swap is all-or-nothing), so the
                // daemon stays healthy; the operator sees what failed —
                // both in the response and in the reload_failures counter.
                ctx.metrics.record_reload_failure();
                return (500, error_body(&format!("reload of {name:?} failed: {e}")));
            }
        }
    }
    ctx.metrics.record_reload();
    (200, obj(vec![("reloaded", Value::Arr(reloaded))]).render())
}
