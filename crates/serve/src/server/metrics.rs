//! Lock-free serving metrics: request counters, inference volume, and a
//! latency histogram good enough for p50/p99.
//!
//! Everything is plain relaxed atomics — metrics must never contend with
//! the request path. Latency is recorded into logarithmically spaced
//! buckets (~7% relative width), so quantiles are read as the upper edge
//! of the bucket holding the target rank: a bounded-error estimate with a
//! fixed 256-counter footprint, no sampling, and no locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets; bucket `i` holds durations up to
/// `BASE_MICROS * GROWTH^i` microseconds (the last bucket is unbounded).
const BUCKETS: usize = 256;
const BASE_MICROS: f64 = 1.0;
const GROWTH: f64 = 1.07;

/// A fixed-footprint log-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(duration: Duration) -> usize {
        let micros = duration.as_secs_f64() * 1e6;
        if micros <= BASE_MICROS {
            return 0;
        }
        let i = (micros / BASE_MICROS).ln() / GROWTH.ln();
        (i.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper edge of bucket `i` in seconds.
    fn upper_edge_secs(i: usize) -> f64 {
        BASE_MICROS * GROWTH.powi(i as i32) / 1e6
    }

    /// Record one observation.
    pub fn record(&self, duration: Duration) {
        self.counts[Self::bucket_for(duration)].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate quantile `q ∈ [0, 1]` in seconds (`None` when empty).
    /// The estimate is the upper edge of the bucket containing the rank,
    /// so it over-reports by at most one bucket width (~7%).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in snapshot.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Self::upper_edge_secs(i));
            }
        }
        Some(Self::upper_edge_secs(BUCKETS - 1))
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Aggregate serving counters, shared by all workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received — routed ones plus unparseable ones that were
    /// answered with a 4xx, so this is always ≥ the sum of the response
    /// counters below.
    pub requests: AtomicU64,
    /// Responses with 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with 5xx status.
    pub responses_server_error: AtomicU64,
    /// Documents scored through `/infer`.
    pub infer_docs: AtomicU64,
    /// In-vocabulary tokens folded in through `/infer`.
    pub infer_tokens: AtomicU64,
    /// Nanoseconds spent inside inference (excludes socket I/O).
    pub infer_nanos: AtomicU64,
    /// End-to-end `/infer` handler latency.
    pub infer_latency: LatencyHistogram,
}

impl Metrics {
    /// Count one response by status class.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed `/infer` handler call.
    pub fn record_infer(&self, docs: u64, tokens: u64, elapsed: Duration) {
        self.infer_docs.fetch_add(docs, Ordering::Relaxed);
        self.infer_tokens.fetch_add(tokens, Ordering::Relaxed);
        self.infer_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.infer_latency.record(elapsed);
    }

    /// Tokens per second of inference compute time (not wall-clock): total
    /// folded tokens over total in-handler nanoseconds.
    pub fn tokens_per_sec(&self) -> f64 {
        let nanos = self.infer_nanos.load(Ordering::Relaxed);
        if nanos == 0 {
            return 0.0;
        }
        self.infer_tokens.load(Ordering::Relaxed) as f64 / (nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_bracket_the_observations() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket estimates over-report by at most one ~7% bucket.
        assert!((0.050..0.056).contains(&p50), "p50 = {p50}");
        assert!((0.099..0.111).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn extreme_durations_stay_in_range() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0).unwrap() > 0.0);
        assert!(h.quantile(1.0).unwrap().is_finite());
    }

    #[test]
    fn metrics_aggregate_infer_calls() {
        let m = Metrics::default();
        m.record_infer(2, 100, Duration::from_millis(10));
        m.record_infer(1, 50, Duration::from_millis(5));
        assert_eq!(m.infer_docs.load(Ordering::Relaxed), 3);
        assert_eq!(m.infer_tokens.load(Ordering::Relaxed), 150);
        let tps = m.tokens_per_sec();
        assert!((tps - 10_000.0).abs() < 1.0, "tokens/sec = {tps}");
        assert_eq!(m.infer_latency.count(), 2);
    }

    #[test]
    fn status_classes_are_counted_separately() {
        let m = Metrics::default();
        m.record_status(200);
        m.record_status(204);
        m.record_status(404);
        m.record_status(500);
        assert_eq!(m.responses_ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_client_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_server_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.tokens_per_sec(), 0.0);
    }
}
