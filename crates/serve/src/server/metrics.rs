//! Lock-free serving metrics: request counters, inference volume, and a
//! latency histogram good enough for p50/p99.
//!
//! Everything is plain relaxed atomics — metrics must never contend with
//! the request path. Latency is recorded into logarithmically spaced
//! buckets (~7% relative width), so quantiles are read as the upper edge
//! of the bucket holding the target rank: a bounded-error estimate with a
//! fixed 256-counter footprint, no sampling, and no locks.
//!
//! The same structs back both `/metrics` shapes: the JSON body renders
//! from the counters directly, and [`Metrics::render_prometheus`] encodes
//! them as `text/plain; version=0.0.4` families through the shared
//! [`srclda_obs::PromText`] writer, so the two expositions can never
//! drift apart.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use srclda_obs::PromText;

/// Number of histogram buckets; bucket `i` holds durations up to
/// `BASE_MICROS * GROWTH^i` microseconds (the last bucket is unbounded).
const BUCKETS: usize = 256;
const BASE_MICROS: f64 = 1.0;
const GROWTH: f64 = 1.07;

/// Every how many buckets a cumulative edge is exported to Prometheus.
/// 256 fine buckets would mean 256 lines per scrape; exporting every
/// 16th edge keeps the family at 16 `le` lines (~2.9× spacing) while the
/// fine buckets still back the JSON p50/p99.
const PROM_BUCKET_STRIDE: usize = 16;

/// A fixed-footprint log-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    /// Exact total of recorded durations in nanoseconds, kept alongside
    /// the bucketed counts so the Prometheus `_sum` is not a bucket-edge
    /// estimate. Saturates rather than wraps.
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(duration: Duration) -> usize {
        let micros = duration.as_secs_f64() * 1e6;
        if micros <= BASE_MICROS {
            return 0;
        }
        let guess = (micros / BASE_MICROS).ln() / GROWTH.ln();
        let mut i = (guess.ceil() as usize).min(BUCKETS - 1);
        // The ln-based guess can land one bucket off at exact edges
        // (GROWTH^k computed via powi and via ln/exp disagree in the last
        // ulp). Fix up against the powi edges so the invariant
        // `upper_edge(i-1) < micros <= upper_edge(i)` holds exactly,
        // matching what quantile() reports back.
        while i < BUCKETS - 1 && Self::upper_edge_micros(i) < micros {
            i += 1;
        }
        while i > 0 && Self::upper_edge_micros(i - 1) >= micros {
            i -= 1;
        }
        i
    }

    /// Upper edge of bucket `i` in microseconds.
    fn upper_edge_micros(i: usize) -> f64 {
        BASE_MICROS * GROWTH.powi(i as i32)
    }

    /// Upper edge of bucket `i` in seconds.
    fn upper_edge_secs(i: usize) -> f64 {
        Self::upper_edge_micros(i) / 1e6
    }

    /// Record one observation.
    pub fn record(&self, duration: Duration) {
        // lint:allow(index): bucket_for clamps its result to BUCKETS - 1, the last valid index
        self.counts[Self::bucket_for(duration)].fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        // Saturate the exact sum instead of wrapping: a wrapped _sum
        // would read as the counter going backwards to a scraper.
        let _ = self
            .sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(nanos))
            });
    }

    /// Fold another histogram into this one (bucket-wise count addition
    /// plus the exact sums). Buckets share one fixed layout, so merging
    /// loses nothing beyond what bucketing already lost.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let nanos = other.sum_nanos.load(Ordering::Relaxed);
        let _ = self
            .sum_nanos
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(nanos))
            });
    }

    /// Approximate quantile `q ∈ [0, 1]` in seconds (`None` when empty).
    /// The estimate is the upper edge of the bucket containing the rank,
    /// so it over-reports by at most one bucket width (~7%) and never
    /// under-reports below the bucket holding the true value.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in snapshot.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Self::upper_edge_secs(i));
            }
        }
        Some(Self::upper_edge_secs(BUCKETS - 1))
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Exact sum of recorded durations in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Cumulative `(upper_edge_secs, count_le_edge)` pairs for Prometheus
    /// exposition, coarsened to every [`PROM_BUCKET_STRIDE`]th fine
    /// bucket. The caller appends the implicit `+Inf` bucket from
    /// [`LatencyHistogram::count`].
    pub fn prometheus_buckets(&self) -> Vec<(f64, u64)> {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let mut out = Vec::with_capacity(BUCKETS / PROM_BUCKET_STRIDE);
        let mut cumulative = 0u64;
        for (i, &count) in snapshot.iter().enumerate() {
            cumulative += count;
            if (i + 1) % PROM_BUCKET_STRIDE == 0 {
                out.push((Self::upper_edge_secs(i), cumulative));
            }
        }
        out
    }
}

/// Per-model serving counters, created lazily on first request that
/// names the model (or on reload). Shared across workers via `Arc`.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// `/infer` requests naming this model.
    pub requests: AtomicU64,
    /// Requests currently inside the handler for this model.
    pub active: AtomicU64,
    /// Nanoseconds of inference compute spent on this model.
    pub infer_nanos: AtomicU64,
}

/// RAII guard for a request being handled against one model: counts the
/// request on entry, holds the model's `active` gauge up for its
/// lifetime. Dropping (on any exit path, including errors) releases it.
#[derive(Debug)]
pub struct ModelActiveGuard {
    stats: Arc<ModelStats>,
}

impl ModelActiveGuard {
    /// Enter: count one request and raise the active gauge.
    pub fn enter(stats: Arc<ModelStats>) -> Self {
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats.active.fetch_add(1, Ordering::Relaxed);
        Self { stats }
    }
}

impl Drop for ModelActiveGuard {
    fn drop(&mut self) {
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII guard holding a connection-level gauge up while a connection is
/// being serviced.
#[derive(Debug)]
pub struct ConnectionGuard<'a> {
    gauge: &'a AtomicU64,
}

impl<'a> ConnectionGuard<'a> {
    fn enter(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self { gauge }
    }
}

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII guard for one admitted `/infer` request: holds the in-flight
/// gauge up for the handler's lifetime. Obtained through
/// [`Metrics::try_begin_infer`], which refuses to hand one out beyond
/// the configured cap — the admission-control half of load shedding.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    gauge: &'a AtomicU64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Aggregate serving counters, shared by all workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received — routed ones plus unparseable ones that were
    /// answered with a 4xx, so this is always ≥ the sum of the response
    /// counters below.
    pub requests: AtomicU64,
    /// Responses with 2xx status.
    pub responses_ok: AtomicU64,
    /// Responses with 4xx status.
    pub responses_client_error: AtomicU64,
    /// Responses with 5xx status.
    pub responses_server_error: AtomicU64,
    /// Documents scored through `/infer`.
    pub infer_docs: AtomicU64,
    /// In-vocabulary tokens folded in through `/infer`.
    pub infer_tokens: AtomicU64,
    /// Nanoseconds spent inside inference (excludes socket I/O).
    pub infer_nanos: AtomicU64,
    /// End-to-end `/infer` handler latency.
    pub infer_latency: LatencyHistogram,
    /// Connections currently being serviced by a worker.
    pub active_connections: AtomicU64,
    /// `/infer` requests currently inside the handler (all models) —
    /// the gauge the admission cap is enforced against.
    pub infer_inflight: AtomicU64,
    /// `/infer` requests shed with 503 + `Retry-After` by admission
    /// control (in-flight cap or p99 threshold).
    pub shed_total: AtomicU64,
    /// Completed `/reload` operations (full or single-model).
    pub reloads: AtomicU64,
    /// Failed `/reload` operations — the old model kept serving.
    pub reload_failures: AtomicU64,
    /// Unix timestamp (whole seconds) of the last completed reload;
    /// zero until the first reload.
    pub last_reload_unix: AtomicU64,
    /// Per-model stats, keyed by model name. A `Vec` rather than a map:
    /// a daemon serves a handful of models, and scans stay trivially
    /// cheap at that size. The lock is taken only to look up or insert
    /// the `Arc` — never while counting.
    models: Mutex<Vec<(String, Arc<ModelStats>)>>,
}

impl Metrics {
    /// Count one response by status class.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed `/infer` handler call.
    pub fn record_infer(&self, docs: u64, tokens: u64, elapsed: Duration) {
        self.infer_docs.fetch_add(docs, Ordering::Relaxed);
        self.infer_tokens.fetch_add(tokens, Ordering::Relaxed);
        self.infer_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.infer_latency.record(elapsed);
    }

    /// Tokens per second of inference compute time (not wall-clock): total
    /// folded tokens over total in-handler nanoseconds.
    pub fn tokens_per_sec(&self) -> f64 {
        let nanos = self.infer_nanos.load(Ordering::Relaxed);
        if nanos == 0 {
            return 0.0;
        }
        self.infer_tokens.load(Ordering::Relaxed) as f64 / (nanos as f64 / 1e9)
    }

    /// Raise the active-connection gauge for the guard's lifetime.
    pub fn connection_guard(&self) -> ConnectionGuard<'_> {
        ConnectionGuard::enter(&self.active_connections)
    }

    /// Fetch (or lazily create) the stats slot for `model`.
    pub fn model_stats(&self, model: &str) -> Arc<ModelStats> {
        let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, stats)) = models.iter().find(|(name, _)| name == model) {
            return stats.clone();
        }
        let stats = Arc::new(ModelStats::default());
        models.push((model.to_string(), stats.clone()));
        stats
    }

    /// Count a request against `model` and hold its active gauge up
    /// until the returned guard drops.
    pub fn begin_model_request(&self, model: &str) -> ModelActiveGuard {
        ModelActiveGuard::enter(self.model_stats(model))
    }

    /// Add `elapsed` to `model`'s inference-compute accumulator.
    pub fn record_model_infer(&self, model: &str, elapsed: Duration) {
        self.model_stats(model).infer_nanos.fetch_add(
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Snapshot of per-model stats in first-seen order.
    pub fn model_snapshot(&self) -> Vec<(String, Arc<ModelStats>)> {
        self.models
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, stats)| (name.clone(), stats.clone()))
            .collect()
    }

    /// Try to admit one `/infer` request under `cap`: `None` is
    /// unlimited (the gauge is still tracked), `Some(n)` admits at most
    /// `n` concurrent handlers — `Some(0)` sheds everything, which is
    /// how CI pins the shed path deterministically with one request.
    /// Admission is a single CAS loop, so the cap holds exactly even
    /// with every worker racing; `None` means the caller must shed.
    pub fn try_begin_infer(&self, cap: Option<usize>) -> Option<InflightGuard<'_>> {
        let admitted = self
            .infer_inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |inflight| match cap {
                Some(cap) if inflight >= cap as u64 => None,
                _ => Some(inflight + 1),
            })
            .is_ok();
        // `then` (not `then_some`): the guard must only be constructed
        // when admitted — a refused temporary would run Drop and
        // decrement a gauge it never incremented.
        admitted.then(|| InflightGuard {
            gauge: &self.infer_inflight,
        })
    }

    /// Count one shed request.
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one failed reload (the old model keeps serving).
    pub fn record_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one completed reload and stamp its wall-clock time.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
        let unix = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.last_reload_unix.store(unix, Ordering::Relaxed);
    }

    /// Append the serving families as Prometheus text exposition. The
    /// daemon's `/metrics` handler appends model-registry families and
    /// any mounted trainer registry after this.
    pub fn render_prometheus(&self, out: &mut String) {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        let mut text = PromText::wrap(out);
        text.header(
            "srclda_serve_requests_total",
            "HTTP requests received, including unroutable ones.",
            "counter",
        );
        text.sample("srclda_serve_requests_total", &[], load(&self.requests));
        text.header(
            "srclda_serve_responses_total",
            "HTTP responses by status class.",
            "counter",
        );
        for (class, counter) in [
            ("ok", &self.responses_ok),
            ("client_error", &self.responses_client_error),
            ("server_error", &self.responses_server_error),
        ] {
            text.sample(
                "srclda_serve_responses_total",
                &[("class", class)],
                load(counter),
            );
        }
        text.header(
            "srclda_serve_active_connections",
            "Connections currently being serviced.",
            "gauge",
        );
        text.sample(
            "srclda_serve_active_connections",
            &[],
            load(&self.active_connections),
        );
        text.header(
            "srclda_serve_infer_inflight",
            "/infer requests currently inside the handler.",
            "gauge",
        );
        text.sample(
            "srclda_serve_infer_inflight",
            &[],
            load(&self.infer_inflight),
        );
        text.header(
            "srclda_serve_shed_total",
            "/infer requests shed with 503 + Retry-After by admission control.",
            "counter",
        );
        text.sample("srclda_serve_shed_total", &[], load(&self.shed_total));
        text.header(
            "srclda_serve_reloads_total",
            "Completed /reload operations.",
            "counter",
        );
        text.sample("srclda_serve_reloads_total", &[], load(&self.reloads));
        text.header(
            "srclda_serve_reload_failures_total",
            "Failed /reload operations (the old model kept serving).",
            "counter",
        );
        text.sample(
            "srclda_serve_reload_failures_total",
            &[],
            load(&self.reload_failures),
        );
        text.header(
            "srclda_serve_last_reload_timestamp_seconds",
            "Unix time of the last completed reload (0 before the first).",
            "gauge",
        );
        text.sample(
            "srclda_serve_last_reload_timestamp_seconds",
            &[],
            load(&self.last_reload_unix),
        );
        text.header(
            "srclda_serve_infer_docs_total",
            "Documents scored through /infer.",
            "counter",
        );
        text.sample("srclda_serve_infer_docs_total", &[], load(&self.infer_docs));
        text.header(
            "srclda_serve_infer_tokens_total",
            "In-vocabulary tokens folded in through /infer.",
            "counter",
        );
        text.sample(
            "srclda_serve_infer_tokens_total",
            &[],
            load(&self.infer_tokens),
        );
        text.header(
            "srclda_serve_infer_compute_seconds_total",
            "Seconds spent inside inference, excluding socket I/O.",
            "counter",
        );
        text.sample(
            "srclda_serve_infer_compute_seconds_total",
            &[],
            load(&self.infer_nanos) / 1e9,
        );
        text.histogram(
            "srclda_serve_infer_latency_seconds",
            "End-to-end /infer handler latency.",
            &[],
            &self.infer_latency.prometheus_buckets(),
            self.infer_latency.sum_secs(),
            self.infer_latency.count(),
        );
        let models = self.model_snapshot();
        if !models.is_empty() {
            text.header(
                "srclda_serve_model_requests_total",
                "/infer requests by model.",
                "counter",
            );
            for (name, stats) in &models {
                text.sample(
                    "srclda_serve_model_requests_total",
                    &[("model", name)],
                    load(&stats.requests),
                );
            }
            text.header(
                "srclda_serve_model_active_requests",
                "Requests currently in the handler, by model.",
                "gauge",
            );
            for (name, stats) in &models {
                text.sample(
                    "srclda_serve_model_active_requests",
                    &[("model", name)],
                    load(&stats.active),
                );
            }
            text.header(
                "srclda_serve_model_infer_compute_seconds_total",
                "Inference-compute seconds by model.",
                "counter",
            );
            for (name, stats) in &models {
                text.sample(
                    "srclda_serve_model_infer_compute_seconds_total",
                    &[("model", name)],
                    load(&stats.infer_nanos) / 1e9,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_secs(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_observations() {
        let h = LatencyHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket estimates over-report by at most one ~7% bucket.
        assert!((0.050..0.056).contains(&p50), "p50 = {p50}");
        assert!((0.099..0.111).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        // Exact sum: 1+2+…+100 ms = 5.05 s.
        assert!((h.sum_secs() - 5.05).abs() < 1e-9, "sum = {}", h.sum_secs());
    }

    #[test]
    fn extreme_durations_stay_in_range() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(3600));
        h.record(Duration::ZERO);
        h.record(Duration::MAX);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(0.0).unwrap() > 0.0);
        assert!(h.quantile(1.0).unwrap().is_finite());
    }

    #[test]
    fn zero_duration_lands_in_the_first_bucket() {
        assert_eq!(LatencyHistogram::bucket_for(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_nanos(1)), 0);
        // Exactly the base edge is still bucket 0 (edges are inclusive
        // above).
        assert_eq!(LatencyHistogram::bucket_for(Duration::from_micros(1)), 0);
    }

    #[test]
    fn duration_max_saturates_in_the_last_bucket() {
        assert_eq!(LatencyHistogram::bucket_for(Duration::MAX), BUCKETS - 1);
        let h = LatencyHistogram::default();
        h.record(Duration::MAX);
        h.record(Duration::MAX);
        // The exact-sum accumulator saturates instead of wrapping.
        assert_eq!(h.sum_nanos.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn exact_edge_durations_respect_the_bucket_invariant() {
        // Durations sitting exactly on (or within an ulp of) a bucket
        // edge must satisfy upper_edge(i-1) < d ≤ upper_edge(i); the
        // naive ln/ceil computation violates this for some edges, which
        // is what the fix-up loops repair.
        for i in 1..BUCKETS - 1 {
            let edge_micros = LatencyHistogram::upper_edge_micros(i);
            let d = Duration::from_secs_f64(edge_micros / 1e6);
            let bucket = LatencyHistogram::bucket_for(d);
            let micros = d.as_secs_f64() * 1e6;
            assert!(
                micros <= LatencyHistogram::upper_edge_micros(bucket),
                "edge {i}: micros {micros} above bucket {bucket} edge"
            );
            assert!(
                bucket == 0 || LatencyHistogram::upper_edge_micros(bucket - 1) < micros,
                "edge {i}: micros {micros} not above bucket {} edge",
                bucket - 1
            );
        }
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum_secs() - 0.102).abs() < 1e-9);
        // Both 1 ms observations share a bucket after the merge.
        let p50 = a.quantile(0.5).unwrap();
        assert!((0.001..0.00108).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_increasing() {
        let h = LatencyHistogram::default();
        for ms in [1u64, 5, 20, 100, 1000] {
            h.record(Duration::from_millis(ms));
        }
        let buckets = h.prometheus_buckets();
        assert_eq!(buckets.len(), BUCKETS / PROM_BUCKET_STRIDE);
        let mut last_edge = 0.0;
        let mut last_count = 0u64;
        for &(edge, count) in &buckets {
            assert!(edge > last_edge, "edges must increase");
            assert!(count >= last_count, "counts must be cumulative");
            last_edge = edge;
            last_count = count;
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
    }

    #[test]
    fn render_prometheus_is_valid_exposition() {
        let m = Metrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_status(200);
        m.record_infer(2, 100, Duration::from_millis(10));
        m.record_reload();
        {
            let _conn = m.connection_guard();
            let _guard = m.begin_model_request("wiki");
            m.record_model_infer("wiki", Duration::from_millis(4));
            let mut out = String::new();
            m.render_prometheus(&mut out);
            srclda_obs::validate_exposition(&out).expect("valid exposition");
            assert!(out.contains("srclda_serve_requests_total 3\n"));
            assert!(out.contains("srclda_serve_active_connections 1\n"));
            assert!(out.contains("srclda_serve_reloads_total 1\n"));
            assert!(out.contains("srclda_serve_model_requests_total{model=\"wiki\"} 1\n"));
            assert!(out.contains("srclda_serve_model_active_requests{model=\"wiki\"} 1\n"));
            assert!(out.contains("srclda_serve_infer_latency_seconds_count 1\n"));
            assert!(out.contains("srclda_serve_infer_latency_seconds_bucket"));
        }
        // Guards released both gauges on drop.
        let mut out = String::new();
        m.render_prometheus(&mut out);
        assert!(out.contains("srclda_serve_active_connections 0\n"));
        assert!(out.contains("srclda_serve_model_active_requests{model=\"wiki\"} 0\n"));
        assert!(out.contains("srclda_serve_last_reload_timestamp_seconds"));
    }

    #[test]
    fn inflight_cap_admits_exactly_n_and_guards_release() {
        let m = Metrics::default();
        // Unlimited: always admitted, gauge tracked.
        {
            let a = m.try_begin_infer(None).expect("unlimited admits");
            let _b = m.try_begin_infer(None).expect("unlimited admits");
            assert_eq!(m.infer_inflight.load(Ordering::Relaxed), 2);
            drop(a);
            assert_eq!(m.infer_inflight.load(Ordering::Relaxed), 1);
        }
        assert_eq!(m.infer_inflight.load(Ordering::Relaxed), 0);
        // Cap 1: second concurrent request is refused until the first
        // guard drops.
        let first = m.try_begin_infer(Some(1)).expect("under cap");
        assert!(m.try_begin_infer(Some(1)).is_none());
        drop(first);
        assert!(m.try_begin_infer(Some(1)).is_some());
        // Cap 0 sheds everything — the deterministic CI configuration.
        assert!(m.try_begin_infer(Some(0)).is_none());
        m.record_shed();
        m.record_reload_failure();
        let mut out = String::new();
        m.render_prometheus(&mut out);
        srclda_obs::validate_exposition(&out).expect("valid exposition");
        assert!(out.contains("srclda_serve_shed_total 1\n"));
        assert!(out.contains("srclda_serve_reload_failures_total 1\n"));
        assert!(out.contains("srclda_serve_infer_inflight 0\n"));
    }

    #[test]
    fn metrics_aggregate_infer_calls() {
        let m = Metrics::default();
        m.record_infer(2, 100, Duration::from_millis(10));
        m.record_infer(1, 50, Duration::from_millis(5));
        assert_eq!(m.infer_docs.load(Ordering::Relaxed), 3);
        assert_eq!(m.infer_tokens.load(Ordering::Relaxed), 150);
        let tps = m.tokens_per_sec();
        assert!((tps - 10_000.0).abs() < 1.0, "tokens/sec = {tps}");
        assert_eq!(m.infer_latency.count(), 2);
    }

    #[test]
    fn status_classes_are_counted_separately() {
        let m = Metrics::default();
        m.record_status(200);
        m.record_status(204);
        m.record_status(404);
        m.record_status(500);
        assert_eq!(m.responses_ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_client_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.responses_server_error.load(Ordering::Relaxed), 1);
        assert_eq!(m.tokens_per_sec(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `quantile` must be monotone in `q` and must never under-report
        /// a recorded duration by more than one bucket width: the maximum
        /// recorded value is at most one GROWTH factor above `quantile(1.0)`.
        #[test]
        fn quantile_is_monotone_and_bounds_the_max(
            // Stay below the ~31 s saturation edge of the last bucket;
            // beyond it the estimate is deliberately clamped.
            micros in proptest::collection::vec(1u64..20_000_000, 1..200),
        ) {
            let h = LatencyHistogram::default();
            for &us in &micros {
                h.record(Duration::from_micros(us));
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0.0f64;
            for &q in &qs {
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= prev, "quantile({q}) = {v} < quantile(prev) = {prev}");
                prev = v;
            }
            let max_secs = *micros.iter().max().unwrap() as f64 / 1e6;
            let top = h.quantile(1.0).unwrap();
            // Upper-edge estimates sit within one bucket (GROWTH factor)
            // of the true maximum, on either side.
            prop_assert!(top >= max_secs / GROWTH, "top {top} under-reports max {max_secs}");
            prop_assert!(
                top <= max_secs * GROWTH + 1e-6 / GROWTH,
                "top {top} over-reports max {max_secs}"
            );
        }

        /// The fix-up loops in `bucket_for` guarantee the invariant
        /// `upper_edge(i-1) < d ≤ upper_edge(i)` for every duration, not
        /// just bucket edges.
        #[test]
        fn bucket_for_invariant_holds_everywhere(us in 1u64..40_000_000) {
            let d = Duration::from_micros(us);
            let i = LatencyHistogram::bucket_for(d);
            let micros = d.as_secs_f64() * 1e6;
            if i < BUCKETS - 1 {
                prop_assert!(micros <= LatencyHistogram::upper_edge_micros(i));
            }
            if i > 0 {
                prop_assert!(micros > LatencyHistogram::upper_edge_micros(i - 1));
            }
        }
    }
}
