//! Low-level little-endian byte codec for the model-artifact format.
//!
//! Hand-rolled on purpose: the build environment has no registry access, so
//! no serde. The primitives are deliberately boring — fixed-width
//! little-endian integers, IEEE-754 bit patterns for floats, and
//! length-prefixed UTF-8 for strings — so the format is implementable from
//! the README description alone.
//!
//! Every length read from the wire is bounds-checked against the bytes that
//! remain *before* allocating, so a corrupt length field produces a clean
//! [`ServeError`] instead of an out-of-memory abort.

use crate::error::ServeError;

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// One byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Bool as one byte (0 or 1).
    pub fn bool(&mut self, x: bool) {
        self.u8(u8::from(x));
    }

    /// Little-endian u32.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// IEEE-754 f64 bit pattern, little-endian (bit-exact round trip).
    pub fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Length-prefixed (u64) UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Length-prefixed (u64) slice of f64.
    pub fn f64_slice(&mut self, xs: &[f64]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.f64(x);
        }
    }

    /// Length-prefixed (u64) slice of u32.
    pub fn u32_slice(&mut self, xs: &[u32]) {
        self.u64(xs.len() as u64);
        for &x in xs {
            self.u32(x);
        }
    }
}

/// Bounds-checked little-endian byte reader over a slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string reported by truncation errors.
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// Read from `buf`; `context` names what is being decoded in errors.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless every byte was consumed (sections must parse exactly).
    pub fn expect_empty(&self) -> Result<(), ServeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ServeError::Corrupt(format!(
                "{} has {} trailing bytes",
                self.context,
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        match self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
        {
            Some(out) => {
                self.pos += n;
                Ok(out)
            }
            None => Err(ServeError::Truncated {
                context: self.context,
            }),
        }
    }

    /// Take exactly `N` bytes as a fixed-width array. The copy cannot fail:
    /// `take` hands back exactly `N` bytes or errors.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ServeError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, ServeError> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    /// Bool from one byte; anything but 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, ServeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ServeError::Corrupt(format!(
                "{}: invalid bool byte {other}",
                self.context
            ))),
        }
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// IEEE-754 f64 from its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// A u64 length field, validated against the bytes that remain given
    /// `elem_size` bytes per element — rejects lengths a corrupt file could
    /// use to force a huge allocation.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, ServeError> {
        let n = self.u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if n > max {
            return Err(ServeError::Corrupt(format!(
                "{}: length {n} exceeds the {max} elements that fit in the remaining bytes",
                self.context
            )));
        }
        Ok(n as usize)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ServeError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ServeError::Corrupt(format!("{}: invalid UTF-8 string", self.context)))
    }

    /// Length-prefixed f64 vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, ServeError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Length-prefixed u32 vector.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, ServeError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
}

/// FNV-1a 64-bit hash — the artifact's integrity checksum. Not
/// cryptographic; it guards against truncation and bit rot, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("umpire ⚾");
        w.f64_slice(&[1.5, -2.5]);
        w.u32_slice(&[3, 0, 9]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "umpire ⚾");
        assert_eq!(r.f64_vec().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.u32_vec().unwrap(), vec![3, 0, 9]);
        r.expect_empty().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5], "short");
        assert!(matches!(
            r.u64(),
            Err(ServeError::Truncated { context: "short" })
        ));
    }

    #[test]
    fn absurd_length_fields_are_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "vec");
        assert!(matches!(r.f64_vec(), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        let mut r = Reader::new(&[2], "b");
        assert!(matches!(r.bool(), Err(ServeError::Corrupt(_))));
        let mut w = Writer::new();
        w.u64(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "s");
        assert!(matches!(r.str(), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn expect_empty_flags_trailing_bytes() {
        let r = Reader::new(&[1, 2], "sec");
        assert!(matches!(r.expect_empty(), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
