//! The versioned, checksummed binary model-artifact format.
//!
//! A `.slda` artifact is everything needed to serve a trained model against
//! *raw text* with no access to the training process: the posterior φ, the
//! document–topic prior α, per-topic labels and priors, the vocabulary the
//! word ids index into, and the tokenizer configuration that produced that
//! vocabulary. Layout (all integers little-endian, floats IEEE-754 LE):
//!
//! ```text
//! offset 0   magic            8 bytes  b"SLDAMODL"
//!        8   format version   u32      currently 2 (1 still readable)
//!       12   section count    u32      N
//!       16   section table    N × { id: u32, offset: u64, length: u64 }
//!        …   section payloads (absolute offsets, non-overlapping)
//!  len − 8   checksum         u64      FNV-1a 64 of bytes [0, len − 8)
//! ```
//!
//! | id | section    | contents                                            |
//! |----|------------|-----------------------------------------------------|
//! | 1  | model      | α (f64), topic count `T` (u64), vocab size `V` (u64)|
//! | 2  | phi        | `T·V` f64, row-major by topic                       |
//! | 3  | labels     | `T` × (present: u8, then UTF-8 string)              |
//! | 4  | priors     | `T` × tagged [`RawPrior`]                           |
//! | 5  | vocab      | count (u64), then UTF-8 strings in word-id order    |
//! | 6  | tokenizer  | lowercase u8, min_len u64, stopwords u8, numbers u8 |
//! | 7  | checkpoint | *(optional, v2)* sampler state ([`TrainCheckpoint`])|
//!
//! Version history: **v1** is sections 1–6; **v2** (this build) adds the
//! *optional* checkpoint section carrying mid-training sampler state
//! (sweep index, assignments, counts, RNG streams, shard layout, current
//! priors) so a long Gibbs run can stop and resume bit-identically. A v2
//! reader still loads v1 artifacts unchanged — the committed
//! `tests/fixtures/model_v1.slda` golden file pins that forever — and a v2
//! artifact without a checkpoint differs from v1 only in the version
//! field.
//!
//! Readers ignore unknown section ids (room for additive growth within a
//! version); any change to an *existing* section's meaning requires
//! bumping the format version, which is enforced in CI by the committed
//! golden artifacts that the current code must keep loading.

use crate::codec::{fnv1a64, Reader, Writer};
use crate::error::ServeError;
use srclda_core::persist::{RawIntegrationLayout, RawIntegrationTable, RawPrior, TrainCheckpoint};
use srclda_core::prior::TopicPrior;
use srclda_core::{FittedModel, Inference};
use srclda_corpus::{Tokenizer, Vocabulary};
use srclda_math::DenseMatrix;

/// First eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"SLDAMODL";
/// Format version this build writes. Every version from 1 through this
/// one is readable.
pub const FORMAT_VERSION: u32 = 2;

const SEC_MODEL: u32 = 1;
const SEC_PHI: u32 = 2;
const SEC_LABELS: u32 = 3;
const SEC_PRIORS: u32 = 4;
const SEC_VOCAB: u32 = 5;
const SEC_TOKENIZER: u32 = 6;
const SEC_CHECKPOINT: u32 = 7;

/// Section-table caps: a sane artifact has 6 sections; allow headroom for
/// additive growth but reject tables a corrupt count field could inflate.
const MAX_SECTIONS: u32 = 64;

/// One section-table entry (exposed for `inspect`-style tooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section id (see the module docs table).
    pub id: u32,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
}

impl SectionInfo {
    /// Human-readable name for known ids.
    pub fn name(&self) -> &'static str {
        match self.id {
            SEC_MODEL => "model",
            SEC_PHI => "phi",
            SEC_LABELS => "labels",
            SEC_PRIORS => "priors",
            SEC_VOCAB => "vocab",
            SEC_TOKENIZER => "tokenizer",
            SEC_CHECKPOINT => "checkpoint",
            _ => "unknown",
        }
    }
}

/// A self-contained, serializable trained model — optionally carrying a
/// mid-training [`TrainCheckpoint`] so the run can be resumed.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    alpha: f64,
    phi: DenseMatrix<f64>,
    labels: Vec<Option<String>>,
    priors: Vec<RawPrior>,
    vocab: Vocabulary,
    tokenizer: Tokenizer,
    checkpoint: Option<TrainCheckpoint>,
}

impl ModelArtifact {
    /// Assemble from parts, validating consistency.
    ///
    /// # Errors
    /// Fails if dimensions disagree, α is not positive and finite, φ has
    /// non-finite or negative entries, or any prior fails revalidation.
    pub fn new(
        alpha: f64,
        phi: DenseMatrix<f64>,
        labels: Vec<Option<String>>,
        priors: Vec<RawPrior>,
        vocab: Vocabulary,
        tokenizer: Tokenizer,
    ) -> Result<Self, ServeError> {
        let artifact = Self {
            alpha,
            phi,
            labels,
            priors,
            vocab,
            tokenizer,
            checkpoint: None,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Attach a training checkpoint (validated against the model's
    /// dimensions). The artifact then encodes the optional checkpoint
    /// section and remains fully servable — φ/labels/priors describe the
    /// state at the checkpointed sweep.
    ///
    /// # Errors
    /// Fails if the checkpoint's dimensions or internal consistency
    /// disagree with this model.
    pub fn with_checkpoint(mut self, checkpoint: TrainCheckpoint) -> Result<Self, ServeError> {
        self.checkpoint = Some(checkpoint);
        self.validate()?;
        Ok(self)
    }

    /// The training checkpoint, if this artifact carries one.
    pub fn checkpoint(&self) -> Option<&TrainCheckpoint> {
        self.checkpoint.as_ref()
    }

    /// Build a *servable* artifact directly from a mid-training
    /// checkpoint: φ is computed at the checkpoint's counts
    /// ([`TrainCheckpoint::phi`]), α and the priors are the checkpoint's
    /// own (possibly λ-adapted) training values, and the checkpoint itself
    /// rides along so training can resume from the same file.
    ///
    /// # Errors
    /// Fails if the checkpoint is internally inconsistent or disagrees
    /// with `vocab`/`labels`.
    pub fn from_checkpoint(
        checkpoint: &TrainCheckpoint,
        labels: Vec<Option<String>>,
        vocab: &Vocabulary,
        tokenizer: &Tokenizer,
    ) -> Result<Self, ServeError> {
        let phi = checkpoint.phi()?;
        Self::new(
            checkpoint.alpha,
            phi,
            labels,
            checkpoint.priors.clone(),
            vocab.clone(),
            tokenizer.clone(),
        )?
        .with_checkpoint(checkpoint.clone())
    }

    /// Snapshot a fitted model for persistence. `vocab` and `tokenizer`
    /// must be the ones the training corpus was built with — they are what
    /// lets the serving side preprocess raw text identically.
    ///
    /// # Errors
    /// Fails if `vocab` does not match the model's vocabulary size.
    pub fn from_fitted(
        fitted: &FittedModel,
        vocab: &Vocabulary,
        tokenizer: &Tokenizer,
    ) -> Result<Self, ServeError> {
        Self::new(
            fitted.alpha(),
            fitted.phi().clone(),
            fitted.labels().to_vec(),
            fitted.priors().iter().map(TopicPrior::to_raw).collect(),
            vocab.clone(),
            tokenizer.clone(),
        )
    }

    fn validate(&self) -> Result<(), ServeError> {
        let t = self.phi.rows();
        let v = self.phi.cols();
        if t == 0 || v == 0 {
            return Err(ServeError::Corrupt(format!("empty model: T={t}, V={v}")));
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(ServeError::Corrupt(format!(
                "alpha must be positive and finite, got {}",
                self.alpha
            )));
        }
        if self.labels.len() != t {
            return Err(ServeError::Corrupt(format!(
                "{} labels for {t} topics",
                self.labels.len()
            )));
        }
        if self.priors.len() != t {
            return Err(ServeError::Corrupt(format!(
                "{} priors for {t} topics",
                self.priors.len()
            )));
        }
        if self.vocab.len() != v {
            return Err(ServeError::Corrupt(format!(
                "vocabulary has {} words for V={v}",
                self.vocab.len()
            )));
        }
        if !self
            .phi
            .as_slice()
            .iter()
            .all(|&x| x.is_finite() && x >= 0.0)
        {
            return Err(ServeError::Corrupt(
                "phi has negative or non-finite entries".into(),
            ));
        }
        // Priors must survive semantic revalidation against this vocabulary.
        for (i, raw) in self.priors.iter().enumerate() {
            TopicPrior::from_raw(raw.clone(), v).map_err(|e| {
                ServeError::Corrupt(format!("prior {i} ({}) invalid: {e}", raw.kind()))
            })?;
        }
        if let Some(cp) = &self.checkpoint {
            if cp.num_topics() != t || cp.vocab_size() != v {
                return Err(ServeError::Corrupt(format!(
                    "checkpoint is {}×{} for a {t}×{v} model",
                    cp.num_topics(),
                    cp.vocab_size()
                )));
            }
            if cp.alpha.to_bits() != self.alpha.to_bits() {
                return Err(ServeError::Corrupt(format!(
                    "checkpoint alpha {} disagrees with the model's alpha {}",
                    cp.alpha, self.alpha
                )));
            }
            // The checkpoint's own document lengths are the reference here
            // (the artifact carries no corpus); cross-corpus validation
            // happens again at resume time in `fit_resumable`.
            let doc_lens: Vec<u32> =
                cp.z.iter()
                    .map(|d| {
                        u32::try_from(d.len()).map_err(|_| {
                            ServeError::Corrupt(
                                "checkpoint document longer than u32::MAX tokens".into(),
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            cp.validate(&doc_lens, v, t)
                .map_err(|e| ServeError::Corrupt(format!("checkpoint invalid: {e}")))?;
        }
        Ok(())
    }

    /// The document–topic prior α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The topic–word matrix φ (`T × V`).
    pub fn phi(&self) -> &DenseMatrix<f64> {
        &self.phi
    }

    /// Topic count `T`.
    pub fn num_topics(&self) -> usize {
        self.phi.rows()
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.phi.cols()
    }

    /// Per-topic labels.
    pub fn labels(&self) -> &[Option<String>] {
        &self.labels
    }

    /// Per-topic prior mirrors.
    pub fn priors(&self) -> &[RawPrior] {
        &self.priors
    }

    /// The vocabulary raw text is interned against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The tokenizer configuration used at training time.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Reconstruct the live priors (for workloads that resume training or
    /// need Eq. 3 weights rather than the point estimate φ).
    ///
    /// # Errors
    /// Fails if a prior mirror is inconsistent with the vocabulary.
    pub fn live_priors(&self) -> Result<Vec<TopicPrior>, ServeError> {
        self.priors
            .iter()
            .map(|raw| TopicPrior::from_raw(raw.clone(), self.vocab_size()).map_err(Into::into))
            .collect()
    }

    /// Build the fold-in scoring engine from this artifact.
    ///
    /// # Errors
    /// Propagates `srclda_core` validation failures.
    pub fn inference(&self) -> Result<Inference, ServeError> {
        Inference::from_parts(self.phi.clone(), self.alpha, self.labels.clone()).map_err(Into::into)
    }

    /// The `n` most probable words of topic `t`, as vocabulary strings.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<&str> {
        srclda_math::simplex::top_n_indices(self.phi.row(t), n)
            .into_iter()
            .map(|w| self.vocab.word(srclda_corpus::WordId::new(w)))
            .collect()
    }

    /// Serialize to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let t = self.num_topics();

        let mut model = Writer::new();
        model.f64(self.alpha);
        model.u64(t as u64);
        model.u64(self.vocab_size() as u64);

        let mut phi = Writer::new();
        for &x in self.phi.as_slice() {
            phi.f64(x);
        }

        let mut labels = Writer::new();
        for label in &self.labels {
            match label {
                Some(s) => {
                    labels.bool(true);
                    labels.str(s);
                }
                None => labels.bool(false),
            }
        }

        let mut priors = Writer::new();
        for raw in &self.priors {
            encode_prior(&mut priors, raw);
        }

        let mut vocab = Writer::new();
        vocab.u64(self.vocab.len() as u64);
        for word in self.vocab.words() {
            vocab.str(word);
        }

        let mut tokenizer = Writer::new();
        let (lowercase, min_len, remove_stopwords, keep_numbers) = self.tokenizer.to_parts();
        tokenizer.bool(lowercase);
        tokenizer.u64(min_len as u64);
        tokenizer.bool(remove_stopwords);
        tokenizer.bool(keep_numbers);

        let mut sections: Vec<(u32, Vec<u8>)> = vec![
            (SEC_MODEL, model.into_bytes()),
            (SEC_PHI, phi.into_bytes()),
            (SEC_LABELS, labels.into_bytes()),
            (SEC_PRIORS, priors.into_bytes()),
            (SEC_VOCAB, vocab.into_bytes()),
            (SEC_TOKENIZER, tokenizer.into_bytes()),
        ];
        if let Some(cp) = &self.checkpoint {
            let mut w = Writer::new();
            encode_checkpoint(&mut w, cp);
            sections.push((SEC_CHECKPOINT, w.into_bytes()));
        }

        let table_len = 16 + sections.len() * 20;
        let mut out = Writer::new();
        out.bytes(&MAGIC);
        out.u32(FORMAT_VERSION);
        debug_assert!(sections.len() <= MAX_SECTIONS as usize);
        out.u32(sections.len() as u32); // lint:allow(narrowing-cast): at most MAX_SECTIONS entries, built right above
        let mut offset = table_len as u64;
        for (id, payload) in &sections {
            out.u32(*id);
            out.u64(offset);
            out.u64(payload.len() as u64);
            offset += payload.len() as u64;
        }
        for (_, payload) in &sections {
            out.bytes(payload);
        }
        let mut bytes = out.into_bytes();
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Deserialize and fully validate an artifact.
    ///
    /// # Errors
    /// Every way a file can be wrong maps to a distinct [`ServeError`]:
    /// bad magic, unsupported version, checksum mismatch, truncation,
    /// missing sections, or structurally/semantically corrupt content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let sections = list_sections(bytes)?;
        let payload = |id: u32, name: &'static str| -> Result<&[u8], ServeError> {
            let info = sections
                .iter()
                .find(|s| s.id == id)
                .ok_or(ServeError::MissingSection { name })?;
            section_bytes(bytes, info)
        };

        let mut model = Reader::new(payload(SEC_MODEL, "model")?, "model section");
        let alpha = model.f64()?;
        let t = model.u64()? as usize;
        let v = model.u64()? as usize;
        model.expect_empty()?;
        if t == 0 || v == 0 {
            return Err(ServeError::Corrupt(format!("empty model: T={t}, V={v}")));
        }

        let phi_bytes = payload(SEC_PHI, "phi")?;
        let expected = t
            .checked_mul(v)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| ServeError::Corrupt(format!("phi dimensions overflow: {t}×{v}")))?;
        if phi_bytes.len() != expected {
            return Err(ServeError::Corrupt(format!(
                "phi section is {} bytes, expected {expected} for T={t}, V={v}",
                phi_bytes.len()
            )));
        }
        let mut phi_reader = Reader::new(phi_bytes, "phi section");
        let mut phi_data = Vec::with_capacity(t * v);
        for _ in 0..t * v {
            phi_data.push(phi_reader.f64()?);
        }
        let phi = DenseMatrix::from_vec(t, v, phi_data);

        let mut labels_reader = Reader::new(payload(SEC_LABELS, "labels")?, "labels section");
        let labels: Vec<Option<String>> = (0..t)
            .map(|_| {
                Ok(if labels_reader.bool()? {
                    Some(labels_reader.str()?)
                } else {
                    None
                })
            })
            .collect::<Result<_, ServeError>>()?;
        labels_reader.expect_empty()?;

        let mut priors_reader = Reader::new(payload(SEC_PRIORS, "priors")?, "priors section");
        let priors: Vec<RawPrior> = (0..t)
            .map(|_| decode_prior(&mut priors_reader))
            .collect::<Result<_, ServeError>>()?;
        priors_reader.expect_empty()?;

        let mut vocab_reader = Reader::new(payload(SEC_VOCAB, "vocab")?, "vocab section");
        let word_count = vocab_reader.len(1)?;
        if word_count != v {
            return Err(ServeError::Corrupt(format!(
                "vocab section has {word_count} words for V={v}"
            )));
        }
        let mut vocab = Vocabulary::new();
        for _ in 0..word_count {
            vocab.intern(&vocab_reader.str()?);
        }
        vocab_reader.expect_empty()?;
        if vocab.len() != v {
            return Err(ServeError::Corrupt(
                "vocab section contains duplicate words".into(),
            ));
        }

        let mut tok_reader = Reader::new(payload(SEC_TOKENIZER, "tokenizer")?, "tokenizer section");
        let tokenizer = Tokenizer::from_parts(
            tok_reader.bool()?,
            tok_reader.u64()? as usize,
            tok_reader.bool()?,
            tok_reader.bool()?,
        );
        tok_reader.expect_empty()?;

        let artifact = Self::new(alpha, phi, labels, priors, vocab, tokenizer)?;
        // The checkpoint section is optional (v2); absent in every v1
        // artifact and in v2 artifacts of finished runs.
        if let Some(info) = sections.iter().find(|s| s.id == SEC_CHECKPOINT) {
            let mut cp_reader = Reader::new(section_bytes(bytes, info)?, "checkpoint section");
            let cp = decode_checkpoint(&mut cp_reader)?;
            cp_reader.expect_empty()?;
            return artifact.with_checkpoint(cp);
        }
        Ok(artifact)
    }

    /// Write the artifact to `path` **atomically and durably**: the
    /// bytes are staged in a sibling `<name>.tmp` file, fsynced, renamed
    /// over `path`, and the parent directory is fsynced — so a crash at
    /// any byte offset of the write leaves either the complete old file
    /// or the complete new file, never a torn mixture. Callers that
    /// previously assumed in-place-overwrite semantics (and e.g. relied
    /// on a partially written file being observable) get the strictly
    /// stronger guarantee instead; the only visible difference is the
    /// transient `.tmp` sibling, which
    /// [`crate::durable::DurableFile::cleanup_stale_tmp`] reclaims after
    /// a crash.
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        crate::durable::DurableFile::write_atomic(path, &self.to_bytes()).map_err(Into::into)
    }

    /// [`ModelArtifact::save`] with an injected
    /// [`crate::durable::FaultPlan`] — the fault-injection seam the
    /// durability tests drive.
    ///
    /// # Errors
    /// Filesystem failures plus whatever the plan injects.
    pub fn save_with_plan(
        &self,
        path: impl AsRef<std::path::Path>,
        plan: &crate::durable::FaultPlan,
    ) -> Result<(), ServeError> {
        crate::durable::DurableFile::write_atomic_with_plan(path.as_ref(), &self.to_bytes(), plan)
            .map_err(Into::into)
    }

    /// Read and validate an artifact from `path`.
    ///
    /// # Errors
    /// Propagates filesystem failures and every decode error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ServeError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Multi-line human-readable summary (the `inspect` subcommand body).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} topics × {} words · alpha {}\n",
            self.num_topics(),
            self.vocab_size(),
            self.alpha
        ));
        let (lc, ml, rs, kn) = self.tokenizer.to_parts();
        out.push_str(&format!(
            "tokenizer: lowercase={lc} min_len={ml} remove_stopwords={rs} keep_numbers={kn}\n"
        ));
        let labeled = self.labels.iter().filter(|l| l.is_some()).count();
        out.push_str(&format!(
            "labels: {labeled}/{} topics labeled\n",
            self.num_topics()
        ));
        let mut kinds: Vec<(&str, usize)> = Vec::new();
        for raw in &self.priors {
            let kind = raw.kind();
            match kinds.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => kinds.push((kind, 1)),
            }
        }
        let kinds_str: Vec<String> = kinds.iter().map(|(k, n)| format!("{n}×{k}")).collect();
        out.push_str(&format!("priors: {}\n", kinds_str.join(", ")));
        if let Some(cp) = &self.checkpoint {
            out.push_str(&format!(
                "checkpoint: sweep {} · seed {} · {} · resumable\n",
                cp.sweep,
                cp.seed,
                match (cp.shard_count(), cp.kernel_kind()) {
                    (0, Ok(k)) => format!("serial ({k:?} kernel)"),
                    (s, Ok(k)) => format!("{s} shards ({k:?} kernel)"),
                    (0, Err(_)) => "serial (unknown kernel)".to_string(),
                    (s, Err(_)) => format!("{s} shards (unknown kernel)"),
                }
            ));
        }
        out
    }
}

/// Encode a [`TrainCheckpoint`] (the v2 optional section payload):
/// scalars, RNG states, assignments, counts, then the current priors.
fn encode_checkpoint(w: &mut Writer, cp: &TrainCheckpoint) {
    w.u64(cp.sweep);
    w.u64(cp.seed);
    w.f64(cp.alpha);
    w.u64(cp.shards);
    for &word in &cp.main_rng {
        w.u64(word);
    }
    w.u64(cp.shard_rngs.len() as u64);
    for state in &cp.shard_rngs {
        for &word in state {
            w.u64(word);
        }
    }
    w.u64(cp.z.len() as u64);
    for doc in &cp.z {
        w.u32_slice(doc);
    }
    w.u32_slice(&cp.nw);
    w.u32_slice(&cp.nt);
    w.u64(cp.priors.len() as u64);
    for raw in &cp.priors {
        encode_prior(w, raw);
    }
}

fn decode_checkpoint(r: &mut Reader<'_>) -> Result<TrainCheckpoint, ServeError> {
    let sweep = r.u64()?;
    let seed = r.u64()?;
    let alpha = r.f64()?;
    let shards = r.u64()?;
    let main_rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let shard_count = r.len(32)?;
    let mut shard_rngs = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shard_rngs.push([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
    }
    let doc_count = r.len(8)?;
    let mut z = Vec::with_capacity(doc_count);
    for _ in 0..doc_count {
        z.push(r.u32_vec()?);
    }
    let nw = r.u32_vec()?;
    let nt = r.u32_vec()?;
    let prior_count = r.len(1)?;
    let priors: Vec<RawPrior> = (0..prior_count)
        .map(|_| decode_prior(r))
        .collect::<Result<_, ServeError>>()?;
    Ok(TrainCheckpoint {
        sweep,
        seed,
        alpha,
        shards,
        z,
        nw,
        nt,
        main_rng,
        shard_rngs,
        priors,
    })
}

fn encode_prior(w: &mut Writer, raw: &RawPrior) {
    match raw {
        RawPrior::Symmetric { beta } => {
            w.u8(0);
            w.f64(*beta);
        }
        RawPrior::Fixed { delta } => {
            w.u8(1);
            w.f64_slice(delta);
        }
        RawPrior::Integrated(table) => {
            w.u8(2);
            w.f64_slice(&table.weights);
            w.f64_slice(&table.prior_log_weights);
            w.f64_slice(&table.sums);
            match &table.layout {
                RawIntegrationLayout::Dense { values } => {
                    w.u8(0);
                    w.f64_slice(values);
                }
                RawIntegrationLayout::Sparse {
                    support,
                    values,
                    zero_values,
                } => {
                    w.u8(1);
                    w.u32_slice(support);
                    w.f64_slice(values);
                    w.f64_slice(zero_values);
                }
            }
        }
        RawPrior::Frozen { phi } => {
            w.u8(3);
            w.f64_slice(phi);
        }
        RawPrior::ConceptSet { support, beta } => {
            w.u8(4);
            w.u32_slice(support);
            w.f64(*beta);
        }
    }
}

fn decode_prior(r: &mut Reader<'_>) -> Result<RawPrior, ServeError> {
    match r.u8()? {
        0 => Ok(RawPrior::Symmetric { beta: r.f64()? }),
        1 => Ok(RawPrior::Fixed {
            delta: r.f64_vec()?,
        }),
        2 => {
            let weights = r.f64_vec()?;
            let prior_log_weights = r.f64_vec()?;
            let sums = r.f64_vec()?;
            let layout = match r.u8()? {
                0 => RawIntegrationLayout::Dense {
                    values: r.f64_vec()?,
                },
                1 => RawIntegrationLayout::Sparse {
                    support: r.u32_vec()?,
                    values: r.f64_vec()?,
                    zero_values: r.f64_vec()?,
                },
                tag => {
                    return Err(ServeError::Corrupt(format!(
                        "unknown integration layout tag {tag}"
                    )))
                }
            };
            Ok(RawPrior::Integrated(RawIntegrationTable {
                weights,
                prior_log_weights,
                sums,
                layout,
            }))
        }
        3 => Ok(RawPrior::Frozen { phi: r.f64_vec()? }),
        4 => Ok(RawPrior::ConceptSet {
            support: r.u32_vec()?,
            beta: r.f64()?,
        }),
        tag => Err(ServeError::Corrupt(format!("unknown prior tag {tag}"))),
    }
}

/// The payload slice a section table entry points at. [`list_sections`]
/// already validated the bounds, but the decode path never indexes on
/// trust: a bad entry comes back as [`ServeError::Corrupt`], not a panic.
fn section_bytes<'a>(bytes: &'a [u8], info: &SectionInfo) -> Result<&'a [u8], ServeError> {
    let start = usize::try_from(info.offset).ok();
    let end = info
        .offset
        .checked_add(info.length)
        .and_then(|e| usize::try_from(e).ok());
    start
        .zip(end)
        .and_then(|(s, e)| bytes.get(s..e))
        .ok_or_else(|| {
            ServeError::Corrupt(format!(
                "section {} spans [{}, +{}) outside the artifact",
                info.id, info.offset, info.length
            ))
        })
}

/// Parse and verify the envelope (magic, version, checksum, section table)
/// without decoding payloads. This is what `inspect` prints and what
/// [`ModelArtifact::from_bytes`] builds on.
///
/// # Errors
/// Fails on a bad magic, unsupported version, checksum mismatch, or a
/// structurally invalid section table.
pub fn list_sections(bytes: &[u8]) -> Result<Vec<SectionInfo>, ServeError> {
    if bytes.get(..8) != Some(MAGIC.as_slice()) {
        return Err(ServeError::BadMagic {
            found: bytes.iter().copied().take(8).collect(),
        });
    }
    let mut header = Reader::new(bytes.get(8..).unwrap_or(&[]), "header");
    let version = header.u32()?;
    if version == 0 || version > FORMAT_VERSION {
        return Err(ServeError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if bytes.len() < 24 {
        return Err(ServeError::Truncated { context: "trailer" });
    }
    // The trailer is the final 8 bytes; everything before it is the
    // checksummed body (split_at cannot be out of range: len >= 24).
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let mut stored_bytes = [0u8; 8];
    stored_bytes.copy_from_slice(trailer);
    let stored = u64::from_le_bytes(stored_bytes);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(ServeError::ChecksumMismatch { computed, stored });
    }
    let body_len = body.len();
    let count = header.u32()?;
    if count > MAX_SECTIONS {
        return Err(ServeError::Corrupt(format!(
            "section count {count} exceeds the maximum of {MAX_SECTIONS}"
        )));
    }
    let table_end = 16 + count as u64 * 20;
    let mut sections = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = header.u32()?;
        let offset = header.u64()?;
        let length = header.u64()?;
        let end = offset
            .checked_add(length)
            .ok_or_else(|| ServeError::Corrupt("section bounds overflow".into()))?;
        if offset < table_end || end > body_len as u64 {
            return Err(ServeError::Corrupt(format!(
                "section {id} spans [{offset}, {end}) outside payload [{table_end}, {body_len})"
            )));
        }
        if sections.iter().any(|s: &SectionInfo| s.id == id) {
            return Err(ServeError::Corrupt(format!("duplicate section id {id}")));
        }
        sections.push(SectionInfo { id, offset, length });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_core::prelude::*;
    use srclda_corpus::CorpusBuilder;
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn trained() -> (ModelArtifact, FittedModel) {
        let tokenizer = Tokenizer::permissive();
        let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
        for _ in 0..6 {
            b.add_tokens("school", &["pencil", "pencil", "ruler", "eraser"]);
            b.add_tokens("sports", &["baseball", "umpire", "baseball", "glove"]);
        }
        let corpus = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article(
            "School Supplies",
            "pencil pencil ruler ruler eraser ".repeat(20),
        );
        ks.add_article("Baseball", "baseball baseball umpire glove ".repeat(20));
        let source = ks.build(corpus.vocabulary());
        let fitted = SourceLda::builder()
            .knowledge_source(source)
            .variant(Variant::Bijective)
            .alpha(0.5)
            .iterations(60)
            .seed(11)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap();
        let artifact =
            ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap();
        (artifact, fitted)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (artifact, fitted) = trained();
        let bytes = artifact.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.phi().as_slice(), fitted.phi().as_slice());
        assert_eq!(back.alpha(), fitted.alpha());
        assert_eq!(back.labels(), fitted.labels());
        assert_eq!(back.priors(), artifact.priors());
        assert_eq!(back.vocabulary().words(), artifact.vocabulary().words());
        assert_eq!(back.tokenizer().to_parts(), artifact.tokenizer().to_parts());
        // Encoding is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn section_table_is_well_formed() {
        let (artifact, _) = trained();
        let bytes = artifact.to_bytes();
        let sections = list_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 6);
        let names: Vec<&str> = sections.iter().map(SectionInfo::name).collect();
        assert_eq!(
            names,
            vec!["model", "phi", "labels", "priors", "vocab", "tokenizer"]
        );
        // Sections tile the payload contiguously.
        for pair in sections.windows(2) {
            assert_eq!(pair[0].offset + pair[0].length, pair[1].offset);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (artifact, _) = trained();
        let mut bytes = artifact.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ServeError::BadMagic { .. })
        ));
        assert!(matches!(
            ModelArtifact::from_bytes(b"short"),
            Err(ServeError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (artifact, _) = trained();
        let mut bytes = artifact.to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ServeError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let (artifact, _) = trained();
        let mut bytes = artifact.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let (artifact, _) = trained();
        let bytes = artifact.to_bytes();
        // Any strict prefix must fail (checksum, truncation, or magic — but
        // never panic and never succeed).
        for len in [0, 7, 8, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ModelArtifact::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn inference_from_artifact_validates() {
        let (artifact, fitted) = trained();
        let inf = artifact.inference().unwrap();
        assert_eq!(inf.num_topics(), fitted.num_topics());
        assert_eq!(inf.phi().as_slice(), fitted.phi().as_slice());
    }

    #[test]
    fn live_priors_reconstruct() {
        let (artifact, fitted) = trained();
        let priors = artifact.live_priors().unwrap();
        assert_eq!(priors.len(), fitted.num_topics());
        for (a, b) in priors.iter().zip(fitted.priors()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.word_weight(0, 1.0, 4.0), b.word_weight(0, 1.0, 4.0));
        }
    }

    #[test]
    fn top_words_reflect_the_source_articles() {
        let (artifact, _) = trained();
        let school = artifact
            .labels()
            .iter()
            .position(|l| l.as_deref() == Some("School Supplies"))
            .unwrap();
        let tops = artifact.top_words(school, 2);
        assert!(
            tops.contains(&"pencil") || tops.contains(&"ruler"),
            "{tops:?}"
        );
    }

    fn toy_checkpoint(t: usize, v: usize) -> TrainCheckpoint {
        // One doc per topic, one token each, token w = d % v, topic = d.
        let z: Vec<Vec<u32>> = (0..t).map(|d| vec![d as u32]).collect();
        let mut nw = vec![0u32; v * t];
        let mut nt = vec![0u32; t];
        for (d, doc) in z.iter().enumerate() {
            for &topic in doc {
                nw[(d % v) * t + topic as usize] += 1;
                nt[topic as usize] += 1;
            }
        }
        TrainCheckpoint {
            sweep: 17,
            seed: 42,
            alpha: 0.5,
            shards: 2,
            z,
            nw,
            nt,
            main_rng: [9, 8, 7, 6],
            shard_rngs: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            priors: (0..t).map(|_| RawPrior::Symmetric { beta: 0.25 }).collect(),
        }
    }

    #[test]
    fn checkpoint_section_round_trips() {
        let (artifact, _) = trained();
        let t = artifact.num_topics();
        let v = artifact.vocab_size();
        let with_cp = artifact
            .clone()
            .with_checkpoint(toy_checkpoint(t, v))
            .unwrap();
        let bytes = with_cp.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.checkpoint(), with_cp.checkpoint());
        assert_eq!(back.to_bytes(), bytes, "re-encoding is stable");
        let names: Vec<&str> = list_sections(&bytes)
            .unwrap()
            .iter()
            .map(SectionInfo::name)
            .collect();
        assert!(names.contains(&"checkpoint"), "{names:?}");
        assert!(with_cp.summary().contains("checkpoint: sweep 17"));
        assert!(
            with_cp.summary().contains("2 shards (Flat kernel)"),
            "{}",
            with_cp.summary()
        );
        // The kernel tag rides the packed shards word through the codec.
        let mut sparse_cp = toy_checkpoint(t, v);
        sparse_cp.shards = 1 << 56 | 2; // sparse kernel, 2 shards
        let with_sparse = artifact.clone().with_checkpoint(sparse_cp).unwrap();
        let back = ModelArtifact::from_bytes(&with_sparse.to_bytes()).unwrap();
        assert_eq!(back.checkpoint(), with_sparse.checkpoint());
        assert!(
            back.summary().contains("2 shards (Sparse kernel)"),
            "{}",
            back.summary()
        );
        // The plain artifact still encodes without the section.
        assert!(artifact.checkpoint().is_none());
        assert!(!artifact.summary().contains("checkpoint:"));
    }

    #[test]
    fn inconsistent_checkpoint_is_rejected() {
        let (artifact, _) = trained();
        let t = artifact.num_topics();
        let v = artifact.vocab_size();
        // Wrong dimensions.
        assert!(artifact
            .clone()
            .with_checkpoint(toy_checkpoint(t + 1, v))
            .is_err());
        // Shard/RNG disagreement.
        let mut cp = toy_checkpoint(t, v);
        cp.shards = 5;
        assert!(artifact.clone().with_checkpoint(cp).is_err());
        // Counts inconsistent with assignments.
        let mut cp = toy_checkpoint(t, v);
        cp.nt[0] += 1;
        assert!(artifact.clone().with_checkpoint(cp).is_err());
    }

    #[test]
    fn artifact_from_checkpoint_is_servable_and_resumable() {
        let (artifact, _) = trained();
        let cp = toy_checkpoint(artifact.num_topics(), artifact.vocab_size());
        let snapshot = ModelArtifact::from_checkpoint(
            &cp,
            artifact.labels().to_vec(),
            artifact.vocabulary(),
            artifact.tokenizer(),
        )
        .unwrap();
        assert_eq!(
            snapshot.alpha(),
            cp.alpha,
            "alpha comes from the checkpoint"
        );
        assert_eq!(snapshot.checkpoint(), Some(&cp));
        // φ rows are normalized distributions (servable).
        for t in 0..snapshot.num_topics() {
            let sum: f64 = snapshot.phi().row(t).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {t} sums to {sum}");
        }
        // And it round-trips through bytes.
        let back = ModelArtifact::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(back.checkpoint(), Some(&cp));
        assert!(back.inference().is_ok());
    }

    #[test]
    fn save_load_round_trip_via_filesystem() {
        let (artifact, _) = trained();
        let dir = std::env::temp_dir().join("srclda_serve_test_artifact");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.slda");
        artifact.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.to_bytes(), artifact.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let (artifact, _) = trained();
        let s = artifact.summary();
        assert!(s.contains("2 topics"));
        assert!(s.contains("fixed"), "{s}");
        assert!(s.contains("tokenizer"));
    }

    #[test]
    fn mismatched_vocab_rejected_at_construction() {
        let (artifact, fitted) = trained();
        let tiny = Vocabulary::from_words(["just", "two"]);
        assert!(matches!(
            ModelArtifact::from_fitted(&fitted, &tiny, artifact.tokenizer()),
            Err(ServeError::Corrupt(_))
        ));
    }
}
