//! Model persistence and online inference for the Source-LDA reproduction.
//!
//! The paper's workflow is train-once, use-forever: a Source-LDA model is
//! fitted against a knowledge source (Wikipedia, MeSH) and then applied to
//! streams of unseen documents — the held-out estimation of §III.C.5a and
//! the Bio-LDA-style discovery workloads built on top of it. This crate is
//! that missing serving layer:
//!
//! * [`artifact`] — a versioned, checksummed binary format
//!   ([`ModelArtifact`]) that round-trips a fitted model's φ/α/labels/priors
//!   together with the vocabulary and tokenizer configuration needed to
//!   process raw text (hand-rolled little-endian codec in [`codec`]; no
//!   external serialization dependency);
//! * [`engine`] — [`InferenceEngine`]: load an artifact, accept raw text,
//!   fold it into the frozen model (fixed-φ Gibbs, via
//!   [`srclda_core::inference`]), and return θ, top labeled topics, and
//!   perplexity — with an LRU cache ([`lru`]) for repeated documents and a
//!   multi-worker batch path for concurrent request streams;
//! * [`server`] — the `srclda-served` network daemon: a hand-rolled
//!   HTTP/1.1 server over `std::net::TcpListener` with a fixed worker
//!   pool, a multi-model [`ModelRegistry`] with atomic `Arc` hot-swap
//!   reload, JSON request/response bodies whose floats round-trip θ
//!   bit-exactly, `/healthz` + `/metrics` endpoints, and graceful
//!   shutdown;
//! * [`durable`] / [`checkpoints`] / [`retry`] — the resilience layer:
//!   atomic durable saves ([`DurableFile`]) with a deterministic
//!   fault-injection shim ([`FaultPlan`]), rotating checksummed
//!   checkpoint generations with newest-good-generation recovery
//!   ([`CheckpointStore::resume_auto`]), and a shared
//!   backoff-with-jitter client ([`RetryClient`]) that honors the
//!   daemon's 503 + `Retry-After` shed responses;
//! * `srclda-infer` — a CLI binary with `save` / `inspect` / `infer`
//!   subcommands over the same API (and `srclda-served` to run the
//!   daemon).
//!
//! Everything is deterministic: fold-in seeds derive from document content,
//! so a response is a pure function of (artifact bytes, input text,
//! configured seed) — identical across runs, batch orders, and worker
//! counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod checkpoints;
pub mod codec;
pub mod durable;
pub mod engine;
pub mod error;
pub mod lru;
pub mod retry;
pub mod server;

pub use artifact::{list_sections, ModelArtifact, SectionInfo, FORMAT_VERSION, MAGIC};
pub use checkpoints::{CheckpointStore, RecoveredGeneration, Recovery};
pub use durable::{DurableFile, FaultKind, FaultPlan, FaultStream};
pub use engine::{CacheStats, DocumentScore, EngineOptions, InferenceEngine};
pub use error::ServeError;
pub use lru::LruCache;
pub use retry::{RetryClient, RetryPolicy};
pub use server::registry::{ModelEntry, ModelRegistry};
pub use server::{Server, ServerConfig, ServerHandle};

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, ServeError>;
