//! `srclda-served` — the long-lived Source-LDA serving daemon.
//!
//! ```text
//! srclda-served --model wiki=model.slda --addr 127.0.0.1:7878 --workers 4
//! curl -X POST http://127.0.0.1:7878/infer -d '{"model":"wiki","text":"..."}'
//! ```
//!
//! Holds one or more `.slda` artifacts resident behind an HTTP/1.1
//! endpoint (see `srclda_serve::server`), and shuts down gracefully on
//! SIGTERM or ctrl-c: in-flight requests finish, their responses carry
//! `Connection: close`, and the process exits 0.

use srclda_core::FoldInConfig;
use srclda_serve::{EngineOptions, ModelRegistry, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "\
usage: srclda-served --model [name=]<artifact.slda> [options]

options:
  --model <[name=]path>  load an artifact, optionally under an explicit
                         name (default: the file stem); repeatable — the
                         first model is the default for /infer requests
                         that do not name one
  --addr <host:port>     bind address               (default: 127.0.0.1:7878)
  --workers <n>          connection worker threads  (default: cpu count)
  --batch-workers <n>    threads per batch /infer   (default: 1)
  --cache <n>            LRU entries per model      (default: 1024; 0 off)
  --iterations <n>       fold-in sweeps             (default: 30)
  --seed <n>             base fold-in seed          (default: 0)
  --max-inflight <n>     shed /infer beyond n concurrent handlers with
                         503 + Retry-After          (default: unlimited;
                         0 sheds every /infer)
  --shed-p99-ms <n>      shed /infer while the served p99 latency
                         exceeds n milliseconds     (default: off)
  --retry-after <secs>   Retry-After value on shed responses (default: 1)
  --help, -h             print this message and exit

endpoints:
  GET  /healthz          liveness + loaded model names
  GET  /metrics          request counters, cache stats, tokens/sec, p50/p99
  POST /infer            {\"text\": \"...\"} or {\"docs\": [...]}; optional
                         \"model\" and \"top\"
  POST /reload           hot-swap artifacts from disk ({\"model\": name}
                         for one, empty body for all)";

/// Flags that consume a value (in either `--flag value` or `--flag=value`
/// form). Everything else starting with `--` is rejected.
const VALUE_FLAGS: &[&str] = &[
    "--model",
    "--addr",
    "--workers",
    "--batch-workers",
    "--cache",
    "--iterations",
    "--seed",
    "--max-inflight",
    "--shed-p99-ms",
    "--retry-after",
];

/// Set by the signal handler; polled by the monitor thread. A signal
/// handler may only touch async-signal-safe state, and a static atomic
/// store is exactly that.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Register `on_signal` for SIGINT (ctrl-c) and SIGTERM via libc's
/// `signal(2)`. The workspace vendors no signal-handling crate and `std`
/// exposes none, so this is the one place the serving stack talks to the
/// platform directly; the handler itself only stores to a static atomic.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn exit_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// True iff `--help`/`-h` appears *as a flag* — a value consumed by a
/// value-taking option (`--addr --help` is a bad value, not a help
/// request) must not trigger usage, matching `srclda-infer`.
fn wants_help(args: &[String]) -> bool {
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg == "--help" || arg == "-h" {
            return true;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        }
    }
    false
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if wants_help(&args) {
        println!("{USAGE}");
        return;
    }

    // Strict parse: collect (flag, value) pairs, rejecting unknown flags
    // and bare positionals (exit 2, like every experiment binary).
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some((flag, value)) = arg.split_once('=') {
            if !VALUE_FLAGS.contains(&flag) {
                exit_usage(&format!("unknown option {flag:?}"));
            }
            pairs.push((flag.to_string(), value.to_string()));
        } else if VALUE_FLAGS.contains(&arg.as_str()) {
            let Some(value) = args.get(i + 1) else {
                exit_usage(&format!("option {arg} requires a value"));
            };
            pairs.push((arg.clone(), value.clone()));
            i += 1;
        } else if arg.starts_with('-') {
            exit_usage(&format!("unknown option {arg:?}"));
        } else {
            exit_usage(&format!("unexpected argument {arg:?}"));
        }
        i += 1;
    }

    let single = |flag: &str| -> Option<&str> {
        pairs
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    };
    let parsed = |flag: &str, default: usize| -> usize {
        match single(flag) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| exit_usage(&format!("invalid value {raw:?} for {flag}"))),
        }
    };

    let models: Vec<(String, String)> = pairs
        .iter()
        .filter(|(f, _)| f == "--model")
        .map(|(_, spec)| match spec.split_once('=') {
            Some((name, path)) => (name.to_string(), path.to_string()),
            None => {
                let stem = std::path::Path::new(spec)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| spec.clone());
                (stem, spec.clone())
            }
        })
        .collect();
    if models.is_empty() {
        exit_usage("at least one --model is required");
    }
    // Two paths sharing a file stem would otherwise silently hot-swap
    // each other at startup and serve only the last one.
    for (i, (name, _)) in models.iter().enumerate() {
        if models[..i].iter().any(|(seen, _)| seen == name) {
            exit_usage(&format!(
                "duplicate model name {name:?}; use --model name=path to disambiguate"
            ));
        }
    }

    let seed: u64 = match single("--seed") {
        None => 0,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("invalid value {raw:?} for --seed"))),
    };
    let options = EngineOptions {
        fold_in: FoldInConfig {
            iterations: parsed("--iterations", 30),
            seed,
        },
        cache_capacity: parsed("--cache", 1024),
    };
    let max_inflight: Option<usize> = single("--max-inflight").map(|raw| {
        raw.parse()
            .unwrap_or_else(|_| exit_usage(&format!("invalid value {raw:?} for --max-inflight")))
    });
    let shed_p99: Option<Duration> = single("--shed-p99-ms").map(|raw| {
        let ms: u64 = raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("invalid value {raw:?} for --shed-p99-ms")));
        Duration::from_millis(ms)
    });
    let retry_after_secs: u64 = match single("--retry-after") {
        None => 1,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("invalid value {raw:?} for --retry-after"))),
    };
    let config = ServerConfig {
        addr: single("--addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: parsed(
            "--workers",
            std::thread::available_parallelism().map_or(2, |n| n.get()),
        )
        .max(1),
        batch_workers: parsed("--batch-workers", 1).max(1),
        max_inflight,
        shed_p99,
        retry_after_secs,
        ..ServerConfig::default()
    };

    let registry = std::sync::Arc::new(ModelRegistry::new(options));
    for (name, path) in &models {
        if let Err(e) = registry.load(name, path) {
            eprintln!("error: cannot load model {name:?} from {path}: {e}");
            std::process::exit(1);
        }
        let entry = registry.get(name).expect("just loaded");
        eprintln!(
            "loaded {name:?} from {path}: {} topics",
            entry.engine.num_topics()
        );
    }

    let server = match Server::bind(config.clone(), registry) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let handle = server.handle().expect("bound socket has an address");
    eprintln!(
        "srclda-served listening on http://{} ({} workers, {} batch workers)",
        handle.addr(),
        config.workers,
        config.batch_workers
    );

    install_signal_handlers();
    let monitor = {
        let handle = handle.clone();
        std::thread::spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                eprintln!("srclda-served: shutdown signal received, draining");
                handle.shutdown();
                return;
            }
            if handle.is_shutdown() {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        })
    };

    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
    handle.shutdown(); // unblock the monitor if no signal ever arrived
    let _ = monitor.join();
    eprintln!("srclda-served: stopped");
}
