//! `srclda-infer` — train-and-save, inspect, and serve Source-LDA model
//! artifacts from the command line.
//!
//! ```text
//! srclda-infer save --docs corpus.txt --source articles.txt --out model.slda
//! srclda-infer inspect model.slda
//! srclda-infer infer model.slda --batch held_out.txt --workers 4
//! ```

use srclda_core::prelude::*;
use srclda_corpus::{CorpusBuilder, Tokenizer};
use srclda_knowledge::KnowledgeSourceBuilder;
use srclda_serve::{list_sections, EngineOptions, InferenceEngine, ModelArtifact};

const USAGE: &str = "\
usage: srclda-infer <command> [options]

commands:
  save      train a Source-LDA model and write a model artifact
  inspect   print an artifact's header, section table, and model summary
  infer     fold raw documents into a saved model

save options:
  --docs <file>        training corpus, one document per line
                       (\"name<TAB>text\" or bare text)
  --source <file>      knowledge source, one \"Label<TAB>article text\" line
                       per labeled topic
  --out <file>         artifact path to write (conventionally .slda);
                       written atomically (staged + fsync + rename), so
                       a crash never leaves a torn file at this path
  --variant <v>        bijective | mixture | full   (default: bijective)
  --unlabeled <k>      extra unlabeled topics for the mixture variant
                       (default: 10)
  --alpha <x>          document-topic prior          (default: 0.5)
  --iterations <n>     Gibbs sweeps                  (default: 500)
  --seed <n>           RNG seed                      (default: 42)

inspect options:
  srclda-infer inspect <artifact> [--top <k>]
  --top <k>            top words to print per topic  (default: 5; 0 hides)

infer options:
  srclda-infer infer <artifact> (--text \"...\" | --batch <file>)
  --batch <file>       documents to score, one per line
  --text <string>      score a single inline document instead
  --workers <n>        worker threads for --batch    (default: 1)
  --iterations <n>     fold-in sweeps                (default: 30)
  --seed <n>           base fold-in seed             (default: 0)
  --top <k>            topics to report per document (default: 3)

Every command accepts --help / -h.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if wants_help(&args) {
        println!("{USAGE}");
        return;
    }
    let result = match args[0].as_str() {
        "save" => cmd_save(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "infer" => cmd_infer(&args[1..]),
        other => usage_error(&format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Options that consume the following argument as their value. Their
/// values must not be mistaken for flags (`--text "-h"` scores the literal
/// string `-h`; it does not request help).
const VALUE_FLAGS: &[&str] = &[
    "--docs",
    "--source",
    "--out",
    "--variant",
    "--unlabeled",
    "--alpha",
    "--iterations",
    "--seed",
    "--top",
    "--workers",
    "--text",
    "--batch",
];

fn wants_help(args: &[String]) -> bool {
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg == "--help" || arg == "-h" {
            return true;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_value = true;
        }
    }
    false
}

fn usage_error(msg: &str) -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Strict argument validation, run before each subcommand touches its
/// flags: every `-`-prefixed token must be a known option for that
/// subcommand (in either `--flag value` or `--flag=value` form, matching
/// the experiment binaries), space-form options must actually have a
/// value, and at most `positionals` bare arguments are accepted. Unknown
/// or misplaced arguments exit 2 — a typo like `--batchh` must not
/// silently run with defaults.
fn validate_args(
    args: &[String],
    allowed: &[&str],
    positionals: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut seen_positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with('-') {
            let flag = arg.split('=').next().unwrap_or(arg);
            if !allowed.contains(&flag) {
                return usage_error(&format!("unknown option {flag:?}"));
            }
            if !arg.contains('=') {
                if args.get(i + 1).is_none() {
                    return usage_error(&format!("option {flag} requires a value"));
                }
                i += 1; // the next token is this option's value, not a flag
            }
        } else {
            seen_positionals += 1;
            if seen_positionals > positionals {
                return usage_error(&format!("unexpected argument {arg:?}"));
            }
        }
        i += 1;
    }
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            return args.get(i + 1).map(String::as_str);
        }
        if let Some(rest) = arg.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v);
            }
        }
    }
    None
}

fn required<'a>(args: &'a [String], flag: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    flag_value(args, flag).ok_or_else(|| format!("missing required option {flag}").into())
}

fn parsed<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value {raw:?} for {flag}").into()),
    }
}

/// Split an input line into `(name, text)` on the first tab, synthesizing
/// `doc-<i>` names for bare-text lines.
fn name_and_text(line: &str, i: usize) -> (String, String) {
    match line.split_once('\t') {
        Some((name, text)) => (name.to_string(), text.to_string()),
        None => (format!("doc-{i}"), line.to_string()),
    }
}

fn non_empty_lines(path: &str) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    Ok(std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect())
}

fn cmd_save(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_args(
        args,
        &[
            "--docs",
            "--source",
            "--out",
            "--variant",
            "--unlabeled",
            "--alpha",
            "--iterations",
            "--seed",
        ],
        0,
    )?;
    let docs_path = required(args, "--docs")?;
    let source_path = required(args, "--source")?;
    let out_path = required(args, "--out")?;
    let alpha: f64 = parsed(args, "--alpha", 0.5)?;
    let iterations: usize = parsed(args, "--iterations", 500)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let unlabeled: usize = parsed(args, "--unlabeled", 10)?;
    let variant = match flag_value(args, "--variant").unwrap_or("bijective") {
        "bijective" => Variant::Bijective,
        "mixture" => Variant::Mixture,
        "full" => Variant::Full,
        other => return usage_error(&format!("unknown --variant {other:?}")),
    };

    let tokenizer = Tokenizer::default();
    let mut builder = CorpusBuilder::new().tokenizer(tokenizer.clone());
    for (i, line) in non_empty_lines(docs_path)?.iter().enumerate() {
        let (name, text) = name_and_text(line, i);
        builder.add_text(name, &text);
    }
    if builder.is_empty() {
        return Err(format!("{docs_path} contains no documents").into());
    }
    let corpus = builder.build();

    let mut ks = KnowledgeSourceBuilder::new();
    for (i, line) in non_empty_lines(source_path)?.iter().enumerate() {
        let Some((label, text)) = line.split_once('\t') else {
            return Err(format!(
                "{source_path}:{}: expected \"Label<TAB>article text\"",
                i + 1
            )
            .into());
        };
        ks.add_article(label, text);
    }
    let source = ks.build(corpus.vocabulary());
    eprintln!(
        "training: {} docs, {} tokens, vocabulary {}, {} source topics, variant {variant:?}",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size(),
        source.len(),
    );

    let mut model = SourceLda::builder()
        .knowledge_source(source)
        .variant(variant)
        .alpha(alpha)
        .iterations(iterations)
        .seed(seed);
    if matches!(variant, Variant::Mixture) {
        model = model.unlabeled_topics(unlabeled);
    }
    let fitted = model.build()?.fit(&corpus)?;

    let artifact = ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer)?;
    artifact.save(out_path)?;
    let size = std::fs::metadata(out_path)?.len();
    println!(
        "wrote {out_path}: {size} bytes, {} topics × {} words",
        artifact.num_topics(),
        artifact.vocab_size()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_args(args, &["--top"], 1)?;
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage_error("inspect requires an artifact path");
    };
    let top: usize = parsed(args, "--top", 5)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sections = list_sections(&bytes)?;
    // list_sections validated magic + version, so the field is readable.
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    println!(
        "{path}: {} bytes, format v{version}, checksum ok",
        bytes.len()
    );
    println!("sections:");
    for s in &sections {
        println!(
            "  id {:>2} {:<10} offset {:>8}  {:>10} bytes",
            s.id,
            s.name(),
            s.offset,
            s.length
        );
    }
    let artifact = ModelArtifact::from_bytes(&bytes)?;
    print!("{}", artifact.summary());
    if top > 0 {
        println!("topics:");
        for t in 0..artifact.num_topics() {
            println!(
                "  {:>4} {:<24} {}",
                t,
                artifact.labels()[t].as_deref().unwrap_or("(unlabeled)"),
                artifact.top_words(t, top).join(" ")
            );
        }
    }
    Ok(())
}

fn cmd_infer(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    validate_args(
        args,
        &[
            "--batch",
            "--text",
            "--workers",
            "--iterations",
            "--seed",
            "--top",
        ],
        1,
    )?;
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage_error("infer requires an artifact path");
    };
    let workers: usize = parsed(args, "--workers", 1)?;
    let top: usize = parsed(args, "--top", 3)?;
    let iterations: usize = parsed(args, "--iterations", 30)?;
    let seed: u64 = parsed(args, "--seed", 0)?;

    let artifact = ModelArtifact::load(path)?;
    let engine = InferenceEngine::from_artifact(
        &artifact,
        EngineOptions {
            fold_in: FoldInConfig { iterations, seed },
            ..EngineOptions::default()
        },
    )?;

    let docs: Vec<(String, String)> = if let Some(text) = flag_value(args, "--text") {
        vec![("text".to_string(), text.to_string())]
    } else if let Some(batch) = flag_value(args, "--batch") {
        non_empty_lines(batch)?
            .iter()
            .enumerate()
            .map(|(i, l)| name_and_text(l, i))
            .collect()
    } else {
        return usage_error("infer requires --text or --batch");
    };

    let texts: Vec<&str> = docs.iter().map(|(_, t)| t.as_str()).collect();
    // lint:allow(wall-clock): operator-facing latency report printed by the CLI; never feeds model state
    let start = std::time::Instant::now();
    let scores = if workers > 1 {
        engine.infer_batch_parallel(&texts, workers)?
    } else {
        engine.infer_batch(&texts)?
    };
    let elapsed = start.elapsed();

    for ((name, _), score) in docs.iter().zip(&scores) {
        let tops: Vec<String> = score
            .top_topics(top)
            .into_iter()
            .map(|t| {
                format!(
                    "{}({:.3})",
                    engine.label(t).unwrap_or("(unlabeled)"),
                    score.theta()[t]
                )
            })
            .collect();
        println!(
            "{name}: tokens={} oov={} perplexity={:.2} top: {}",
            score.num_tokens(),
            score.oov_tokens(),
            score.perplexity(),
            tops.join(" ")
        );
    }
    let stats = engine.cache_stats();
    // Tokens/sec alongside docs/sec so serving throughput is directly
    // comparable with the training numbers from `sweep_throughput`.
    let total_tokens: usize = scores.iter().map(|s| s.num_tokens()).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "{} docs ({} tokens) in {:.3}s ({:.1} docs/sec, {:.1} tokens/sec, {} workers, \
         cache {}h/{}m)",
        docs.len(),
        total_tokens,
        elapsed.as_secs_f64(),
        docs.len() as f64 / secs,
        total_tokens as f64 / secs,
        workers.max(1),
        stats.hits,
        stats.misses,
    );
    Ok(())
}
