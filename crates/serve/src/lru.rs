//! A small least-recently-used cache for repeated inference requests.
//!
//! Serving workloads see heavy repetition (retries, near-duplicate posts,
//! trending documents), and fold-in is deterministic for a given token
//! sequence — so identical requests can be answered from cache without any
//! change in observable behavior.
//!
//! Implementation note: entries carry a monotonically increasing access
//! stamp and eviction scans for the minimum. That makes `insert` O(capacity)
//! in the worst case, which is the right trade at serving cache sizes (10²–
//! 10⁴ entries guarding fold-in runs that are ~10⁵ multiplies each): the
//! scan is a contiguous sweep over a flat map, and we avoid the
//! linked-list bookkeeping (and extra per-entry allocation) of a classic
//! O(1) LRU. Revisit if profiles ever show eviction on a hot path.

use srclda_math::FxHashMap;
use std::hash::Hash;

/// An LRU cache with a fixed capacity of at least 1.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create with `capacity` entries (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = tick;
                Some(&*value)
            }
            None => None,
        }
    }

    /// Insert `key → value`, evicting the least-recently-used entry if the
    /// cache is full. Re-inserting an existing key replaces its value.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.is_empty());
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(&10));
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn eviction_respects_access_recency_not_insertion_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 1..=3 {
            c.insert(k, k);
        }
        // Touch 3, then 2, then 1 — making 3 the least recently used.
        assert_eq!(c.get(&3), Some(&3));
        assert_eq!(c.get(&2), Some(&2));
        assert_eq!(c.get(&1), Some(&1));
        c.insert(4, 4);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&1), Some(&1));
    }
}
