//! Rotating checkpoint generations with crash recovery.
//!
//! One checkpoint file is one crash away from zero checkpoint files: a
//! kill during the overwrite (or a bit flip afterwards) used to destroy
//! the only copy. [`CheckpointStore`] keeps the last K *generations* —
//! `base.g000012.slda`, `base.g000018.slda`, … — each written through
//! [`DurableFile::write_atomic`], and recovery
//! ([`CheckpointStore::resume_auto`]) scans newest-first, validating
//! each candidate through the artifact codec's full checksum + decode
//! path, skipping (and counting) torn or bit-flipped files. Combined
//! with the atomic writes, killing the trainer at *any* byte offset of
//! a checkpoint write loses at most one checkpoint interval.

use crate::artifact::ModelArtifact;
use crate::durable::{DurableFile, FaultPlan};
use crate::error::ServeError;
use std::path::{Path, PathBuf};

/// Manages rotating checkpoint generations derived from a base path.
///
/// The base path (`dir/ck.slda`) names the *family*; each generation is
/// written as `dir/ck.g<number>.slda` where the number is the sweep the
/// checkpoint captured (zero-padded so lexical and numeric order
/// agree). Pruning after each save keeps the newest `keep` generations.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: PathBuf,
    keep: usize,
}

/// The newest valid generation found by a recovery scan.
#[derive(Debug)]
pub struct RecoveredGeneration {
    /// The generation number (the sweep it was saved at).
    pub generation: u64,
    /// The file it was loaded from.
    pub path: PathBuf,
    /// The decoded, checksum-validated artifact.
    pub artifact: ModelArtifact,
}

/// Outcome of [`CheckpointStore::resume_auto`].
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid generation, if any generation survived.
    pub recovered: Option<RecoveredGeneration>,
    /// Generation files examined.
    pub scanned: usize,
    /// Files skipped as corrupt (torn, bit-flipped, truncated, or
    /// otherwise failing the artifact codec's validation).
    pub corrupt: usize,
    /// Stale `*.tmp` staging files removed before the scan.
    pub cleaned_tmp: usize,
}

impl Recovery {
    /// Record the recovery outcome into an observability registry:
    /// `srclda_persist_recovered_generation` (gauge; −1 when nothing was
    /// recovered), `srclda_persist_corrupt_generations_total`, and
    /// `srclda_persist_stale_tmp_cleaned_total`.
    pub fn record_metrics(&self, registry: &srclda_obs::Registry) {
        registry
            .gauge(
                "srclda_persist_recovered_generation",
                "Generation number recovered by the last resume-auto scan (-1 when none).",
                &[],
            )
            .set(
                self.recovered
                    .as_ref()
                    .map_or(-1.0, |r| r.generation as f64),
            );
        registry
            .counter(
                "srclda_persist_corrupt_generations_total",
                "Checkpoint generation files skipped as corrupt during recovery scans.",
                &[],
            )
            .add(self.corrupt as u64);
        registry
            .counter(
                "srclda_persist_stale_tmp_cleaned_total",
                "Stale staging (.tmp) files removed at startup.",
                &[],
            )
            .add(self.cleaned_tmp as u64);
    }
}

impl CheckpointStore {
    /// A store rooted at `base` keeping the newest `keep` generations
    /// (clamped to at least 1 — keeping zero checkpoints is a
    /// configuration error, not a feature).
    pub fn new(base: impl AsRef<Path>, keep: usize) -> Self {
        Self {
            base: base.as_ref().to_path_buf(),
            keep: keep.max(1),
        }
    }

    /// The directory generation files live in.
    fn dir(&self) -> PathBuf {
        match self.base.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        }
    }

    /// `<stem>` and `<extension>` of the base path, as strings.
    fn stem_ext(&self) -> (String, String) {
        let stem = self
            .base
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint".to_string());
        let ext = self
            .base
            .extension()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "slda".to_string());
        (stem, ext)
    }

    /// The file path of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        let (stem, ext) = self.stem_ext();
        self.dir().join(format!("{stem}.g{generation:06}.{ext}"))
    }

    /// All existing generations, sorted ascending by number.
    ///
    /// # Errors
    /// Propagates the directory read failure (a missing directory reads
    /// as empty, so a first run needs no setup).
    pub fn list_generations(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let (stem, ext) = self.stem_ext();
        let prefix = format!("{stem}.g");
        let suffix = format!(".{ext}");
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(self.dir()) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(middle) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(&suffix))
            else {
                continue;
            };
            if let Ok(generation) = middle.parse::<u64>() {
                out.push((generation, entry.path()));
            }
        }
        out.sort_by_key(|(generation, _)| *generation);
        Ok(out)
    }

    /// Durably write `artifact` as generation `generation`, then prune
    /// generations beyond the newest `keep`. Returns the written path.
    ///
    /// # Errors
    /// Propagates encode and filesystem failures. Pruning failures are
    /// ignored — an unpruned old generation is clutter, not corruption.
    pub fn save_generation(
        &self,
        generation: u64,
        artifact: &ModelArtifact,
    ) -> Result<PathBuf, ServeError> {
        self.save_generation_with_plan(generation, artifact, &FaultPlan::none())
    }

    /// [`CheckpointStore::save_generation`] with an injected
    /// [`FaultPlan`] — the fault-injection seam for the checkpoint path.
    ///
    /// # Errors
    /// Filesystem failures plus whatever the plan injects.
    pub fn save_generation_with_plan(
        &self,
        generation: u64,
        artifact: &ModelArtifact,
        plan: &FaultPlan,
    ) -> Result<PathBuf, ServeError> {
        let path = self.generation_path(generation);
        DurableFile::write_atomic_with_plan(&path, &artifact.to_bytes(), plan)?;
        if let Ok(generations) = self.list_generations() {
            if generations.len() > self.keep {
                for (old_gen, old_path) in &generations[..generations.len() - self.keep] {
                    // Never delete the generation just written, even if a
                    // caller numbered it below existing ones.
                    if *old_gen != generation {
                        let _ = std::fs::remove_file(old_path);
                    }
                }
            }
        }
        Ok(path)
    }

    /// Clean stale staging files and scan for the newest valid
    /// generation: the `--resume auto` implementation. Candidates are
    /// tried newest-first; each must pass the artifact codec's full
    /// checksum + structural validation, so torn writes, truncations,
    /// and bit flips are skipped (and counted), not resumed from.
    ///
    /// # Errors
    /// Propagates directory-level I/O failures only; per-file decode
    /// failures are the corrupt count, not errors.
    pub fn resume_auto(&self) -> Result<Recovery, ServeError> {
        let cleaned_tmp = match DurableFile::cleanup_stale_tmp(&self.dir()) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let mut generations = self.list_generations()?;
        generations.reverse(); // newest first
        let scanned = generations.len();
        let mut corrupt = 0usize;
        for (generation, path) in generations {
            match ModelArtifact::load(&path) {
                Ok(artifact) => {
                    return Ok(Recovery {
                        recovered: Some(RecoveredGeneration {
                            generation,
                            path,
                            artifact,
                        }),
                        scanned,
                        corrupt,
                        cleaned_tmp,
                    });
                }
                Err(_) => corrupt += 1,
            }
        }
        Ok(Recovery {
            recovered: None,
            scanned,
            corrupt,
            cleaned_tmp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_core::prelude::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};
    use srclda_knowledge::KnowledgeSourceBuilder;

    fn tiny_artifact() -> ModelArtifact {
        let tokenizer = Tokenizer::default().min_len(2);
        let mut b = CorpusBuilder::new().tokenizer(tokenizer.clone());
        b.add_text("school", "pencil pencil ruler eraser");
        b.add_text("sports", "baseball umpire glove");
        let corpus = b.build();
        let mut ks = KnowledgeSourceBuilder::new();
        ks.add_article("School Supplies", "pencil ruler eraser");
        ks.add_article("Baseball", "baseball umpire glove");
        let source = ks.build(corpus.vocabulary());
        let fitted = SourceLda::builder()
            .knowledge_source(source)
            .variant(Variant::Bijective)
            .iterations(10)
            .seed(3)
            .build()
            .unwrap()
            .fit(&corpus)
            .unwrap();
        ModelArtifact::from_fitted(&fitted, corpus.vocabulary(), &tokenizer).unwrap()
    }

    fn temp_store(tag: &str, keep: usize) -> (PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!("srclda-ckstore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("ck.slda"), keep);
        (dir, store)
    }

    #[test]
    fn generations_rotate_keeping_the_newest_k() {
        let (dir, store) = temp_store("rotate", 2);
        let artifact = tiny_artifact();
        for generation in [6u64, 12, 18, 24] {
            store.save_generation(generation, &artifact).unwrap();
        }
        let generations: Vec<u64> = store
            .list_generations()
            .unwrap()
            .into_iter()
            .map(|(generation, _)| generation)
            .collect();
        assert_eq!(generations, [18, 24]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_auto_skips_corrupt_and_lands_on_newest_valid() {
        let (dir, store) = temp_store("recover", 4);
        let artifact = tiny_artifact();
        store.save_generation(6, &artifact).unwrap();
        store.save_generation(12, &artifact).unwrap();
        store.save_generation(18, &artifact).unwrap();
        // Bit-flip generation 18 and truncate a fake generation 24.
        let newest = store.generation_path(18);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        std::fs::write(store.generation_path(24), &bytes[..50]).unwrap();
        // A stale staging file from a "crash".
        std::fs::write(dir.join("ck.g000030.slda.tmp"), b"torn").unwrap();

        let recovery = store.resume_auto().unwrap();
        assert_eq!(recovery.cleaned_tmp, 1);
        assert_eq!(recovery.scanned, 4);
        assert_eq!(recovery.corrupt, 2);
        let recovered = recovery.recovered.expect("generation 12 is intact");
        assert_eq!(recovered.generation, 12);
        assert_eq!(
            recovered.artifact.to_bytes(),
            artifact.to_bytes(),
            "recovered artifact must be bit-identical to what was saved"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_auto_on_empty_or_missing_directory_recovers_nothing() {
        let (dir, store) = temp_store("empty", 3);
        let recovery = store.resume_auto().unwrap();
        assert!(recovery.recovered.is_none());
        assert_eq!((recovery.scanned, recovery.corrupt), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
        // Missing directory entirely: still a clean "nothing to resume".
        let recovery = store.resume_auto().unwrap();
        assert!(recovery.recovered.is_none());
    }

    #[test]
    fn recovery_metrics_render_as_valid_exposition() {
        let (dir, store) = temp_store("metrics", 3);
        let artifact = tiny_artifact();
        store.save_generation(6, &artifact).unwrap();
        let path = store.generation_path(6);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // corrupt the checksum trailer
        std::fs::write(&path, &bytes).unwrap();

        let registry = srclda_obs::Registry::new();
        store.resume_auto().unwrap().record_metrics(&registry);
        let text = registry.render();
        srclda_obs::validate_exposition(&text).expect("valid exposition");
        assert!(
            text.contains("srclda_persist_recovered_generation -1\n"),
            "{text}"
        );
        assert!(
            text.contains("srclda_persist_corrupt_generations_total 1\n"),
            "{text}"
        );

        // A later successful recovery overwrites the gauge.
        store.save_generation(12, &artifact).unwrap();
        store.resume_auto().unwrap().record_metrics(&registry);
        let text = registry.render();
        assert!(
            text.contains("srclda_persist_recovered_generation 12\n"),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
