//! Plain-text report rendering for the experiment binaries.
//!
//! Every figure/table of the paper is regenerated as either a fixed-width
//! [`Table`] (Tables 0–1, Fig. 8 a/b/d/e bars) or a TSV [`Series`]
//! (Figs. 3, 4, 6, 7, 8c, 8f curves) so results diff cleanly in CI.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// A named set of y-series over shared x-values, rendered as TSV.
#[derive(Debug, Clone)]
pub struct Series {
    x_label: String,
    xs: Vec<f64>,
    columns: Vec<(String, Vec<f64>)>,
}

impl Series {
    /// New series over the given x-axis.
    pub fn new(x_label: impl Into<String>, xs: Vec<f64>) -> Self {
        Self {
            x_label: x_label.into(),
            xs,
            columns: Vec::new(),
        }
    }

    /// Add a y-column (padded with NaN if short).
    ///
    /// # Panics
    /// Panics if `ys` is longer than the x-axis.
    pub fn push_column(&mut self, name: impl Into<String>, mut ys: Vec<f64>) {
        assert!(ys.len() <= self.xs.len(), "column longer than x-axis");
        ys.resize(self.xs.len(), f64::NAN);
        self.columns.push((name.into(), ys));
    }

    /// Render as TSV with a header line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for (name, _) in &self.columns {
            out.push('\t');
            out.push_str(name);
        }
        out.push('\n');
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (_, ys) in &self.columns {
                let _ = write!(out, "\t{:.6}", ys[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// A simple horizontal ASCII bar chart (for the Fig. 8 a/b/d/e bar plots).
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
        let _ = writeln!(
            out,
            "{label:<label_w$}  {:<width$}  {value:.4}",
            "#".repeat(bar_len.min(width)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["Technique", "Topic 1", "Topic 2"]);
        t.push_row(["JS Divergence", "Baseball", "Baseball"]);
        t.push_row(["Counting", "Baseball", "Baseball"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Technique"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("JS Divergence"));
        // Columns align: "Baseball" starts at the same offset in both rows.
        let off2 = lines[2].find("Baseball").unwrap();
        let off3 = lines[3].find("Baseball").unwrap();
        assert_eq!(off2, off3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn series_tsv_shape() {
        let mut s = Series::new("lambda", vec![0.0, 0.5, 1.0]);
        s.push_column("classification", vec![10.0, 15.0, 20.0]);
        s.push_column("short", vec![1.0]);
        let text = s.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "lambda\tclassification\tshort");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0\t10.000000"));
        assert!(lines[2].contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "column longer")]
    fn over_long_column_panics() {
        let mut s = Series::new("x", vec![1.0]);
        s.push_column("y", vec![1.0, 2.0]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let entries = vec![("SRC".to_string(), 700.0), ("LDA".to_string(), 350.0)];
        let chart = bar_chart(&entries, 20);
        let lines: Vec<&str> = chart.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 20);
        assert_eq!(hashes(lines[1]), 10);
    }
}
