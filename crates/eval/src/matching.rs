//! Aligning fitted topics with ground-truth topics.
//!
//! Knowledge-grounded models carry labels, so their topics map to the
//! ground truth by label equality. Plain LDA's anonymous topics are mapped
//! by minimal JS divergence between word distributions — "Since the LDA
//! model has unknown topics, JS divergence was used to map each LDA topic
//! to its best matching Wikipedia topic" (§IV.D).

use crate::error::{check_rows_finite, EvalError};
use srclda_math::{js_divergence, DenseMatrix};

/// A (possibly partial) map from fitted topic index → truth topic index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMapping {
    map: Vec<Option<usize>>,
    truth_topics: usize,
}

impl TopicMapping {
    /// Build from an explicit vector.
    pub fn new(map: Vec<Option<usize>>, truth_topics: usize) -> Self {
        Self { map, truth_topics }
    }

    /// Identity mapping (fitted topic `t` ↔ truth topic `t`).
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n).map(Some).collect(),
            truth_topics: n,
        }
    }

    /// Map by label equality: fitted topic `t` maps to the truth topic with
    /// the same label; unlabeled fitted topics map to `None`.
    pub fn by_label(fitted: &[Option<String>], truth: &[Option<String>]) -> Self {
        let map = fitted
            .iter()
            .map(|fl| {
                fl.as_ref()
                    .and_then(|fl| truth.iter().position(|tl| tl.as_ref() == Some(fl)))
            })
            .collect();
        Self {
            map,
            truth_topics: truth.len(),
        }
    }

    /// Map each fitted topic to the truth topic with minimal JS divergence
    /// between word distributions (many-to-one allowed, as in the paper).
    /// Ties break toward the lower truth-topic index (a pinned total
    /// order, so the mapping never depends on comparator call order).
    ///
    /// # Errors
    /// Fails if either φ matrix contains a non-finite entry — a degenerate
    /// row would otherwise make every distance NaN and the resulting
    /// matching arbitrary.
    pub fn by_phi_js(
        fitted_phi: &DenseMatrix<f64>,
        truth_phi: &DenseMatrix<f64>,
    ) -> Result<Self, EvalError> {
        check_rows_finite(
            "fitted phi",
            (0..fitted_phi.rows()).map(|t| fitted_phi.row(t)),
        )?;
        check_rows_finite("truth phi", (0..truth_phi.rows()).map(|t| truth_phi.row(t)))?;
        let mut map = Vec::with_capacity(fitted_phi.rows());
        for t in 0..fitted_phi.rows() {
            let mut best: Option<(usize, f64)> = None;
            for truth in 0..truth_phi.rows() {
                let d =
                    js_divergence(fitted_phi.row(t), truth_phi.row(truth)).unwrap_or(f64::INFINITY);
                if d.is_nan() {
                    return Err(EvalError::NonFiniteDistance {
                        what: "phi JS divergence",
                        row: t,
                    });
                }
                // total_cmp: finite inputs produce no NaN distances (the
                // check above pins that), so this is a plain total order
                // with first-seen (lowest truth index) winning ties.
                if best.is_none_or(|(_, best_d)| d.total_cmp(&best_d).is_lt()) {
                    best = Some((truth, d));
                }
            }
            map.push(best.map(|(truth, _)| truth));
        }
        Ok(Self {
            map,
            truth_topics: truth_phi.rows(),
        })
    }

    /// The truth topic for a fitted topic, if mapped.
    pub fn truth_of(&self, fitted: usize) -> Option<usize> {
        self.map.get(fitted).copied().flatten()
    }

    /// Number of fitted topics covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no fitted topics are covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of ground-truth topics.
    pub fn truth_topics(&self) -> usize {
        self.truth_topics
    }

    /// Project a fitted-space distribution onto truth-topic space by
    /// summing mapped mass (unmapped mass is dropped); the result is
    /// re-normalized when any mass survives.
    pub fn project(&self, fitted_dist: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.truth_topics];
        for (t, &p) in fitted_dist.iter().enumerate() {
            if let Some(truth) = self.truth_of(t) {
                out[truth] += p;
            }
        }
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            out.iter_mut().for_each(|x| *x /= sum);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map() {
        let m = TopicMapping::identity(3);
        assert_eq!(m.truth_of(0), Some(0));
        assert_eq!(m.truth_of(2), Some(2));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn by_label_matches_and_skips() {
        let fitted = vec![None, Some("B".to_string()), Some("X".to_string())];
        let truth = vec![Some("A".to_string()), Some("B".to_string())];
        let m = TopicMapping::by_label(&fitted, &truth);
        assert_eq!(m.truth_of(0), None);
        assert_eq!(m.truth_of(1), Some(1));
        assert_eq!(m.truth_of(2), None, "unknown label unmapped");
    }

    #[test]
    fn by_phi_js_finds_nearest() {
        let fitted = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let truth = DenseMatrix::from_vec(2, 2, vec![0.1, 0.9, 0.95, 0.05]);
        let m = TopicMapping::by_phi_js(&fitted, &truth).unwrap();
        assert_eq!(m.truth_of(0), Some(1));
        assert_eq!(m.truth_of(1), Some(0));
    }

    #[test]
    fn by_phi_js_rejects_non_finite_rows() {
        // A degenerate fitted row (NaN) used to make every distance NaN
        // and the min_by answer comparator-order-dependent; now it is a
        // typed error naming the bad entry.
        let fitted = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, f64::NAN, 0.8]);
        let truth = DenseMatrix::from_vec(1, 2, vec![0.5, 0.5]);
        let err = TopicMapping::by_phi_js(&fitted, &truth).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EvalError::NonFiniteInput {
                what: "fitted phi",
                row: 1,
                index: 0,
                ..
            }
        ));
        // Same for the truth side, and for infinities.
        let fitted_ok = DenseMatrix::from_vec(1, 2, vec![0.5, 0.5]);
        let bad_truth = DenseMatrix::from_vec(1, 2, vec![f64::INFINITY, 0.5]);
        assert!(TopicMapping::by_phi_js(&fitted_ok, &bad_truth).is_err());
    }

    #[test]
    fn by_phi_js_ties_break_to_lowest_truth_index() {
        // Two identical truth topics: the mapping must pin the lower index
        // (a documented total order, not comparator-call-order luck).
        let fitted = DenseMatrix::from_vec(1, 2, vec![0.7, 0.3]);
        let truth = DenseMatrix::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        let m = TopicMapping::by_phi_js(&fitted, &truth).unwrap();
        assert_eq!(m.truth_of(0), Some(0));
    }

    #[test]
    fn project_sums_and_renormalizes() {
        // Two fitted topics both map onto truth topic 0.
        let m = TopicMapping::new(vec![Some(0), Some(0), None], 2);
        let projected = m.project(&[0.3, 0.3, 0.4]);
        assert!((projected[0] - 1.0).abs() < 1e-12);
        assert_eq!(projected[1], 0.0);
    }

    #[test]
    fn project_handles_fully_unmapped() {
        let m = TopicMapping::new(vec![None], 2);
        assert_eq!(m.project(&[1.0]), vec![0.0, 0.0]);
    }
}
