//! Aligning fitted topics with ground-truth topics.
//!
//! Knowledge-grounded models carry labels, so their topics map to the
//! ground truth by label equality. Plain LDA's anonymous topics are mapped
//! by minimal JS divergence between word distributions — "Since the LDA
//! model has unknown topics, JS divergence was used to map each LDA topic
//! to its best matching Wikipedia topic" (§IV.D).

use srclda_math::{js_divergence, DenseMatrix};

/// A (possibly partial) map from fitted topic index → truth topic index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMapping {
    map: Vec<Option<usize>>,
    truth_topics: usize,
}

impl TopicMapping {
    /// Build from an explicit vector.
    pub fn new(map: Vec<Option<usize>>, truth_topics: usize) -> Self {
        Self { map, truth_topics }
    }

    /// Identity mapping (fitted topic `t` ↔ truth topic `t`).
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n).map(Some).collect(),
            truth_topics: n,
        }
    }

    /// Map by label equality: fitted topic `t` maps to the truth topic with
    /// the same label; unlabeled fitted topics map to `None`.
    pub fn by_label(fitted: &[Option<String>], truth: &[Option<String>]) -> Self {
        let map = fitted
            .iter()
            .map(|fl| {
                fl.as_ref()
                    .and_then(|fl| truth.iter().position(|tl| tl.as_ref() == Some(fl)))
            })
            .collect();
        Self {
            map,
            truth_topics: truth.len(),
        }
    }

    /// Map each fitted topic to the truth topic with minimal JS divergence
    /// between word distributions (many-to-one allowed, as in the paper).
    pub fn by_phi_js(fitted_phi: &DenseMatrix<f64>, truth_phi: &DenseMatrix<f64>) -> Self {
        let map = (0..fitted_phi.rows())
            .map(|t| {
                (0..truth_phi.rows()).min_by(|&a, &b| {
                    let da =
                        js_divergence(fitted_phi.row(t), truth_phi.row(a)).unwrap_or(f64::INFINITY);
                    let db =
                        js_divergence(fitted_phi.row(t), truth_phi.row(b)).unwrap_or(f64::INFINITY);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
            })
            .collect();
        Self {
            map,
            truth_topics: truth_phi.rows(),
        }
    }

    /// The truth topic for a fitted topic, if mapped.
    pub fn truth_of(&self, fitted: usize) -> Option<usize> {
        self.map.get(fitted).copied().flatten()
    }

    /// Number of fitted topics covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no fitted topics are covered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of ground-truth topics.
    pub fn truth_topics(&self) -> usize {
        self.truth_topics
    }

    /// Project a fitted-space distribution onto truth-topic space by
    /// summing mapped mass (unmapped mass is dropped); the result is
    /// re-normalized when any mass survives.
    pub fn project(&self, fitted_dist: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.truth_topics];
        for (t, &p) in fitted_dist.iter().enumerate() {
            if let Some(truth) = self.truth_of(t) {
                out[truth] += p;
            }
        }
        let sum: f64 = out.iter().sum();
        if sum > 0.0 {
            out.iter_mut().for_each(|x| *x /= sum);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map() {
        let m = TopicMapping::identity(3);
        assert_eq!(m.truth_of(0), Some(0));
        assert_eq!(m.truth_of(2), Some(2));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn by_label_matches_and_skips() {
        let fitted = vec![None, Some("B".to_string()), Some("X".to_string())];
        let truth = vec![Some("A".to_string()), Some("B".to_string())];
        let m = TopicMapping::by_label(&fitted, &truth);
        assert_eq!(m.truth_of(0), None);
        assert_eq!(m.truth_of(1), Some(1));
        assert_eq!(m.truth_of(2), None, "unknown label unmapped");
    }

    #[test]
    fn by_phi_js_finds_nearest() {
        let fitted = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let truth = DenseMatrix::from_vec(2, 2, vec![0.1, 0.9, 0.95, 0.05]);
        let m = TopicMapping::by_phi_js(&fitted, &truth);
        assert_eq!(m.truth_of(0), Some(1));
        assert_eq!(m.truth_of(1), Some(0));
    }

    #[test]
    fn project_sums_and_renormalizes() {
        // Two fitted topics both map onto truth topic 0.
        let m = TopicMapping::new(vec![Some(0), Some(0), None], 2);
        let projected = m.project(&[0.3, 0.3, 0.4]);
        assert!((projected[0] - 1.0).abs() < 1e-12);
        assert_eq!(projected[1], 0.0);
    }

    #[test]
    fn project_handles_fully_unmapped() {
        let m = TopicMapping::new(vec![None], 2);
        assert_eq!(m.project(&[1.0]), vec![0.0, 0.0]);
    }
}
