//! Typed errors for the evaluation metrics.
//!
//! The metrics compare *distributions*; a NaN or infinity in an input row
//! (a degenerate θ from a failed fit, a φ row divided by a zero count)
//! used to flow silently into `partial_cmp(..).unwrap_or(Equal)` sorts and
//! produce an arbitrary, comparator-order-dependent answer. Every such
//! input is now detected up front and surfaced as an [`EvalError`].

use std::fmt;

/// Errors produced by the evaluation metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An input distribution contains a non-finite entry.
    NonFiniteInput {
        /// Which argument the bad row came from (e.g. `"fitted phi"`).
        what: &'static str,
        /// Row index within that argument.
        row: usize,
        /// Column index of the offending entry.
        index: usize,
        /// The offending value (NaN or ±∞).
        value: f64,
    },
    /// A computed divergence came out non-finite even though the inputs
    /// passed the entry check (numerically degenerate comparison).
    NonFiniteDistance {
        /// What was being compared (e.g. `"theta JS divergence"`).
        what: &'static str,
        /// Row (document/topic) index of the comparison.
        row: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NonFiniteInput {
                what,
                row,
                index,
                value,
            } => write!(
                f,
                "{what} row {row} has non-finite entry {value} at index {index}"
            ),
            EvalError::NonFiniteDistance { what, row } => {
                write!(f, "{what} for row {row} is non-finite")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Check every row of a matrix-like argument for non-finite entries.
pub(crate) fn check_rows_finite<'a>(
    what: &'static str,
    rows: impl Iterator<Item = &'a [f64]>,
) -> Result<(), EvalError> {
    for (row, values) in rows.enumerate() {
        if let Some((index, &value)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(EvalError::NonFiniteInput {
                what,
                row,
                index,
                value,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_rows_pass() {
        let rows = [vec![0.5, 0.5], vec![1.0, 0.0]];
        assert!(check_rows_finite("x", rows.iter().map(Vec::as_slice)).is_ok());
    }

    #[test]
    fn non_finite_entry_is_located() {
        let rows = [vec![0.5, 0.5], vec![f64::NAN, 1.0]];
        let err = check_rows_finite("theta", rows.iter().map(Vec::as_slice)).unwrap_err();
        match err {
            EvalError::NonFiniteInput {
                what, row, index, ..
            } => {
                assert_eq!(what, "theta");
                assert_eq!(row, 1);
                assert_eq!(index, 0);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("theta row 1"));
    }

    #[test]
    fn infinities_are_caught_too() {
        let rows = [vec![f64::INFINITY]];
        assert!(check_rows_finite("phi", rows.iter().map(Vec::as_slice)).is_err());
    }
}
