//! Token-level classification accuracy (Fig. 8 a/b).
//!
//! "Since we know a priori the correct topic assignment for each token we
//! use the number of correct topic assignments to be an appropriate measure
//! of classification accuracy" (§IV.D).

use crate::matching::TopicMapping;

/// An accuracy tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accuracy {
    /// Correctly classified tokens.
    pub correct: usize,
    /// Total tokens scored.
    pub total: usize,
}

impl Accuracy {
    /// Fraction correct in `[0, 1]` (0 for an empty tally).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// Count tokens whose mapped fitted assignment equals the ground-truth
/// assignment.
///
/// `truth` and `fitted` are `[doc][position]` topic indices; `mapping`
/// translates fitted topic indices into truth-space (tokens whose fitted
/// topic is unmapped count as incorrect).
///
/// # Panics
/// Panics if document shapes disagree.
pub fn token_accuracy(truth: &[Vec<u32>], fitted: &[Vec<u32>], mapping: &TopicMapping) -> Accuracy {
    assert_eq!(truth.len(), fitted.len(), "document count mismatch");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (t_doc, f_doc) in truth.iter().zip(fitted) {
        assert_eq!(t_doc.len(), f_doc.len(), "document length mismatch");
        for (&t, &f) in t_doc.iter().zip(f_doc) {
            total += 1;
            if mapping.truth_of(f as usize) == Some(t as usize) {
                correct += 1;
            }
        }
    }
    Accuracy { correct, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_counts_matches() {
        let truth = vec![vec![0, 1, 1], vec![2, 2]];
        let fitted = vec![vec![0, 1, 0], vec![2, 1]];
        let acc = token_accuracy(&truth, &fitted, &TopicMapping::identity(3));
        assert_eq!(acc.correct, 3);
        assert_eq!(acc.total, 5);
        assert!((acc.fraction() - 0.6).abs() < 1e-12);
        assert!((acc.percent() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_mapping_translates() {
        let truth = vec![vec![1, 1, 0]];
        let fitted = vec![vec![0, 0, 1]];
        // fitted 0 → truth 1, fitted 1 → truth 0.
        let mapping = TopicMapping::new(vec![Some(1), Some(0)], 2);
        let acc = token_accuracy(&truth, &fitted, &mapping);
        assert_eq!(acc.correct, 3);
    }

    #[test]
    fn unmapped_topics_count_as_wrong() {
        let truth = vec![vec![0, 0]];
        let fitted = vec![vec![0, 1]];
        let mapping = TopicMapping::new(vec![Some(0), None], 2);
        let acc = token_accuracy(&truth, &fitted, &mapping);
        assert_eq!(acc.correct, 1);
        assert_eq!(acc.total, 2);
    }

    #[test]
    fn empty_inputs() {
        let acc = token_accuracy(&[], &[], &TopicMapping::identity(1));
        assert_eq!(acc.total, 0);
        assert_eq!(acc.fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "document count mismatch")]
    fn shape_mismatch_panics() {
        let _ = token_accuracy(&[vec![0]], &[], &TopicMapping::identity(1));
    }
}
