//! Document–topic divergence (Fig. 8 d/e): "the topic to document
//! distributions were analyzed using sorted JS Divergence … sum total of
//! the JS divergences of θ".

use crate::error::{check_rows_finite, EvalError};
use crate::matching::TopicMapping;
use srclda_math::{js_divergence, DenseMatrix};

/// Per-document `JS(project(θ̂_d), θ_d)` values, where `project` carries
/// the fitted distribution into truth-topic space via `mapping`. Shared
/// core of [`theta_js_total`] / [`theta_js_sorted`]; inputs are validated
/// up front so a degenerate θ row (NaN/∞) is a typed error instead of a
/// silent, arbitrary score.
fn per_doc_divergences(
    fitted_theta: &DenseMatrix<f64>,
    truth_theta: &DenseMatrix<f64>,
    mapping: &TopicMapping,
) -> Result<Vec<f64>, EvalError> {
    assert_eq!(
        fitted_theta.rows(),
        truth_theta.rows(),
        "document count mismatch"
    );
    check_rows_finite(
        "fitted theta",
        (0..fitted_theta.rows()).map(|d| fitted_theta.row(d)),
    )?;
    check_rows_finite(
        "truth theta",
        (0..truth_theta.rows()).map(|d| truth_theta.row(d)),
    )?;
    let mut out = Vec::with_capacity(fitted_theta.rows());
    for d in 0..fitted_theta.rows() {
        let projected = mapping.project(fitted_theta.row(d));
        // Length mismatches (mapping vs truth space) keep the historical
        // ln 2 worst-case convention; with the finiteness check above a
        // NaN can no longer reach the sort below, but keep a typed guard
        // so numeric degeneracy can never regress silently.
        let js = js_divergence(&projected, truth_theta.row(d)).unwrap_or(std::f64::consts::LN_2);
        if js.is_nan() {
            return Err(EvalError::NonFiniteDistance {
                what: "theta JS divergence",
                row: d,
            });
        }
        out.push(js);
    }
    Ok(out)
}

/// Sum over documents of `JS(project(θ̂_d), θ_d)`.
///
/// # Errors
/// Fails if either θ matrix contains a non-finite entry.
///
/// # Panics
/// Panics if document counts disagree.
pub fn theta_js_total(
    fitted_theta: &DenseMatrix<f64>,
    truth_theta: &DenseMatrix<f64>,
    mapping: &TopicMapping,
) -> Result<f64, EvalError> {
    Ok(per_doc_divergences(fitted_theta, truth_theta, mapping)?
        .iter()
        .sum())
}

/// Per-document JS divergences, sorted ascending (the "sorted JS
/// divergence" view the paper plots). The sort uses `total_cmp`; with the
/// up-front input validation no NaN can reach it, so the order is a
/// genuine total order rather than `unwrap_or(Equal)` luck.
///
/// # Errors
/// Fails if either θ matrix contains a non-finite entry.
///
/// # Panics
/// Panics if document counts disagree.
pub fn theta_js_sorted(
    fitted_theta: &DenseMatrix<f64>,
    truth_theta: &DenseMatrix<f64>,
    mapping: &TopicMapping,
) -> Result<Vec<f64>, EvalError> {
    let mut out = per_doc_divergences(fitted_theta, truth_theta, mapping)?;
    out.sort_by(f64::total_cmp);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_scores_zero() {
        let theta = DenseMatrix::from_vec(2, 2, vec![0.7, 0.3, 0.2, 0.8]);
        let total = theta_js_total(&theta, &theta, &TopicMapping::identity(2)).unwrap();
        assert!(total < 1e-12);
    }

    #[test]
    fn worse_estimates_score_higher() {
        let truth = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let close = DenseMatrix::from_vec(1, 2, vec![0.9, 0.1]);
        let far = DenseMatrix::from_vec(1, 2, vec![0.2, 0.8]);
        let id = TopicMapping::identity(2);
        let a = theta_js_total(&close, &truth, &id).unwrap();
        let b = theta_js_total(&far, &truth, &id).unwrap();
        assert!(a < b, "{a} vs {b}");
    }

    #[test]
    fn mapping_permutation_is_honored() {
        let truth = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let fitted = DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let swap = TopicMapping::new(vec![Some(1), Some(0)], 2);
        let total = theta_js_total(&fitted, &truth, &swap).unwrap();
        assert!(total < 1e-12, "swapped mapping should align: {total}");
    }

    #[test]
    fn sorted_view_ascending() {
        let truth = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let fitted = DenseMatrix::from_vec(2, 2, vec![0.2, 0.8, 0.95, 0.05]);
        let sorted = theta_js_sorted(&fitted, &truth, &TopicMapping::identity(2)).unwrap();
        assert!(sorted[0] <= sorted[1]);
    }

    #[test]
    fn degenerate_theta_rows_are_typed_errors() {
        // A NaN θ row used to sort arbitrarily (partial_cmp → Equal);
        // both the total and the sorted view now refuse the input.
        let truth = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let bad = DenseMatrix::from_vec(2, 2, vec![0.2, 0.8, f64::NAN, 0.1]);
        let id = TopicMapping::identity(2);
        let err = theta_js_sorted(&bad, &truth, &id).unwrap_err();
        assert!(matches!(
            err,
            EvalError::NonFiniteInput {
                what: "fitted theta",
                row: 1,
                ..
            }
        ));
        assert!(theta_js_total(&bad, &truth, &id).is_err());
        // Degenerate truth is caught too.
        let bad_truth = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, f64::INFINITY, 0.0]);
        let ok = DenseMatrix::from_vec(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        assert!(theta_js_total(&ok, &bad_truth, &id).is_err());
    }
}
