//! Document–topic divergence (Fig. 8 d/e): "the topic to document
//! distributions were analyzed using sorted JS Divergence … sum total of
//! the JS divergences of θ".

use crate::matching::TopicMapping;
use srclda_math::{js_divergence, DenseMatrix};

/// Sum over documents of `JS(project(θ̂_d), θ_d)`, where `project` carries
/// the fitted distribution into truth-topic space via `mapping`.
///
/// # Panics
/// Panics if document counts disagree.
pub fn theta_js_total(
    fitted_theta: &DenseMatrix<f64>,
    truth_theta: &DenseMatrix<f64>,
    mapping: &TopicMapping,
) -> f64 {
    assert_eq!(
        fitted_theta.rows(),
        truth_theta.rows(),
        "document count mismatch"
    );
    let mut total = 0.0;
    for d in 0..fitted_theta.rows() {
        let projected = mapping.project(fitted_theta.row(d));
        total += js_divergence(&projected, truth_theta.row(d)).unwrap_or(std::f64::consts::LN_2);
    }
    total
}

/// Per-document JS divergences, sorted ascending (the "sorted JS
/// divergence" view the paper plots).
pub fn theta_js_sorted(
    fitted_theta: &DenseMatrix<f64>,
    truth_theta: &DenseMatrix<f64>,
    mapping: &TopicMapping,
) -> Vec<f64> {
    let mut out: Vec<f64> = (0..fitted_theta.rows())
        .map(|d| {
            let projected = mapping.project(fitted_theta.row(d));
            js_divergence(&projected, truth_theta.row(d)).unwrap_or(std::f64::consts::LN_2)
        })
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery_scores_zero() {
        let theta = DenseMatrix::from_vec(2, 2, vec![0.7, 0.3, 0.2, 0.8]);
        let total = theta_js_total(&theta, &theta, &TopicMapping::identity(2));
        assert!(total < 1e-12);
    }

    #[test]
    fn worse_estimates_score_higher() {
        let truth = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let close = DenseMatrix::from_vec(1, 2, vec![0.9, 0.1]);
        let far = DenseMatrix::from_vec(1, 2, vec![0.2, 0.8]);
        let id = TopicMapping::identity(2);
        let a = theta_js_total(&close, &truth, &id);
        let b = theta_js_total(&far, &truth, &id);
        assert!(a < b, "{a} vs {b}");
    }

    #[test]
    fn mapping_permutation_is_honored() {
        let truth = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let fitted = DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let swap = TopicMapping::new(vec![Some(1), Some(0)], 2);
        let total = theta_js_total(&fitted, &truth, &swap);
        assert!(total < 1e-12, "swapped mapping should align: {total}");
    }

    #[test]
    fn sorted_view_ascending() {
        let truth = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let fitted = DenseMatrix::from_vec(2, 2, vec![0.2, 0.8, 0.95, 0.05]);
        let sorted = theta_js_sorted(&fitted, &truth, &TopicMapping::identity(2));
        assert!(sorted[0] <= sorted[1]);
    }
}
