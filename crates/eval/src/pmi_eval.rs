//! PMI topic coherence (Fig. 8 c): "the top 10 words given for each topic
//! were used in the PMI assessment".

use srclda_corpus::{CooccurrenceCounts, Corpus, WordId};
use srclda_math::FxHashSet;

/// Per-topic mean pairwise PMI of the given top-word lists, measured over
/// `corpus` with a sliding window. Topics with no scorable pair yield
/// `None`.
pub fn topic_pmi_scores(
    corpus: &Corpus,
    top_words: &[Vec<WordId>],
    window: usize,
) -> Vec<Option<f64>> {
    let mut interesting: FxHashSet<WordId> = FxHashSet::default();
    for list in top_words {
        interesting.extend(list.iter().copied());
    }
    let counts = CooccurrenceCounts::count(corpus, &interesting, window);
    top_words
        .iter()
        .map(|list| counts.mean_pairwise_pmi(list))
        .collect()
}

/// Mean over topics of the per-topic PMI (ignoring unscorable topics);
/// `None` if no topic is scorable.
pub fn mean_topic_pmi(corpus: &Corpus, top_words: &[Vec<WordId>], window: usize) -> Option<f64> {
    let scores = topic_pmi_scores(corpus, top_words, window);
    let valid: Vec<f64> = scores.into_iter().flatten().collect();
    if valid.is_empty() {
        None
    } else {
        Some(valid.iter().sum::<f64>() / valid.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..20 {
            b.add_tokens("g", &["gas", "pipeline", "energy", "gas", "pipeline"]);
            b.add_tokens("s", &["stock", "market", "fund", "stock", "market"]);
        }
        b.build()
    }

    fn ids(c: &Corpus, words: &[&str]) -> Vec<WordId> {
        words
            .iter()
            .map(|w| c.vocabulary().get(w).unwrap())
            .collect()
    }

    #[test]
    fn coherent_topics_score_higher_than_mixed() {
        let c = corpus();
        let coherent = ids(&c, &["gas", "pipeline", "energy"]);
        let mixed = ids(&c, &["gas", "market", "fund"]);
        let scores = topic_pmi_scores(&c, &[coherent, mixed], 5);
        let a = scores[0].unwrap();
        let b = scores[1].unwrap();
        assert!(a > b, "coherent {a} vs mixed {b}");
    }

    #[test]
    fn mean_aggregates_valid_topics() {
        let c = corpus();
        let coherent = ids(&c, &["gas", "pipeline"]);
        let single = ids(&c, &["stock"]); // no pair → unscorable
        let mean = mean_topic_pmi(&c, &[coherent.clone(), single], 5).unwrap();
        let solo = topic_pmi_scores(&c, &[coherent], 5)[0].unwrap();
        assert!((mean - solo).abs() < 1e-12, "unscorable topics are skipped");
    }

    #[test]
    fn no_scorable_topics_gives_none() {
        let c = corpus();
        assert!(mean_topic_pmi(&c, &[vec![]], 5).is_none());
    }
}
