//! PMI topic coherence (Fig. 8 c): "the top 10 words given for each topic
//! were used in the PMI assessment".
//!
//! Two entry points: the [`WordId`]-based functions score top-word lists
//! that already index the *scoring corpus's* vocabulary, while the
//! string-based [`topic_pmi_scores_for_words`] evaluates a model against a
//! **reference corpus** whose vocabulary need not contain every model
//! top-word — out-of-vocabulary words are skipped (and counted) instead of
//! panicking on the lookup.

use srclda_corpus::{CooccurrenceCounts, Corpus, WordId};
use srclda_math::FxHashSet;

/// Per-topic mean pairwise PMI of the given top-word lists, measured over
/// `corpus` with a sliding window. Topics with no scorable pair yield
/// `None`.
pub fn topic_pmi_scores(
    corpus: &Corpus,
    top_words: &[Vec<WordId>],
    window: usize,
) -> Vec<Option<f64>> {
    let mut interesting: FxHashSet<WordId> = FxHashSet::default();
    for list in top_words {
        interesting.extend(list.iter().copied());
    }
    let counts = CooccurrenceCounts::count(corpus, &interesting, window);
    top_words
        .iter()
        .map(|list| counts.mean_pairwise_pmi(list))
        .collect()
}

/// Mean over topics of the per-topic PMI (ignoring unscorable topics);
/// `None` if no topic is scorable.
pub fn mean_topic_pmi(corpus: &Corpus, top_words: &[Vec<WordId>], window: usize) -> Option<f64> {
    let scores = topic_pmi_scores(corpus, top_words, window);
    let valid: Vec<f64> = scores.into_iter().flatten().collect();
    if valid.is_empty() {
        None
    } else {
        Some(valid.iter().sum::<f64>() / valid.len() as f64)
    }
}

/// Result of a string-based PMI evaluation against a reference corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct PmiWordScores {
    /// Per-topic mean pairwise PMI (`None` for topics left with no
    /// scorable pair after OOV removal).
    pub scores: Vec<Option<f64>>,
    /// Top-words not present in the reference corpus's vocabulary, summed
    /// over all topics. A large value means the reference corpus is a poor
    /// match for the model — report it rather than hiding it.
    pub oov_skipped: usize,
}

impl PmiWordScores {
    /// Mean over scorable topics; `None` if no topic is scorable.
    pub fn mean(&self) -> Option<f64> {
        let valid: Vec<f64> = self.scores.iter().copied().flatten().collect();
        if valid.is_empty() {
            None
        } else {
            Some(valid.iter().sum::<f64>() / valid.len() as f64)
        }
    }
}

/// [`topic_pmi_scores`] over top-word *strings*, evaluated against a
/// reference corpus that may lack some of them: OOV words are skipped and
/// counted ([`PmiWordScores::oov_skipped`]) instead of panicking on the
/// vocabulary lookup. A topic whose surviving list has fewer than two
/// words scores `None`, exactly like an unscorable in-vocabulary topic.
pub fn topic_pmi_scores_for_words<S: AsRef<str>>(
    reference: &Corpus,
    top_words: &[Vec<S>],
    window: usize,
) -> PmiWordScores {
    let vocab = reference.vocabulary();
    let mut oov_skipped = 0usize;
    let id_lists: Vec<Vec<WordId>> = top_words
        .iter()
        .map(|list| {
            list.iter()
                .filter_map(|w| {
                    let id = vocab.get(w.as_ref());
                    if id.is_none() {
                        oov_skipped += 1;
                    }
                    id
                })
                .collect()
        })
        .collect();
    PmiWordScores {
        scores: topic_pmi_scores(reference, &id_lists, window),
        oov_skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srclda_corpus::{CorpusBuilder, Tokenizer};

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new().tokenizer(Tokenizer::permissive());
        for _ in 0..20 {
            b.add_tokens("g", &["gas", "pipeline", "energy", "gas", "pipeline"]);
            b.add_tokens("s", &["stock", "market", "fund", "stock", "market"]);
        }
        b.build()
    }

    fn ids(c: &Corpus, words: &[&str]) -> Vec<WordId> {
        words
            .iter()
            .map(|w| c.vocabulary().get(w).unwrap())
            .collect()
    }

    #[test]
    fn coherent_topics_score_higher_than_mixed() {
        let c = corpus();
        let coherent = ids(&c, &["gas", "pipeline", "energy"]);
        let mixed = ids(&c, &["gas", "market", "fund"]);
        let scores = topic_pmi_scores(&c, &[coherent, mixed], 5);
        let a = scores[0].unwrap();
        let b = scores[1].unwrap();
        assert!(a > b, "coherent {a} vs mixed {b}");
    }

    #[test]
    fn mean_aggregates_valid_topics() {
        let c = corpus();
        let coherent = ids(&c, &["gas", "pipeline"]);
        let single = ids(&c, &["stock"]); // no pair → unscorable
        let mean = mean_topic_pmi(&c, &[coherent.clone(), single], 5).unwrap();
        let solo = topic_pmi_scores(&c, &[coherent], 5)[0].unwrap();
        assert!((mean - solo).abs() < 1e-12, "unscorable topics are skipped");
    }

    #[test]
    fn no_scorable_topics_gives_none() {
        let c = corpus();
        assert!(mean_topic_pmi(&c, &[vec![]], 5).is_none());
    }

    #[test]
    fn oov_top_words_are_skipped_and_counted_not_panicked_on() {
        // A model trained elsewhere can surface top-words the reference
        // corpus never saw; scoring used to panic on the vocab lookup.
        let c = corpus();
        let tops = vec![
            vec!["gas", "pipeline", "wormhole"], // one OOV word
            vec!["chrono", "flux"],              // fully OOV
        ];
        let result = topic_pmi_scores_for_words(&c, &tops, 5);
        assert_eq!(result.oov_skipped, 3);
        // Topic 0 still scores from its two surviving words…
        let expected = topic_pmi_scores(&c, &[ids(&c, &["gas", "pipeline"])], 5)[0].unwrap();
        assert_eq!(result.scores[0], Some(expected));
        // …while the fully-OOV topic is unscorable, not a crash.
        assert_eq!(result.scores[1], None);
        assert_eq!(result.mean(), Some(expected));
    }

    #[test]
    fn all_in_vocabulary_matches_the_id_based_path() {
        let c = corpus();
        let tops = vec![vec!["gas", "pipeline", "energy"]];
        let by_words = topic_pmi_scores_for_words(&c, &tops, 5);
        assert_eq!(by_words.oov_skipped, 0);
        let by_ids = topic_pmi_scores(&c, &[ids(&c, &["gas", "pipeline", "energy"])], 5);
        assert_eq!(by_words.scores, by_ids);
    }

    #[test]
    fn everything_oov_gives_no_mean() {
        let c = corpus();
        let result = topic_pmi_scores_for_words(&c, &[vec!["nope", "nada"]], 5);
        assert_eq!(result.oov_skipped, 2);
        assert_eq!(result.mean(), None);
    }
}
