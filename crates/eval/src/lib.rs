//! Evaluation metrics for the Source-LDA experiments.
//!
//! * [`matching`] — aligning fitted topics with ground-truth topics (by
//!   label for knowledge-grounded models, by minimal JS divergence for
//!   plain LDA, exactly as §IV.D prescribes);
//! * [`accuracy`] — token-level classification accuracy against recorded
//!   generative assignments (Fig. 8 a/b);
//! * [`theta_js`] — summed Jensen–Shannon divergence between inferred and
//!   true document–topic distributions (Fig. 8 d/e);
//! * [`pmi_eval`] — topic coherence by mean pairwise PMI of top words
//!   (Fig. 8 c);
//! * [`report`] — fixed-width tables and TSV series for the experiment
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod matching;
pub mod pmi_eval;
pub mod report;
pub mod theta_js;

pub use accuracy::{token_accuracy, Accuracy};
pub use matching::TopicMapping;
pub use pmi_eval::{mean_topic_pmi, topic_pmi_scores};
pub use report::{Series, Table};
pub use theta_js::theta_js_total;
