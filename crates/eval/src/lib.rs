//! Evaluation metrics for the Source-LDA experiments.
//!
//! * [`matching`] — aligning fitted topics with ground-truth topics (by
//!   label for knowledge-grounded models, by minimal JS divergence for
//!   plain LDA, exactly as §IV.D prescribes);
//! * [`accuracy`] — token-level classification accuracy against recorded
//!   generative assignments (Fig. 8 a/b);
//! * [`theta_js`] — summed Jensen–Shannon divergence between inferred and
//!   true document–topic distributions (Fig. 8 d/e);
//! * [`pmi_eval`] — topic coherence by mean pairwise PMI of top words
//!   (Fig. 8 c), including OOV-tolerant scoring against a reference
//!   corpus;
//! * [`report`] — fixed-width tables and TSV series for the experiment
//!   binaries;
//! * [`error`] — typed errors (degenerate θ/φ inputs are surfaced, never
//!   silently folded into arbitrary orderings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod error;
pub mod matching;
pub mod pmi_eval;
pub mod report;
pub mod theta_js;

pub use accuracy::{token_accuracy, Accuracy};
pub use error::EvalError;
pub use matching::TopicMapping;
pub use pmi_eval::{mean_topic_pmi, topic_pmi_scores, topic_pmi_scores_for_words, PmiWordScores};
pub use report::{Series, Table};
pub use theta_js::{theta_js_sorted, theta_js_total};
