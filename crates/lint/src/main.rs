//! CLI for `srclda-lint`.
//!
//! Usage: `srclda-lint [--root DIR] [--config FILE] [--report FILE]
//! [--list-rules]`
//!
//! Exit codes: 0 clean, 1 usage/IO/config error, 2 findings.

use std::path::PathBuf;
use std::process::ExitCode;

use srclda_lint::{lint_tree, parse_config, Config, RULES};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    report: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        report: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "srclda-lint: static analysis for the workspace's determinism, \
                     panic-freedom, and numeric-safety contracts\n\n\
                     USAGE: srclda-lint [--root DIR] [--config FILE] [--report FILE] [--list-rules]\n\n\
                     --root DIR      workspace root to scan (default: .)\n\
                     --config FILE   lint.toml path (default: <root>/lint.toml)\n\
                     --report FILE   also write the findings report to FILE\n\
                     --list-rules    print the rule table and exit\n\n\
                     Exit codes: 0 clean, 1 error, 2 findings."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("srclda-lint: {e} (try --help)");
            return ExitCode::from(1);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{:<16} {:<14} {}", rule.id, rule.family, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg: Config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match parse_config(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("srclda-lint: {}: {e}", config_path.display());
                return ExitCode::from(1);
            }
        },
        Err(e) => {
            eprintln!("srclda-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(1);
        }
    };

    let report = match lint_tree(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srclda-lint: scan failed: {e}");
            return ExitCode::from(1);
        }
    };

    let mut lines: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    let summary = format!(
        "srclda-lint: {} finding(s) in {} file(s) scanned",
        report.findings.len(),
        report.files_scanned
    );
    lines.push(summary.clone());
    let body = lines.join("\n") + "\n";

    // stdout for humans/CI logs; --report for the CI artifact.
    print!("{body}");
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("srclda-lint: cannot write report {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
